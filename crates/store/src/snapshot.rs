//! Compacted snapshots (`snapshot-<gen>.vsnap`).
//!
//! A snapshot is the non-incremental half of durability: the complete
//! session — base table, session parameters, and the engine's learned
//! state including trained models — in one checksummed, atomically
//! replaced file. Snapshots are written to a temporary file, fsynced, and
//! renamed into place, so a crash mid-write can never damage an existing
//! generation.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use verdict_core::persist::{Decoder, Encoder, Persist};
use verdict_core::{EngineState, VerdictConfig};
use verdict_storage::{PartitionSpec, Table};

use crate::crc::crc32;
use crate::partfile::{decode_paged_state, encode_paged_state, PagedState};
use crate::tablecodec::{decode_table, encode_table};
use crate::{Result, StoreError};

/// File magic for snapshots.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"VDBLSNAP";
/// Current snapshot format version (v2 added the table generation to the
/// header and the data epoch + original row count to the body, replacing
/// v1's write-once table assumption; v3 added the partition spec + paged
/// flag to the session metadata and an optional paged-state section —
/// partition map, resolution dictionaries, and per-sample ingest tails —
/// carried in place of a base-table generation reference). Version-2
/// files are still read: they simply decode with no partition spec and
/// `paged = false`.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Session construction parameters persisted alongside the learned state,
/// so [`crate::SynopsisStore::open`] can rebuild an identical session —
/// same sample draw, same batch geometry, same engine configuration —
/// without the caller re-supplying anything.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// Offline sampling fraction.
    pub sample_fraction: f64,
    /// Batch size in sample rows.
    pub batch_size: u64,
    /// RNG seed the offline samples were drawn with.
    pub seed: u64,
    /// Number of independent offline samples.
    pub num_samples: u64,
    /// Row count of the *original* base table, before any ingested batch.
    /// Warm starts re-draw the original offline sample from this prefix of
    /// the (grown) table, then re-admit the appended tail — reproducing
    /// the live session's maintained sample bit for bit.
    pub original_rows: u64,
    /// How the base table is partitioned, when `partition_by` was
    /// configured; persisted so a warm start rebuilds an identical
    /// [`verdict_storage::PartitionMap`] without the caller re-supplying
    /// the spec.
    pub partition_spec: Option<PartitionSpec>,
    /// Whether the store is paged (out-of-core): the base table lives in
    /// per-partition column files and the snapshot carries a
    /// [`PagedState`] section instead of referencing a table generation.
    pub paged: bool,
    /// Engine configuration.
    pub config: VerdictConfig,
}

impl SessionMeta {
    /// Decodes the version-2 body layout, which predates partitioned and
    /// paged stores.
    fn decode_v2(dec: &mut Decoder<'_>) -> verdict_core::persist::PersistResult<SessionMeta> {
        Ok(SessionMeta {
            sample_fraction: dec.take_f64()?,
            batch_size: dec.take_u64()?,
            seed: dec.take_u64()?,
            num_samples: dec.take_u64()?,
            original_rows: dec.take_u64()?,
            partition_spec: None,
            paged: false,
            config: VerdictConfig::decode(dec)?,
        })
    }
}

impl Persist for SessionMeta {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.sample_fraction);
        enc.put_u64(self.batch_size);
        enc.put_u64(self.seed);
        enc.put_u64(self.num_samples);
        enc.put_u64(self.original_rows);
        match &self.partition_spec {
            None => enc.put_u8(0),
            Some(spec) => {
                enc.put_u8(1);
                crate::partfile::encode_partition_spec(spec, enc);
            }
        }
        enc.put_bool(self.paged);
        self.config.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> verdict_core::persist::PersistResult<SessionMeta> {
        Ok(SessionMeta {
            sample_fraction: dec.take_f64()?,
            batch_size: dec.take_u64()?,
            seed: dec.take_u64()?,
            num_samples: dec.take_u64()?,
            original_rows: dec.take_u64()?,
            partition_spec: match dec.take_u8()? {
                0 => None,
                1 => Some(crate::partfile::decode_partition_spec(dec)?),
                t => {
                    return Err(verdict_core::persist::PersistError::Corrupt(format!(
                        "partition-spec presence tag {t}"
                    )))
                }
            },
            paged: dec.take_bool()?,
            config: VerdictConfig::decode(dec)?,
        })
    }
}

/// A fully decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// Highest log sequence number folded into this snapshot.
    pub last_seq: u64,
    /// Generation of the table file this snapshot was written against.
    pub table_gen: u64,
    /// Session construction parameters.
    pub meta: SessionMeta,
    /// Fingerprint of the referenced table generation; binds the snapshot
    /// to the base table (plus folded ingests) it was learned from.
    pub table_fp: u64,
    /// Ingested batches folded into this snapshot (the engine's data
    /// epoch at checkpoint time).
    pub data_epoch: u64,
    /// The engine's learned state.
    pub state: EngineState,
    /// Out-of-core state (partition map, resolution dictionaries, sample
    /// tails); present exactly when `meta.paged`.
    pub paged: Option<PagedState>,
}

fn encode_snapshot_body(
    meta: &SessionMeta,
    table_fp: u64,
    data_epoch: u64,
    state_bytes: &[u8],
    paged: Option<&PagedState>,
) -> Vec<u8> {
    debug_assert_eq!(
        meta.paged,
        paged.is_some(),
        "meta.paged must announce the paged-state section"
    );
    let mut enc = Encoder::new();
    meta.encode(&mut enc);
    enc.put_u64(table_fp);
    enc.put_u64(data_epoch);
    if let Some(state) = paged {
        // The paged section precedes the engine state: both are
        // self-delimiting, but the engine state is appended as raw
        // pre-encoded bytes, so it must come last.
        encode_paged_state(state, &mut enc);
    }
    enc.put_bytes(state_bytes);
    enc.into_bytes()
}

impl Snapshot {
    fn decode_body(version: u32, last_seq: u64, table_gen: u64, body: &[u8]) -> Result<Snapshot> {
        let mut dec = Decoder::new(body);
        let meta = if version == 2 {
            SessionMeta::decode_v2(&mut dec)?
        } else {
            SessionMeta::decode(&mut dec)?
        };
        let table_fp = dec.take_u64()?;
        let data_epoch = dec.take_u64()?;
        let paged = if meta.paged {
            Some(decode_paged_state(&mut dec)?)
        } else {
            None
        };
        let state = EngineState::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes in snapshot body",
                dec.remaining()
            )));
        }
        Ok(Snapshot {
            last_seq,
            table_gen,
            meta,
            table_fp,
            data_epoch,
            state,
            paged,
        })
    }
}

/// File magic for base-table generation files.
pub const TABLE_MAGIC: [u8; 8] = *b"VDBLTABL";
/// Current table-file format version.
pub const TABLE_VERSION: u32 = 1;
/// The v1 write-once table file name; recognized only so `create` refuses
/// to clobber a legacy store's data.
pub const LEGACY_TABLE_FILE: &str = "table.vtab";

/// Path of table generation `gen` inside `dir`.
pub fn table_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("table-{gen:010}.vtab"))
}

/// Parses a generation number out of a table file name.
pub fn parse_table_generation(name: &str) -> Option<u64> {
    name.strip_prefix("table-")?
        .strip_suffix(".vtab")?
        .parse()
        .ok()
}

/// Whether `name` is any store table file (a generation or the legacy
/// write-once name).
pub fn is_table_file(name: &str) -> bool {
    name == LEGACY_TABLE_FILE || parse_table_generation(name).is_some()
}

/// All table generations present in `dir`, ascending.
pub fn list_table_generations(dir: &Path) -> Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_table_generation) {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Fsyncs a directory so a preceding `rename` inside it is durable (on
/// POSIX, rename durability requires syncing the parent directory, not
/// just the file). Best-effort on platforms where directories cannot be
/// opened for sync.
pub fn sync_dir(dir: &Path) -> Result<()> {
    match File::open(dir) {
        Ok(d) => {
            // Windows cannot fsync directories; treat that as best-effort.
            let _ = d.sync_all();
            Ok(())
        }
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// Writes one table generation (atomic: temp + fsync + rename + directory
/// fsync). A generation is immutable once written: ingests accumulate in
/// the WAL, and the next checkpoint folds them into a *new* generation —
/// checkpoints without intervening ingests keep referencing the old
/// generation, so compaction cost still scales with the synopsis, not the
/// data, on a non-evolving table.
pub fn write_table_file(dir: &Path, gen: u64, table: &Table) -> Result<u64> {
    let mut enc = Encoder::new();
    encode_table(table, &mut enc);
    let body = enc.into_bytes();
    let fp = verdict_core::persist::fingerprint_bytes(&body);
    let mut bytes = Vec::with_capacity(24 + body.len());
    bytes.extend_from_slice(&TABLE_MAGIC);
    bytes.extend_from_slice(&TABLE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);
    let final_path = table_path(dir, gen);
    let tmp_path = final_path.with_extension("vtab.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(fp)
}

/// Reads and validates one table generation, returning the table and its
/// fingerprint.
pub fn read_table_file(dir: &Path, gen: u64) -> Result<(Table, u64)> {
    let path = table_path(dir, gen);
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 24 {
        return Err(StoreError::Corrupt("table file shorter than header".into()));
    }
    if bytes[..8] != TABLE_MAGIC {
        return Err(StoreError::Corrupt("bad table-file magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != TABLE_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported table-file version {version}"
        )));
    }
    let body_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let body_crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let body = bytes
        .get(24..24 + body_len as usize)
        .ok_or_else(|| StoreError::Corrupt("table file truncated".into()))?;
    if bytes.len() as u64 != 24 + body_len {
        return Err(StoreError::Corrupt("table file trailing bytes".into()));
    }
    if crc32(body) != body_crc {
        return Err(StoreError::Corrupt("table file checksum mismatch".into()));
    }
    let mut dec = Decoder::new(body);
    let table = decode_table(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(StoreError::Corrupt("table file trailing body bytes".into()));
    }
    Ok((table, verdict_core::persist::fingerprint_bytes(body)))
}

/// Path of generation `gen` inside `dir`.
pub fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snapshot-{gen:010}.vsnap"))
}

/// Parses a generation number out of a snapshot file name.
pub fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".vsnap")?
        .parse()
        .ok()
}

/// Writes a snapshot as generation `gen` in `dir`, atomically (temp +
/// fsync + rename + directory fsync). `state_bytes` is a pre-encoded
/// [`EngineState`] (see `Verdict::state_bytes`), so large states are
/// neither cloned nor re-encoded on the way in. `table_gen` names the
/// table generation the state was learned against; it sits in the header
/// so pruning can pair snapshots with their tables without decoding
/// bodies.
#[allow(clippy::too_many_arguments)]
pub fn write_snapshot(
    dir: &Path,
    gen: u64,
    last_seq: u64,
    table_gen: u64,
    meta: &SessionMeta,
    table_fp: u64,
    data_epoch: u64,
    state_bytes: &[u8],
    paged: Option<&PagedState>,
) -> Result<PathBuf> {
    let body = encode_snapshot_body(meta, table_fp, data_epoch, state_bytes, paged);
    let mut bytes = Vec::with_capacity(40 + body.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&last_seq.to_le_bytes());
    bytes.extend_from_slice(&table_gen.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let final_path = snapshot_path(dir, gen);
    let tmp_path = final_path.with_extension("vsnap.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    // Without this, a crash can roll back the rename while the log
    // truncation that follows it survives — losing folded records.
    sync_dir(dir)?;
    Ok(final_path)
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 40 {
        return Err(StoreError::Corrupt("snapshot shorter than header".into()));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != 2 && version != SNAPSHOT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let last_seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let table_gen = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let body_len = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
    let body_crc = u32::from_le_bytes(bytes[36..40].try_into().unwrap());
    let body = bytes
        .get(40..40 + body_len as usize)
        .ok_or_else(|| StoreError::Corrupt("snapshot body truncated".into()))?;
    if bytes.len() as u64 != 40 + body_len {
        return Err(StoreError::Corrupt("snapshot trailing bytes".into()));
    }
    if crc32(body) != body_crc {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    Snapshot::decode_body(version, last_seq, table_gen, body)
}

/// Reads only the table generation out of a snapshot's header (cheap peek
/// used when pruning table generations; the body is not validated).
pub fn snapshot_table_gen(path: &Path) -> Result<u64> {
    let mut header = [0u8; 40];
    let mut f = File::open(path)?;
    f.read_exact(&mut header)
        .map_err(|_| StoreError::Corrupt("snapshot shorter than header".into()))?;
    if header[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != 2 && version != SNAPSHOT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    Ok(u64::from_le_bytes(header[20..28].try_into().unwrap()))
}

/// All snapshot generations present in `dir`, ascending.
pub fn list_generations(dir: &Path) -> Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_generation) {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_core::region::{DimensionSpec, SchemaInfo};
    use verdict_core::{Verdict, VerdictConfig};
    use verdict_storage::{ColumnDef, Schema, Value};

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("verdict-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("t"),
            ColumnDef::measure("v"),
        ])
        .unwrap();
        let mut table = Table::new(schema);
        for i in 0..50 {
            table
                .push_row(vec![Value::Num(i as f64), Value::Num(i as f64 * 3.0)])
                .unwrap();
        }
        table
    }

    fn sample_snapshot() -> Snapshot {
        let info = SchemaInfo::new(vec![DimensionSpec::numeric("t", 0.0, 49.0)]).unwrap();
        let engine = Verdict::new(info, VerdictConfig::default());
        Snapshot {
            last_seq: 17,
            table_gen: 3,
            meta: SessionMeta {
                sample_fraction: 0.1,
                batch_size: 500,
                seed: 9,
                num_samples: 1,
                original_rows: 50,
                partition_spec: None,
                paged: false,
                config: VerdictConfig::default(),
            },
            table_fp: 0xDEAD_BEEF_F00D_CAFE,
            data_epoch: 2,
            state: engine.export_state(),
            paged: None,
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tempdir("roundtrip");
        let snap = sample_snapshot();
        write_snapshot(
            &dir,
            3,
            snap.last_seq,
            snap.table_gen,
            &snap.meta,
            snap.table_fp,
            snap.data_epoch,
            &snap.state.to_bytes(),
            None,
        )
        .unwrap();
        let back = read_snapshot(&snapshot_path(&dir, 3)).unwrap();
        assert_eq!(back.last_seq, 17);
        assert_eq!(back.table_gen, 3);
        assert_eq!(back.data_epoch, 2);
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.table_fp, snap.table_fp);
        assert_eq!(back.state.to_bytes(), snap.state.to_bytes());
        assert_eq!(snapshot_table_gen(&snapshot_path(&dir, 3)).unwrap(), 3);
    }

    #[test]
    fn table_file_roundtrip_and_validation() {
        let dir = tempdir("tablefile");
        let table = sample_table();
        let fp = write_table_file(&dir, 0, &table).unwrap();
        let (back, fp2) = read_table_file(&dir, 0).unwrap();
        assert_eq!(fp, fp2);
        assert_eq!(back.num_rows(), 50);
        assert_eq!(
            back.column("v").unwrap().numeric().unwrap(),
            table.column("v").unwrap().numeric().unwrap()
        );
        // Corruption is detected.
        let path = table_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_table_file(&dir, 0),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_snapshot_detected() {
        let dir = tempdir("corrupt");
        let snap = sample_snapshot();
        let path = write_snapshot(
            &dir,
            1,
            snap.last_seq,
            snap.table_gen,
            &snap.meta,
            snap.table_fp,
            snap.data_epoch,
            &snap.state.to_bytes(),
            None,
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn truncated_snapshot_detected() {
        let dir = tempdir("trunc");
        let snap = sample_snapshot();
        let path = write_snapshot(
            &dir,
            1,
            snap.last_seq,
            snap.table_gen,
            &snap.meta,
            snap.table_fp,
            snap.data_epoch,
            &snap.state.to_bytes(),
            None,
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 8, 31, 39, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(read_snapshot(&path).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn generation_listing_and_parsing() {
        let dir = tempdir("gens");
        let snap = sample_snapshot();
        for gen in [2, 0, 7] {
            write_snapshot(
                &dir,
                gen,
                snap.last_seq,
                snap.table_gen,
                &snap.meta,
                snap.table_fp,
                snap.data_epoch,
                &snap.state.to_bytes(),
                None,
            )
            .unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![0, 2, 7]);
        assert_eq!(parse_generation("snapshot-0000000042.vsnap"), Some(42));
        assert_eq!(parse_generation("snapshot-x.vsnap"), None);
        assert_eq!(parse_generation("wal.vlog"), None);
        assert_eq!(parse_table_generation("table-0000000005.vtab"), Some(5));
        assert_eq!(parse_table_generation("table.vtab"), None);
        assert!(is_table_file("table.vtab"));
        assert!(is_table_file("table-0000000001.vtab"));
        assert!(!is_table_file("snapshot-0000000001.vsnap"));
    }
}
