//! The append-only snippet log (`wal.vlog`).
//!
//! Records are framed `len u32 | crc u32 | payload` after a fixed file
//! header. The log is the incremental half of durability: every snippet
//! the engine observes lands here immediately, and a snapshot later folds
//! the accumulated records away.
//!
//! Recovery tolerates *any* torn tail: a partial header, a partial frame,
//! a length pointing past EOF, or a checksum mismatch all terminate the
//! scan at the last valid record, and the file is truncated back to that
//! prefix so subsequent appends extend a clean log.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use verdict_core::persist::{Decoder, Encoder, Persist};
use verdict_core::snippet::{AggKey, Observation};
use verdict_core::Region;

use crate::crc::crc32;
use crate::{Result, StoreError};

/// File magic for the snippet log.
pub const LOG_MAGIC: [u8; 8] = *b"VDBLWLOG";
/// Current log format version.
pub const LOG_VERSION: u32 = 1;
/// Header: magic + version + reserved word.
pub const LOG_HEADER_LEN: u64 = 16;
/// Upper bound on a single record payload; lengths above this are treated
/// as corruption rather than attempted allocations.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Record type tag for snippet appends.
const TAG_SNIPPET: u8 = 1;

/// One recovered log record: a snippet observation with its sequence
/// number.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Monotone sequence number assigned at append time.
    pub seq: u64,
    /// Aggregate the snippet belongs to.
    pub key: AggKey,
    /// The snippet's predicate region.
    pub region: Region,
    /// The raw answer/error pair.
    pub observation: Observation,
}

impl LogRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(TAG_SNIPPET);
        enc.put_u64(self.seq);
        self.key.encode(&mut enc);
        self.region.encode(&mut enc);
        self.observation.encode(&mut enc);
        enc.into_bytes()
    }

    fn decode_payload(payload: &[u8]) -> Result<LogRecord> {
        let mut dec = Decoder::new(payload);
        let tag = dec.take_u8()?;
        if tag != TAG_SNIPPET {
            return Err(StoreError::Corrupt(format!("unknown record tag {tag}")));
        }
        let seq = dec.take_u64()?;
        let key = AggKey::decode(&mut dec)?;
        let region = Region::decode(&mut dec)?;
        let observation = Observation::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes in record",
                dec.remaining()
            )));
        }
        Ok(LogRecord {
            seq,
            key,
            region,
            observation,
        })
    }
}

/// Outcome of validating the log's fixed file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderStatus {
    /// Magic and version both valid.
    Ok,
    /// Fewer bytes than a header — a torn create; no record can exist,
    /// so rewriting the file loses nothing.
    TooShort,
    /// The magic bytes are not a snippet log's — a foreign file that
    /// must not be overwritten.
    WrongMagic,
    /// Valid magic, but a version this build does not understand —
    /// likely written by a newer build; must not be truncated.
    WrongVersion(u32),
}

/// What a log scan found.
#[derive(Debug)]
pub struct LogScan {
    /// Header validation outcome.
    pub header: HeaderStatus,
    /// Every valid record, in file order.
    pub records: Vec<LogRecord>,
    /// Offset of the first invalid byte (= valid prefix length).
    pub valid_len: u64,
    /// Bytes discarded past the valid prefix (0 for a clean log).
    pub torn_bytes: u64,
}

/// Handle to an open, writable snippet log.
#[derive(Debug)]
pub struct SnippetLog {
    path: PathBuf,
    file: File,
    /// Bytes currently in the file (header included).
    len: u64,
    /// Records appended since open or last truncation.
    appended_since_reset: u64,
    /// Set when a failed append could not be rolled back: the file cursor
    /// may sit past torn bytes, so further appends would land after
    /// garbage and be silently dropped at recovery. All writes refuse
    /// until the log is reopened.
    poisoned: bool,
}

impl SnippetLog {
    /// Creates a fresh log (truncating any existing file) with a header.
    pub fn create(path: impl Into<PathBuf>) -> Result<SnippetLog> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&LOG_MAGIC)?;
        file.write_all(&LOG_VERSION.to_le_bytes())?;
        file.write_all(&0u32.to_le_bytes())?;
        file.flush()?;
        Ok(SnippetLog {
            path,
            file,
            len: LOG_HEADER_LEN,
            appended_since_reset: 0,
            poisoned: false,
        })
    }

    /// Opens an existing log, scanning and truncating any torn tail. A
    /// missing file is created fresh.
    pub fn open(path: impl Into<PathBuf>) -> Result<(SnippetLog, LogScan)> {
        let path = path.into();
        if !path.exists() {
            let log = SnippetLog::create(path)?;
            return Ok((
                log,
                LogScan {
                    header: HeaderStatus::Ok,
                    records: Vec::new(),
                    valid_len: LOG_HEADER_LEN,
                    torn_bytes: 0,
                },
            ));
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let scan = scan_log_bytes(&bytes);
        match scan.header {
            HeaderStatus::Ok => {}
            HeaderStatus::TooShort => {
                // A torn create: a header-less file cannot hold records,
                // so rewriting it loses nothing.
                let log = SnippetLog::create(path)?;
                return Ok((log, scan));
            }
            HeaderStatus::WrongMagic => {
                // Foreign data must never be truncated away silently.
                return Err(StoreError::Corrupt(format!(
                    "{} is not a snippet log (bad magic)",
                    path.display()
                )));
            }
            HeaderStatus::WrongVersion(v) => {
                // Likely a newer build's log: truncating it would destroy
                // records this build merely cannot read.
                return Err(StoreError::Corrupt(format!(
                    "{} has log version {v}; this build supports {LOG_VERSION}",
                    path.display()
                )));
            }
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        if scan.valid_len < bytes.len() as u64 {
            file.set_len(scan.valid_len)?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;
        Ok((
            SnippetLog {
                path,
                file,
                len: scan.valid_len,
                appended_since_reset: 0,
                poisoned: false,
            },
            scan,
        ))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the log (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records appended since open or the last [`SnippetLog::reset`].
    pub fn appended_since_reset(&self) -> u64 {
        self.appended_since_reset
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// A failed append rolls the file back to its last known-good length,
    /// so a partially written frame can never sit under records appended
    /// later (which recovery would then silently drop as a torn tail). If
    /// the rollback itself fails, the log is poisoned and refuses all
    /// further writes.
    pub fn append(&mut self, record: &LogRecord) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::Corrupt(format!(
                "{} is poisoned by an earlier failed append; reopen the store",
                self.path.display()
            )));
        }
        let payload = record.encode_payload();
        debug_assert!(payload.len() as u32 <= MAX_RECORD_LEN);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = self.file.write_all(&frame).and_then(|()| self.file.flush()) {
            let rolled_back = self
                .file
                .set_len(self.len)
                .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
            if rolled_back.is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.len += frame.len() as u64;
        self.appended_since_reset += 1;
        Ok(())
    }

    /// Durably syncs all appended records to disk (fsync).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Truncates the log back to an empty header — called after a
    /// snapshot has folded every record away.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(LOG_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(LOG_HEADER_LEN))?;
        self.file.sync_all()?;
        self.len = LOG_HEADER_LEN;
        self.appended_since_reset = 0;
        Ok(())
    }
}

/// Scans raw log bytes, returning every valid record and the length of
/// the valid prefix. Never panics on arbitrary input.
pub fn scan_log_bytes(bytes: &[u8]) -> LogScan {
    let total = bytes.len() as u64;
    // Header checks yield zero records; HeaderStatus tells the caller
    // whether rewriting the file is safe (torn create) or destructive
    // (foreign file, newer version).
    let header = if bytes.len() < LOG_HEADER_LEN as usize {
        HeaderStatus::TooShort
    } else if bytes[..8] != LOG_MAGIC {
        HeaderStatus::WrongMagic
    } else {
        match u32::from_le_bytes(bytes[8..12].try_into().unwrap()) {
            LOG_VERSION => HeaderStatus::Ok,
            v => HeaderStatus::WrongVersion(v),
        }
    };
    if header != HeaderStatus::Ok {
        return LogScan {
            header,
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: total,
        };
    }
    let mut records = Vec::new();
    let mut pos = LOG_HEADER_LEN as usize;
    // Stops at the first short frame header (torn tail).
    while let Some(frame_head) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(frame_head[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(frame_head[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break; // garbage length
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // payload runs past EOF
        };
        if crc32(payload) != crc {
            break; // bit rot or torn payload
        }
        let Ok(record) = LogRecord::decode_payload(payload) else {
            break; // structurally invalid payload
        };
        records.push(record);
        pos += 8 + len as usize;
    }
    LogScan {
        header: HeaderStatus::Ok,
        records,
        valid_len: pos as u64,
        torn_bytes: total - pos as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_core::region::{DimensionSpec, SchemaInfo};
    use verdict_storage::Predicate;

    fn schema() -> SchemaInfo {
        SchemaInfo::new(vec![DimensionSpec::numeric("t", 0.0, 100.0)]).unwrap()
    }

    fn record(seq: u64, lo: f64) -> LogRecord {
        LogRecord {
            seq,
            key: AggKey::avg("v"),
            region: Region::from_predicate(&schema(), &Predicate::between("t", lo, lo + 5.0))
                .unwrap(),
            observation: Observation::new(lo * 2.0, 0.25),
        }
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("verdict-log-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_rescan() {
        let dir = tempdir("append");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..10 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let (log, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records[7], record(7, 7.0));
        assert_eq!(log.len_bytes(), scan.valid_len);
    }

    #[test]
    fn torn_tail_truncated_at_every_offset() {
        let dir = tempdir("torn");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..5 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let full = std::fs::read(&path).unwrap();
        for cut in (LOG_HEADER_LEN as usize..full.len()).step_by(7) {
            let scan = scan_log_bytes(&full[..cut]);
            // Valid prefix parses; no panic; record count is the number of
            // whole frames before the cut.
            assert!(scan.valid_len <= cut as u64);
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64);
            }
        }
    }

    #[test]
    fn corrupt_byte_stops_scan_at_record_boundary() {
        let dir = tempdir("flip");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..5 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the third record's payload.
        let scan = scan_log_bytes(&bytes);
        assert_eq!(scan.records.len(), 5);
        let third_start = {
            // Walk two frames.
            let mut pos = LOG_HEADER_LEN as usize;
            for _ in 0..2 {
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
            }
            pos
        };
        bytes[third_start + 12] ^= 0xFF;
        let scan = scan_log_bytes(&bytes);
        assert_eq!(scan.records.len(), 2, "scan stops before corrupt record");
        assert_eq!(scan.valid_len, third_start as u64);
    }

    #[test]
    fn reopen_after_torn_write_appends_cleanly() {
        let dir = tempdir("reopen");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..4 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        // Simulate a torn write: chop 3 bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut log, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.torn_bytes > 0);
        log.append(&record(3, 3.0)).unwrap();
        drop(log);
        let (_, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn reset_empties_log() {
        let dir = tempdir("reset");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..3 {
            log.append(&record(i, 0.0)).unwrap();
        }
        assert_eq!(log.appended_since_reset(), 3);
        log.reset().unwrap();
        assert_eq!(log.appended_since_reset(), 0);
        log.append(&record(3, 1.0)).unwrap();
        drop(log);
        let (_, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 3);
    }

    #[test]
    fn foreign_file_treated_as_fully_torn() {
        let scan = scan_log_bytes(b"not a log at all");
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.header, HeaderStatus::WrongMagic);
    }

    #[test]
    fn foreign_file_refused_not_truncated() {
        let dir = tempdir("foreign");
        let path = dir.join("wal.vlog");
        std::fs::write(&path, b"user data that merely shares the log's file name").unwrap();
        assert!(SnippetLog::open(&path).is_err());
        // The file must be untouched.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..9], b"user data");
    }

    #[test]
    fn newer_log_version_refused_not_truncated() {
        let dir = tempdir("version");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..3 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        let before = bytes.len();
        bytes[8..12].copy_from_slice(&(LOG_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(SnippetLog::open(&path).is_err(), "newer version refused");
        // No byte of the newer build's records was destroyed.
        assert_eq!(std::fs::read(&path).unwrap().len(), before);
    }

    #[test]
    fn header_only_torn_create_rewritten() {
        let dir = tempdir("torncreate");
        let path = dir.join("wal.vlog");
        std::fs::write(&path, &LOG_MAGIC[..5]).unwrap();
        let (mut log, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.header, HeaderStatus::TooShort);
        log.append(&record(0, 1.0)).unwrap();
        drop(log);
        let (_, rescan) = SnippetLog::open(&path).unwrap();
        assert_eq!(rescan.records.len(), 1);
    }
}
