//! The append-only write-ahead log (`wal.vlog`).
//!
//! Records are framed `len u32 | crc u32 | payload` after a fixed file
//! header. The log is the incremental half of durability: every snippet
//! the engine observes — and, since format v2, every ingested row batch
//! with its synopsis adjustments — lands here immediately, and a snapshot
//! later folds the accumulated records away.
//!
//! Recovery tolerates *any* torn tail: a partial header, a partial frame,
//! a length pointing past EOF, or a checksum mismatch all terminate the
//! scan at the last valid record, and the file is truncated back to that
//! prefix so subsequent appends extend a clean log. A torn ingest frame
//! therefore recovers to the *last complete batch*: the record carries
//! the rows and the adjustments together, so a batch is either wholly
//! replayed or wholly absent.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use verdict_core::append::AppendAdjustment;
use verdict_core::persist::{Decoder, Encoder, Persist, PersistError};
use verdict_core::snippet::{AggKey, Observation};
use verdict_core::Region;
use verdict_storage::Value;

use crate::crc::crc32;
use crate::{Result, StoreError};

/// File magic for the write-ahead log.
pub const LOG_MAGIC: [u8; 8] = *b"VDBLWLOG";
/// Current log format version (v2 added ingest records and table
/// generations; v1 logs are refused, never truncated).
pub const LOG_VERSION: u32 = 2;
/// Header: magic + version + reserved word.
pub const LOG_HEADER_LEN: u64 = 16;
/// Upper bound on a single record payload; lengths above this are treated
/// as corruption rather than attempted allocations. Oversized ingest
/// batches are refused at append time — split them.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Record type tag for snippet appends.
const TAG_SNIPPET: u8 = 1;
/// Record type tag for ingested row batches.
const TAG_INGEST: u8 = 2;

/// A snippet observation with its sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct SnippetRecord {
    /// Monotone sequence number assigned at append time.
    pub seq: u64,
    /// Aggregate the snippet belongs to.
    pub key: AggKey,
    /// The snippet's predicate region.
    pub region: Region,
    /// The raw answer/error pair.
    pub observation: Observation,
}

/// One ingested row batch: the rows that were appended to the base table
/// plus the Lemma-3 adjustments the live session applied to each affected
/// synopsis. Logging the *computed* adjustments (rather than re-deriving
/// them at replay) makes recovery bit-identical by construction — replay
/// applies exactly what the live engine applied.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRecord {
    /// Monotone sequence number assigned at append time.
    pub seq: u64,
    /// The appended rows, in schema order, exactly as pushed.
    pub rows: Vec<Vec<Value>>,
    /// Per-aggregate synopsis adjustments, in the (sorted) order the live
    /// engine applied them.
    pub adjustments: Vec<(AggKey, AppendAdjustment)>,
}

/// One recovered log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A snippet observation (Algorithm 2 line 6).
    Snippet(SnippetRecord),
    /// An ingested row batch with its synopsis adjustments (Appendix D).
    Ingest(IngestRecord),
}

impl LogRecord {
    /// The record's monotone sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            LogRecord::Snippet(r) => r.seq,
            LogRecord::Ingest(r) => r.seq,
        }
    }

    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            LogRecord::Snippet(r) => {
                enc.put_u8(TAG_SNIPPET);
                enc.put_u64(r.seq);
                r.key.encode(&mut enc);
                r.region.encode(&mut enc);
                r.observation.encode(&mut enc);
            }
            LogRecord::Ingest(r) => {
                enc.put_u8(TAG_INGEST);
                enc.put_u64(r.seq);
                enc.put_len(r.rows.len());
                for row in &r.rows {
                    enc.put_len(row.len());
                    for v in row {
                        encode_value(v, &mut enc);
                    }
                }
                enc.put_len(r.adjustments.len());
                for (key, adj) in &r.adjustments {
                    key.encode(&mut enc);
                    adj.encode(&mut enc);
                }
            }
        }
        enc.into_bytes()
    }

    fn decode_payload(payload: &[u8]) -> Result<LogRecord> {
        let mut dec = Decoder::new(payload);
        let tag = dec.take_u8()?;
        let record = match tag {
            TAG_SNIPPET => {
                let seq = dec.take_u64()?;
                let key = AggKey::decode(&mut dec)?;
                let region = Region::decode(&mut dec)?;
                let observation = Observation::decode(&mut dec)?;
                LogRecord::Snippet(SnippetRecord {
                    seq,
                    key,
                    region,
                    observation,
                })
            }
            TAG_INGEST => {
                let seq = dec.take_u64()?;
                let n_rows = dec.take_len()?;
                let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
                for _ in 0..n_rows {
                    let n_vals = dec.take_len()?;
                    let mut row = Vec::with_capacity(n_vals.min(1 << 10));
                    for _ in 0..n_vals {
                        row.push(decode_value(&mut dec)?);
                    }
                    rows.push(row);
                }
                let n_adj = dec.take_len()?;
                let mut adjustments = Vec::with_capacity(n_adj.min(1 << 10));
                for _ in 0..n_adj {
                    let key = AggKey::decode(&mut dec)?;
                    let adj = AppendAdjustment::decode(&mut dec)?;
                    adjustments.push((key, adj));
                }
                LogRecord::Ingest(IngestRecord {
                    seq,
                    rows,
                    adjustments,
                })
            }
            t => return Err(StoreError::Corrupt(format!("unknown record tag {t}"))),
        };
        if !dec.is_exhausted() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes in record",
                dec.remaining()
            )));
        }
        Ok(record)
    }
}

/// Encodes one cell value exactly as the caller pushed it — a replayed
/// `Str` rebuilds the table dictionary deterministically, a replayed
/// `Cat`/`Num` reproduces the stored bits.
fn encode_value(v: &Value, enc: &mut Encoder) {
    match v {
        Value::Num(x) => {
            enc.put_u8(0);
            enc.put_f64(*x);
        }
        Value::Cat(c) => {
            enc.put_u8(1);
            enc.put_u32(*c);
        }
        Value::Str(s) => {
            enc.put_u8(2);
            enc.put_str(s);
        }
    }
}

fn decode_value(dec: &mut Decoder<'_>) -> std::result::Result<Value, PersistError> {
    Ok(match dec.take_u8()? {
        0 => Value::Num(dec.take_f64()?),
        1 => Value::Cat(dec.take_u32()?),
        2 => Value::Str(dec.take_str()?),
        t => return Err(PersistError::Corrupt(format!("Value tag {t}"))),
    })
}

/// Outcome of validating the log's fixed file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderStatus {
    /// Magic and version both valid.
    Ok,
    /// Fewer bytes than a header — a torn create; no record can exist,
    /// so rewriting the file loses nothing.
    TooShort,
    /// The magic bytes are not a snippet log's — a foreign file that
    /// must not be overwritten.
    WrongMagic,
    /// Valid magic, but a version this build does not understand —
    /// likely written by a newer build; must not be truncated.
    WrongVersion(u32),
}

/// What a log scan found.
#[derive(Debug)]
pub struct LogScan {
    /// Header validation outcome.
    pub header: HeaderStatus,
    /// Every valid record, in file order.
    pub records: Vec<LogRecord>,
    /// Offset of the first invalid byte (= valid prefix length).
    pub valid_len: u64,
    /// Bytes discarded past the valid prefix (0 for a clean log).
    pub torn_bytes: u64,
}

/// Handle to an open, writable snippet log.
#[derive(Debug)]
pub struct SnippetLog {
    path: PathBuf,
    file: File,
    /// Bytes currently in the file (header included).
    len: u64,
    /// Records appended since open or last truncation.
    appended_since_reset: u64,
    /// Set when a failed append could not be rolled back: the file cursor
    /// may sit past torn bytes, so further appends would land after
    /// garbage and be silently dropped at recovery. All writes refuse
    /// until the log is reopened.
    poisoned: bool,
}

impl SnippetLog {
    /// Creates a fresh log (truncating any existing file) with a header.
    pub fn create(path: impl Into<PathBuf>) -> Result<SnippetLog> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&LOG_MAGIC)?;
        file.write_all(&LOG_VERSION.to_le_bytes())?;
        file.write_all(&0u32.to_le_bytes())?;
        file.flush()?;
        Ok(SnippetLog {
            path,
            file,
            len: LOG_HEADER_LEN,
            appended_since_reset: 0,
            poisoned: false,
        })
    }

    /// Opens an existing log, scanning and truncating any torn tail. A
    /// missing file is created fresh.
    pub fn open(path: impl Into<PathBuf>) -> Result<(SnippetLog, LogScan)> {
        let path = path.into();
        if !path.exists() {
            let log = SnippetLog::create(path)?;
            return Ok((
                log,
                LogScan {
                    header: HeaderStatus::Ok,
                    records: Vec::new(),
                    valid_len: LOG_HEADER_LEN,
                    torn_bytes: 0,
                },
            ));
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let scan = scan_log_bytes(&bytes);
        match scan.header {
            HeaderStatus::Ok => {}
            HeaderStatus::TooShort => {
                // A torn create: a header-less file cannot hold records,
                // so rewriting it loses nothing.
                let log = SnippetLog::create(path)?;
                return Ok((log, scan));
            }
            HeaderStatus::WrongMagic => {
                // Foreign data must never be truncated away silently.
                return Err(StoreError::Corrupt(format!(
                    "{} is not a snippet log (bad magic)",
                    path.display()
                )));
            }
            HeaderStatus::WrongVersion(v) => {
                // Likely a newer build's log: truncating it would destroy
                // records this build merely cannot read.
                return Err(StoreError::Corrupt(format!(
                    "{} has log version {v}; this build supports {LOG_VERSION}",
                    path.display()
                )));
            }
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        if scan.valid_len < bytes.len() as u64 {
            file.set_len(scan.valid_len)?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;
        Ok((
            SnippetLog {
                path,
                file,
                len: scan.valid_len,
                appended_since_reset: 0,
                poisoned: false,
            },
            scan,
        ))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the log (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records appended since open or the last [`SnippetLog::reset`].
    pub fn appended_since_reset(&self) -> u64 {
        self.appended_since_reset
    }

    /// Appends one record and flushes it to the OS, returning the number
    /// of bytes the record occupied on disk (frame header included) —
    /// the store's WAL byte accounting is derived from this value.
    ///
    /// A failed append rolls the file back to its last known-good length,
    /// so a partially written frame can never sit under records appended
    /// later (which recovery would then silently drop as a torn tail). If
    /// the rollback itself fails, the log is poisoned and refuses all
    /// further writes.
    pub fn append(&mut self, record: &LogRecord) -> Result<u64> {
        if self.poisoned {
            return Err(StoreError::Corrupt(format!(
                "{} is poisoned by an earlier failed append; reopen the store",
                self.path.display()
            )));
        }
        let payload = record.encode_payload();
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            // Scanners treat over-length frames as corruption, so writing
            // one would make the record (and everything after it)
            // unrecoverable. Refuse instead; the caller splits the batch.
            return Err(StoreError::Mismatch(format!(
                "record of {} bytes exceeds the {MAX_RECORD_LEN}-byte frame \
                 limit; split the ingest batch",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = self.file.write_all(&frame).and_then(|()| self.file.flush()) {
            let rolled_back = self
                .file
                .set_len(self.len)
                .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
            if rolled_back.is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.len += frame.len() as u64;
        self.appended_since_reset += 1;
        Ok(frame.len() as u64)
    }

    /// Durably syncs all appended records to disk (fsync).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Truncates the log back to an empty header — called after a
    /// snapshot has folded every record away.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(LOG_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(LOG_HEADER_LEN))?;
        self.file.sync_all()?;
        self.len = LOG_HEADER_LEN;
        self.appended_since_reset = 0;
        Ok(())
    }
}

/// Scans raw log bytes, returning every valid record and the length of
/// the valid prefix. Never panics on arbitrary input.
pub fn scan_log_bytes(bytes: &[u8]) -> LogScan {
    let total = bytes.len() as u64;
    // Header checks yield zero records; HeaderStatus tells the caller
    // whether rewriting the file is safe (torn create) or destructive
    // (foreign file, newer version).
    let header = if bytes.len() < LOG_HEADER_LEN as usize {
        HeaderStatus::TooShort
    } else if bytes[..8] != LOG_MAGIC {
        HeaderStatus::WrongMagic
    } else {
        match u32::from_le_bytes(bytes[8..12].try_into().unwrap()) {
            LOG_VERSION => HeaderStatus::Ok,
            v => HeaderStatus::WrongVersion(v),
        }
    };
    if header != HeaderStatus::Ok {
        return LogScan {
            header,
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: total,
        };
    }
    let mut records = Vec::new();
    let mut pos = LOG_HEADER_LEN as usize;
    // Stops at the first short frame header (torn tail).
    while let Some(frame_head) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(frame_head[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(frame_head[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break; // garbage length
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // payload runs past EOF
        };
        if crc32(payload) != crc {
            break; // bit rot or torn payload
        }
        let Ok(record) = LogRecord::decode_payload(payload) else {
            break; // structurally invalid payload
        };
        records.push(record);
        pos += 8 + len as usize;
    }
    LogScan {
        header: HeaderStatus::Ok,
        records,
        valid_len: pos as u64,
        torn_bytes: total - pos as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_core::region::{DimensionSpec, SchemaInfo};
    use verdict_storage::Predicate;

    fn schema() -> SchemaInfo {
        SchemaInfo::new(vec![DimensionSpec::numeric("t", 0.0, 100.0)]).unwrap()
    }

    fn record(seq: u64, lo: f64) -> LogRecord {
        LogRecord::Snippet(SnippetRecord {
            seq,
            key: AggKey::avg("v"),
            region: Region::from_predicate(&schema(), &Predicate::between("t", lo, lo + 5.0))
                .unwrap(),
            observation: Observation::new(lo * 2.0, 0.25),
        })
    }

    fn ingest_record(seq: u64, rows: usize) -> LogRecord {
        LogRecord::Ingest(IngestRecord {
            seq,
            rows: (0..rows)
                .map(|i| vec![Value::Num(i as f64), Value::Str(format!("label-{}", i % 3))])
                .collect(),
            adjustments: vec![
                (
                    AggKey::avg("v"),
                    AppendAdjustment {
                        mu_shift: 0.5,
                        eta: 0.25,
                        old_rows: 100,
                        appended_rows: rows,
                    },
                ),
                (AggKey::Freq, AppendAdjustment::freq_worst_case(100, rows)),
            ],
        })
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("verdict-log-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_rescan() {
        let dir = tempdir("append");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..10 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let (log, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records[7], record(7, 7.0));
        assert_eq!(log.len_bytes(), scan.valid_len);
    }

    #[test]
    fn ingest_records_roundtrip_interleaved() {
        let dir = tempdir("ingest");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        let written = vec![
            record(1, 0.0),
            ingest_record(2, 4),
            record(3, 5.0),
            ingest_record(4, 0), // empty batch is legal and round-trips
            record(5, 10.0),
        ];
        for r in &written {
            log.append(r).unwrap();
        }
        drop(log);
        let (_, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records, written);
        assert_eq!(scan.torn_bytes, 0);
        match &scan.records[1] {
            LogRecord::Ingest(r) => {
                assert_eq!(r.rows.len(), 4);
                assert_eq!(r.rows[1][1], Value::Str("label-1".into()));
                assert_eq!(r.adjustments.len(), 2);
                assert_eq!(r.adjustments[0].1.mu_shift, 0.5);
            }
            other => panic!("expected ingest record, got {other:?}"),
        }
    }

    #[test]
    fn oversized_record_refused_not_written() {
        let dir = tempdir("oversize");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        // ~17 bytes per numeric cell: 2^21 single-cell rows overflow the
        // 16 MiB frame limit.
        let rows: Vec<Vec<Value>> = (0..(1 << 21)).map(|i| vec![Value::Num(i as f64)]).collect();
        let big = LogRecord::Ingest(IngestRecord {
            seq: 1,
            rows,
            adjustments: Vec::new(),
        });
        assert!(matches!(log.append(&big), Err(StoreError::Mismatch(_))));
        // The log is untouched and still usable.
        log.append(&record(1, 1.0)).unwrap();
        drop(log);
        let (_, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn torn_tail_truncated_at_every_offset() {
        let dir = tempdir("torn");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..5 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let full = std::fs::read(&path).unwrap();
        for cut in (LOG_HEADER_LEN as usize..full.len()).step_by(7) {
            let scan = scan_log_bytes(&full[..cut]);
            // Valid prefix parses; no panic; record count is the number of
            // whole frames before the cut.
            assert!(scan.valid_len <= cut as u64);
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r.seq(), i as u64);
            }
        }
    }

    #[test]
    fn corrupt_byte_stops_scan_at_record_boundary() {
        let dir = tempdir("flip");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..5 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the third record's payload.
        let scan = scan_log_bytes(&bytes);
        assert_eq!(scan.records.len(), 5);
        let third_start = {
            // Walk two frames.
            let mut pos = LOG_HEADER_LEN as usize;
            for _ in 0..2 {
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
            }
            pos
        };
        bytes[third_start + 12] ^= 0xFF;
        let scan = scan_log_bytes(&bytes);
        assert_eq!(scan.records.len(), 2, "scan stops before corrupt record");
        assert_eq!(scan.valid_len, third_start as u64);
    }

    #[test]
    fn reopen_after_torn_write_appends_cleanly() {
        let dir = tempdir("reopen");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..4 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        // Simulate a torn write: chop 3 bytes off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut log, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.torn_bytes > 0);
        log.append(&record(3, 3.0)).unwrap();
        drop(log);
        let (_, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn reset_empties_log() {
        let dir = tempdir("reset");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..3 {
            log.append(&record(i, 0.0)).unwrap();
        }
        assert_eq!(log.appended_since_reset(), 3);
        log.reset().unwrap();
        assert_eq!(log.appended_since_reset(), 0);
        log.append(&record(3, 1.0)).unwrap();
        drop(log);
        let (_, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq(), 3);
    }

    #[test]
    fn foreign_file_treated_as_fully_torn() {
        let scan = scan_log_bytes(b"not a log at all");
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.header, HeaderStatus::WrongMagic);
    }

    #[test]
    fn foreign_file_refused_not_truncated() {
        let dir = tempdir("foreign");
        let path = dir.join("wal.vlog");
        std::fs::write(&path, b"user data that merely shares the log's file name").unwrap();
        assert!(SnippetLog::open(&path).is_err());
        // The file must be untouched.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..9], b"user data");
    }

    #[test]
    fn newer_log_version_refused_not_truncated() {
        let dir = tempdir("version");
        let path = dir.join("wal.vlog");
        let mut log = SnippetLog::create(&path).unwrap();
        for i in 0..3 {
            log.append(&record(i, i as f64)).unwrap();
        }
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        let before = bytes.len();
        bytes[8..12].copy_from_slice(&(LOG_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(SnippetLog::open(&path).is_err(), "newer version refused");
        // No byte of the newer build's records was destroyed.
        assert_eq!(std::fs::read(&path).unwrap().len(), before);
    }

    #[test]
    fn header_only_torn_create_rewritten() {
        let dir = tempdir("torncreate");
        let path = dir.join("wal.vlog");
        std::fs::write(&path, &LOG_MAGIC[..5]).unwrap();
        let (mut log, scan) = SnippetLog::open(&path).unwrap();
        assert_eq!(scan.header, HeaderStatus::TooShort);
        log.append(&record(0, 1.0)).unwrap();
        drop(log);
        let (_, rescan) = SnippetLog::open(&path).unwrap();
        assert_eq!(rescan.records.len(), 1);
    }
}
