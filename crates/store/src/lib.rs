//! Durable, versioned synopsis store — the database's long-term memory.
//!
//! The paper's promise is a database that *becomes smarter every time*;
//! this crate makes that intelligence survive restarts. It persists the
//! three things a [`verdict_core::Verdict`] engine learns — the query
//! synopsis, the fitted kernel hyperparameters, and the conditioning state
//! (`Σₙ⁻¹`, `α`) — with the classic WAL + snapshot architecture:
//!
//! - **Append-only snippet log** ([`log::SnippetLog`], `wal.vlog`): every
//!   observed snippet is appended as a length-prefixed, CRC-32-checksummed
//!   record carrying a monotone sequence number. Appends are incremental
//!   (`O(record)`, not `O(state)`), driven by the engine's
//!   [`verdict_core::SnippetObserver`] hook.
//! - **Compacted snapshots** ([`snapshot`], `snapshot-<gen>.vsnap`):
//!   periodically, the full session state — base table, session
//!   parameters, synopses, trained models — is written to a fresh
//!   generation file (temp + fsync + atomic rename) and the log is
//!   truncated. Snapshots record the last folded sequence number, so a
//!   crash between "write snapshot" and "truncate log" never double
//!   applies records.
//! - **Crash-safe recovery** ([`store::SynopsisStore::open`]): the newest
//!   snapshot generation that validates is loaded (corrupt generations
//!   fall back to older ones), the log's torn tail — short writes, bad
//!   checksums, garbage lengths — is truncated away, and surviving
//!   records with `seq > snapshot.last_seq` are replayed into the
//!   synopsis.
//!
//! ## Catalog layout (version 3)
//!
//! A multi-table `Database` persists under one root directory: a
//! [`catalog`] manifest (`CATALOG`: magic `"VDBLCATL"`, version 3,
//! CRC-checked ordered table names) plus one complete per-table store in
//! `tables/<name>/`. Every per-table store is an ordinary v2 directory,
//! so the WAL/snapshot/recovery machinery below applies per table
//! unchanged, and a v2 single-table directory (no manifest) still opens.
//!
//! ## Per-table store format (version 2)
//!
//! All integers little-endian; all floats raw IEEE-754 bits (bit-exact
//! round trips). Payload encodings come from [`verdict_core::persist`].
//! Version 2 replaced v1's write-once `table.vtab` with **table
//! generations** and added **ingest records** to the WAL, so the store
//! can persist an evolving relation.
//!
//! ```text
//! table-<gen>.vtab (immutable once written; a checkpoint that folds
//!                   ingest records writes the next generation):
//!   magic    8B  "VDBLTABL"
//!   version  u32 = 1
//!   body_len u64
//!   body_crc u32   CRC-32 (ISO-HDLC) of body
//!   body         Table (schema + columns)
//!
//! snapshot-<gen>.vsnap:
//!   magic     8B  "VDBLSNAP"
//!   version   u32 = 2
//!   last_seq  u64   highest log sequence folded into this snapshot
//!   table_gen u64   table generation the state was learned against
//!   body_len  u64
//!   body_crc  u32   CRC-32 (ISO-HDLC) of body
//!   body          SessionMeta ++ table_fp u64 ++ data_epoch u64
//!                 ++ EngineState
//!
//! wal.vlog:
//!   magic    8B  "VDBLWLOG"
//!   version  u32 = 2
//!   reserved u32 = 0
//!   records:
//!     len u32 | crc u32 | payload   (crc over payload)
//!     payload = tag u8 = 1 | seq u64 | AggKey | Region | Observation
//!             | tag u8 = 2 | seq u64 | rows | adjustments
//!       rows        = count u64, then per row: count u64, then per value
//!                     tag u8 (0 = Num f64, 1 = Cat u32, 2 = Str)
//!       adjustments = count u64, then per entry: AggKey ++
//!                     AppendAdjustment (µ f64, η f64, |r| u64, |r_a| u64)
//!
//! LOCK: advisory single-writer lock (flock'd while a session is live;
//!       released automatically by the OS on process death)
//! ```
//!
//! ## Out-of-core partitions (format v4)
//!
//! A session built with `partition_by` + `persist_to` goes **paged**: the
//! base table's rows never live in `table-<gen>.vtab` generations at all.
//! Instead each partition's rows sit in an append-only column file,
//! `part-<id>.vcol` (see [`partfile`] for the exact frame layout), and
//! the snapshot body carries a [`PagedState`] — the partition map with
//! per-partition summaries, the frozen create-time cardinalities the
//! sample segments draw over, the zero-row *resolution* table holding
//! the schema and full categorical dictionaries, and each sample's
//! resident ingest tail. Queries fault partition segments in on demand
//! under a byte budget; partitions whose summaries exclude the predicate
//! are pruned without opening their files at all.
//!
//! Ingest stays WAL-first: the row batch lands in `wal.vlog` (tag 2, as
//! in v2), then write-extends **only** the `part-<id>.vcol` files that
//! actually received rows, stamping each appended record with the
//! batch's WAL sequence. Recovery after a crash heals torn part-file
//! tails by frame CRC (exactly like the WAL's own tail), verifies each
//! file's record-0 CRC against the manifest fingerprint, and re-appends
//! any WAL ingest batch whose sequence is missing from a partition's
//! file — record-level idempotence, so a batch that "won the crash" in
//! some partitions and lost it in others converges without double
//! appends. Answers after recovery are bit-identical to a session that
//! never crashed.
//!
//! Snapshots carry only the session metadata and learned state; the
//! (potentially large) base table lives in immutable generation files
//! bound to each snapshot by generation number and FNV-1a fingerprint. A
//! checkpoint rewrites the table **only** when ingest records landed
//! since the previous generation, so compaction cost on a non-evolving
//! table still scales with the synopsis rather than the data. An ingest
//! record carries the appended rows *and* the synopsis adjustments the
//! live engine applied, so recovery replays exactly what the live
//! session did — a torn ingest frame recovers to the last complete
//! batch, with table, sample, and synopses mutually consistent. A log or
//! snapshot whose header carries an unknown version or foreign magic is
//! refused, never truncated.

pub mod catalog;
pub mod crc;
pub mod log;
pub mod partfile;
pub mod snapshot;
pub mod store;
pub mod tablecodec;

pub use catalog::{read_catalog, write_catalog, CatalogManifest};
pub use partfile::{read_part_rows, PagedState, PartScan};
pub use snapshot::{SessionMeta, Snapshot};
pub use store::{
    PagedRecovered, Recovered, RecoveryReport, SharedStore, SnapshotReceipt, StorePolicy,
    StoreStats, SynopsisStore,
};

/// Errors raised by the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A frame or payload failed structural validation.
    Corrupt(String),
    /// Payload decoding failure (from `verdict_core::persist`).
    Persist(verdict_core::PersistError),
    /// The store exists but belongs to a different schema/session shape.
    Mismatch(String),
    /// No usable snapshot was found where one was required.
    NotFound(String),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<verdict_core::PersistError> for StoreError {
    fn from(e: verdict_core::PersistError) -> Self {
        StoreError::Persist(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::Persist(e) => write!(f, "store payload: {e}"),
            StoreError::Mismatch(m) => write!(f, "store mismatch: {m}"),
            StoreError::NotFound(m) => write!(f, "store not found: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
