//! Durable, versioned synopsis store — the database's long-term memory.
//!
//! The paper's promise is a database that *becomes smarter every time*;
//! this crate makes that intelligence survive restarts. It persists the
//! three things a [`verdict_core::Verdict`] engine learns — the query
//! synopsis, the fitted kernel hyperparameters, and the conditioning state
//! (`Σₙ⁻¹`, `α`) — with the classic WAL + snapshot architecture:
//!
//! - **Append-only snippet log** ([`log::SnippetLog`], `wal.vlog`): every
//!   observed snippet is appended as a length-prefixed, CRC-32-checksummed
//!   record carrying a monotone sequence number. Appends are incremental
//!   (`O(record)`, not `O(state)`), driven by the engine's
//!   [`verdict_core::SnippetObserver`] hook.
//! - **Compacted snapshots** ([`snapshot`], `snapshot-<gen>.vsnap`):
//!   periodically, the full session state — base table, session
//!   parameters, synopses, trained models — is written to a fresh
//!   generation file (temp + fsync + atomic rename) and the log is
//!   truncated. Snapshots record the last folded sequence number, so a
//!   crash between "write snapshot" and "truncate log" never double
//!   applies records.
//! - **Crash-safe recovery** ([`store::SynopsisStore::open`]): the newest
//!   snapshot generation that validates is loaded (corrupt generations
//!   fall back to older ones), the log's torn tail — short writes, bad
//!   checksums, garbage lengths — is truncated away, and surviving
//!   records with `seq > snapshot.last_seq` are replayed into the
//!   synopsis.
//!
//! ## On-disk format (version 1)
//!
//! All integers little-endian; all floats raw IEEE-754 bits (bit-exact
//! round trips). Payload encodings come from [`verdict_core::persist`].
//!
//! ```text
//! table.vtab (written once at store creation; never rewritten):
//!   magic    8B  "VDBLTABL"
//!   version  u32 = 1
//!   body_len u64
//!   body_crc u32   CRC-32 (ISO-HDLC) of body
//!   body         Table (schema + columns)
//!
//! snapshot-<gen>.vsnap:
//!   magic    8B  "VDBLSNAP"
//!   version  u32 = 1
//!   last_seq u64   highest log sequence folded into this snapshot
//!   body_len u64
//!   body_crc u32   CRC-32 (ISO-HDLC) of body
//!   body         SessionMeta ++ table_fp u64 ++ EngineState
//!
//! wal.vlog:
//!   magic    8B  "VDBLWLOG"
//!   version  u32 = 1
//!   reserved u32 = 0
//!   records:
//!     len u32 | crc u32 | payload   (crc over payload)
//!     payload = tag u8 = 1 | seq u64 | AggKey | Region | Observation
//!
//! LOCK: advisory single-writer lock (flock'd while a session is live;
//!       released automatically by the OS on process death)
//! ```
//!
//! Snapshots carry only the session metadata and learned state; the
//! (potentially large, immutable) base table is written once and bound
//! to each snapshot by its FNV-1a fingerprint, so compaction cost scales
//! with the synopsis rather than the data. A log whose header carries an
//! unknown (newer) version or foreign magic is refused, never truncated.

pub mod crc;
pub mod log;
pub mod snapshot;
pub mod store;
pub mod tablecodec;

pub use snapshot::{SessionMeta, Snapshot};
pub use store::{Recovered, RecoveryReport, SharedStore, StorePolicy, SynopsisStore};

/// Errors raised by the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A frame or payload failed structural validation.
    Corrupt(String),
    /// Payload decoding failure (from `verdict_core::persist`).
    Persist(verdict_core::PersistError),
    /// The store exists but belongs to a different schema/session shape.
    Mismatch(String),
    /// No usable snapshot was found where one was required.
    NotFound(String),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<verdict_core::PersistError> for StoreError {
    fn from(e: verdict_core::PersistError) -> Self {
        StoreError::Persist(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::Persist(e) => write!(f, "store payload: {e}"),
            StoreError::Mismatch(m) => write!(f, "store mismatch: {m}"),
            StoreError::NotFound(m) => write!(f, "store not found: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
