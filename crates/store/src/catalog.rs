//! The database catalog manifest (`CATALOG`) — store layout v3.
//!
//! A multi-table database persists under **one** root directory:
//!
//! ```text
//! <root>/CATALOG              the manifest: ordered table names
//! <root>/tables/<name>/       one complete per-table store each
//!     wal.vlog, snapshot-*.vsnap, table-*.vtab, LOCK   (format v2)
//! ```
//!
//! The manifest is tiny and immutable for a given catalog (tables are
//! registered at build time); each per-table subdirectory is an ordinary
//! [`crate::SynopsisStore`] directory, so all the v2 crash-safety
//! machinery — WAL replay, snapshot generations, torn-tail truncation,
//! advisory locks — applies per table unchanged. A v2 single-table
//! directory (no `CATALOG` file, store files at the root) still opens:
//! `Database::open` detects the layout by the manifest's presence.
//!
//! The manifest is written with the same atomicity discipline as every
//! other store file: temp file, fsync, rename, parent-directory fsync.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::snapshot::sync_dir;
use crate::{Result, StoreError};

/// File magic for the catalog manifest.
pub const CATALOG_MAGIC: [u8; 8] = *b"VDBLCATL";
/// Store layout version the manifest declares. v3 = catalog manifest +
/// per-table subdirectories (v2 = flat single-table store, v1 = v2 with a
/// write-once table file).
pub const CATALOG_VERSION: u32 = 3;
/// Manifest file name inside the root directory.
pub const CATALOG_FILE: &str = "CATALOG";
/// Subdirectory holding the per-table stores.
pub const TABLES_DIR: &str = "tables";

/// The decoded catalog manifest: the database's table names, in
/// registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogManifest {
    /// Registered table names, in registration order.
    pub tables: Vec<String>,
}

/// Whether `name` can name a catalog table: a SQL identifier (what the
/// lexer can produce for `FROM`), which is also — by construction — a
/// safe subdirectory name.
pub fn is_valid_table_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The per-table store directory for `name` under `root`.
pub fn table_dir(root: &Path, name: &str) -> PathBuf {
    root.join(TABLES_DIR).join(name)
}

/// Whether `root` holds a v3 catalog (a manifest file exists).
pub fn catalog_exists(root: &Path) -> bool {
    root.join(CATALOG_FILE).is_file()
}

/// Writes the manifest into `root` (created if missing), atomically.
pub fn write_catalog(root: &Path, manifest: &CatalogManifest) -> Result<()> {
    for name in &manifest.tables {
        if !is_valid_table_name(name) {
            return Err(StoreError::Mismatch(format!(
                "invalid table name {name:?}: must be an identifier \
                 ([A-Za-z_][A-Za-z0-9_]*, at most 64 bytes)"
            )));
        }
    }
    let mut body = Vec::new();
    body.extend_from_slice(&(manifest.tables.len() as u32).to_le_bytes());
    for name in &manifest.tables {
        body.extend_from_slice(&(name.len() as u32).to_le_bytes());
        body.extend_from_slice(name.as_bytes());
    }
    let mut bytes = Vec::with_capacity(20 + body.len());
    bytes.extend_from_slice(&CATALOG_MAGIC);
    bytes.extend_from_slice(&CATALOG_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    std::fs::create_dir_all(root)?;
    let final_path = root.join(CATALOG_FILE);
    let tmp_path = root.join("CATALOG.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(root)?;
    Ok(())
}

/// Reads and validates the manifest from `root`.
pub fn read_catalog(root: &Path) -> Result<CatalogManifest> {
    let path = root.join(CATALOG_FILE);
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 20 {
        return Err(StoreError::Corrupt("catalog shorter than header".into()));
    }
    if bytes[..8] != CATALOG_MAGIC {
        return Err(StoreError::Corrupt("bad catalog magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CATALOG_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported catalog version {version}"
        )));
    }
    let body_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let body_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let body = bytes
        .get(20..20 + body_len)
        .ok_or_else(|| StoreError::Corrupt("catalog truncated".into()))?;
    if bytes.len() != 20 + body_len {
        return Err(StoreError::Corrupt("catalog trailing bytes".into()));
    }
    if crc32(body) != body_crc {
        return Err(StoreError::Corrupt("catalog checksum mismatch".into()));
    }

    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let s = body
            .get(*pos..*pos + n)
            .ok_or_else(|| StoreError::Corrupt("catalog body truncated".into()))?;
        *pos += n;
        Ok(s)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let mut tables = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(take(&mut pos, len)?)
            .map_err(|_| StoreError::Corrupt("catalog name is not UTF-8".into()))?
            .to_owned();
        if !is_valid_table_name(&name) {
            return Err(StoreError::Corrupt(format!(
                "catalog holds invalid table name {name:?}"
            )));
        }
        tables.push(name);
    }
    if pos != body.len() {
        return Err(StoreError::Corrupt("catalog body trailing bytes".into()));
    }
    Ok(CatalogManifest { tables })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("verdict-catalog-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips() {
        let dir = tempdir("roundtrip");
        let manifest = CatalogManifest {
            tables: vec!["orders".into(), "events".into()],
        };
        write_catalog(&dir, &manifest).unwrap();
        assert!(catalog_exists(&dir));
        assert_eq!(read_catalog(&dir).unwrap(), manifest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_detected() {
        let dir = tempdir("corrupt");
        write_catalog(
            &dir,
            &CatalogManifest {
                tables: vec!["orders".into()],
            },
        )
        .unwrap();
        let path = dir.join(CATALOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_catalog(&dir), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_version_refused() {
        let dir = tempdir("version");
        write_catalog(
            &dir,
            &CatalogManifest {
                tables: vec!["t".into()],
            },
        )
        .unwrap();
        let path = dir.join(CATALOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_catalog(&dir), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn name_validation() {
        assert!(is_valid_table_name("orders"));
        assert!(is_valid_table_name("_t2"));
        assert!(!is_valid_table_name(""));
        assert!(!is_valid_table_name("2fast"));
        assert!(!is_valid_table_name("has space"));
        assert!(!is_valid_table_name("dot.dot"));
        assert!(!is_valid_table_name("../escape"));
        assert!(!is_valid_table_name(&"x".repeat(65)));
        let dir = tempdir("badname");
        let err = write_catalog(
            &dir,
            &CatalogManifest {
                tables: vec!["../escape".into()],
            },
        );
        assert!(matches!(err, Err(StoreError::Mismatch(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_dirs_nest_under_tables() {
        let root = Path::new("/data/db");
        assert_eq!(
            table_dir(root, "orders"),
            Path::new("/data/db/tables/orders")
        );
    }
}
