//! Per-query pipeline tracing and the bounded in-memory query log.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Wall-clock nanoseconds spent in each pipeline stage of one query.
///
/// Stages map onto the engine pipeline: lex/parse → plan (incl. group
/// enumeration) → shared scan → inference → observe/absorb (learning,
/// with snapshot publication folded in — publication is a pointer swap
/// and not worth its own clock). Stages that did not run (e.g. `parse_ns`
/// on the prepared path, `absorb_ns` when nothing was learned) are 0.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Lex + parse + check + resolve (0 on the prepared path).
    pub parse_ns: u64,
    /// Snippet decomposition / plan construction / group enumeration.
    pub plan_ns: u64,
    /// The shared sample scan (batch stepping), inference excluded.
    pub scan_ns: u64,
    /// Max-entropy inference: per-batch bound evaluation + finalization.
    pub infer_ns: u64,
    /// Synopsis absorb + model update + snapshot publication.
    pub absorb_ns: u64,
}

impl StageTimings {
    /// Sum of all stage clocks (≤ the query's total elapsed time; the
    /// difference is glue: snapshot pinning, row assembly, …).
    pub fn total_ns(&self) -> u64 {
        self.parse_ns + self.plan_ns + self.scan_ns + self.infer_ns + self.absorb_ns
    }
}

/// Counters filled by the shared-scan executor while a traced query runs.
/// This is the executor-facing half of a [`QueryTrace`]; the serving
/// layer folds it into the full trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanTrace {
    /// Nanoseconds spent stepping the scan (inference excluded).
    pub scan_ns: u64,
    /// Nanoseconds spent evaluating bounds / finalizing answers.
    pub infer_ns: u64,
    /// Scan batches actually stepped.
    pub batches: u64,
    /// Result cells (rows × aggregates) in the answer.
    pub cells: u64,
    /// Cells frozen before the scan ended (error target met early).
    pub cells_frozen_early: u64,
    /// Snippets recorded for the synopsis by this query.
    pub snippets_observed: u64,
    /// Chunk segments visited by the chunked kernel (0 row-wise).
    pub chunks: u64,
    /// Chunk segments skipped via zone maps without touching data.
    pub chunks_pruned: u64,
    /// Rows that passed the query's base predicate.
    pub rows_matched: u64,
    /// Morsels claimed by parallel scan workers (0 on a serial scan).
    pub morsels: u64,
    /// Morsels a worker stole from another worker's deque.
    pub morsels_stolen: u64,
    /// Horizontal partitions of the scanned sample (0 unpartitioned).
    pub partitions: u64,
    /// Partitions whose batches were skipped wholesale (summary provably
    /// disjoint from the predicate).
    pub partitions_pruned: u64,
    /// Out-of-core segment pins served from the partition cache (0 on a
    /// fully-resident sample).
    pub partition_cache_hits: u64,
    /// Out-of-core segment pins that faulted the segment from disk.
    pub partition_cache_misses: u64,
    /// Bytes faulted in from partition files by this query's scan.
    pub partition_bytes_faulted: u64,
}

/// One query's trace: per-stage timings plus engine facts. Stored in the
/// [`QueryLog`] and (as [`std::sync::Arc`]) on the query result.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// Monotone per-log sequence number (assigned at push).
    pub seq: u64,
    /// Catalog table the query addressed.
    pub table: String,
    /// Statement text. The prepared path stamps the template's SQL (with
    /// `?` placeholders, not the bound literals), so server-side logs
    /// stay attributable; `None` only for producers with no statement
    /// text at all.
    pub sql: Option<String>,
    /// Whether this execution came through a prepared statement.
    pub prepared: bool,
    /// Inference mode, rendered (`"verdict"` / `"no-learn"`).
    pub mode: String,
    /// Learned-state epoch the read pinned.
    pub epoch: u64,
    /// Data version the read pinned.
    pub data_epoch: u64,
    /// Sample tuples scanned.
    pub tuples_scanned: u64,
    /// Scan batches stepped.
    pub batches: u64,
    /// Result cells (rows × aggregates).
    pub cells: u64,
    /// Cells frozen before the scan ended.
    pub cells_frozen_early: u64,
    /// Snippets recorded for the synopsis.
    pub snippets_observed: u64,
    /// Chunk segments the scan visited (0 under the row-wise kernel).
    pub chunks: u64,
    /// Chunk segments skipped via zone maps without touching data.
    pub chunks_pruned: u64,
    /// Rows that passed the query's base predicate.
    pub rows_matched: u64,
    /// Morsels claimed by parallel scan workers (0 on a serial scan).
    pub morsels: u64,
    /// Morsels stolen across worker deques.
    pub morsels_stolen: u64,
    /// Horizontal partitions of the scanned sample (0 unpartitioned).
    pub partitions: u64,
    /// Partitions skipped wholesale by partition-level summaries.
    pub partitions_pruned: u64,
    /// Out-of-core segment pins served from the partition cache.
    pub partition_cache_hits: u64,
    /// Out-of-core segment pins that faulted the segment from disk.
    pub partition_cache_misses: u64,
    /// Bytes faulted in from partition files by this query's scan.
    pub partition_bytes_faulted: u64,
    /// Per-stage wall-clock.
    pub stages: StageTimings,
    /// Total wall-clock for the query, nanoseconds.
    pub elapsed_ns: u64,
}

/// A bounded in-memory ring buffer of recent [`QueryTrace`]s.
///
/// Pushes assign a monotone sequence number; once `capacity` traces are
/// held, each push evicts the oldest. Cheap to share (`Arc<QueryLog>`),
/// safe from any thread.
#[derive(Debug)]
pub struct QueryLog {
    capacity: usize,
    next_seq: AtomicU64,
    ring: Mutex<VecDeque<Arc<QueryTrace>>>,
}

impl QueryLog {
    /// A log holding at most `capacity` traces (capacity 0 keeps nothing
    /// but still assigns sequence numbers).
    pub fn new(capacity: usize) -> QueryLog {
        QueryLog {
            capacity,
            next_seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Maximum number of traces retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the log holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever pushed (= the next sequence number).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Assigns the trace its sequence number, pushes it, and returns the
    /// shared handle.
    pub fn push(&self, mut trace: QueryTrace) -> Arc<QueryTrace> {
        trace.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let arc = Arc::new(trace);
        let mut ring = self.ring.lock().unwrap();
        if self.capacity > 0 {
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(Arc::clone(&arc));
        }
        arc
    }

    /// The `n` most recent traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        let ring = self.ring.lock().unwrap();
        ring.iter().rev().take(n).cloned().collect()
    }
}

/// A clock that reads `Instant::now()` only when enabled — the metrics
/// hub's disabled path must not touch the OS clock at all.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts the clock.
    pub fn started() -> Stopwatch {
        Stopwatch(Some(Instant::now()))
    }

    /// A stopped clock: [`Stopwatch::elapsed_ns`] returns 0 and no time
    /// syscall is ever made.
    pub fn disabled() -> Stopwatch {
        Stopwatch(None)
    }

    /// Starts the clock only when `enabled`.
    pub fn started_if(enabled: bool) -> Stopwatch {
        if enabled {
            Stopwatch::started()
        } else {
            Stopwatch::disabled()
        }
    }

    /// Whether the clock is running.
    pub fn is_running(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the clock started (0 when disabled; saturates
    /// at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        match self.0 {
            Some(t) => {
                let n = t.elapsed().as_nanos();
                if n > u64::MAX as u128 {
                    u64::MAX
                } else {
                    n as u64
                }
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(table: &str) -> QueryTrace {
        QueryTrace {
            seq: 0,
            table: table.to_string(),
            sql: Some("SELECT 1".to_string()),
            prepared: false,
            mode: "verdict".to_string(),
            epoch: 0,
            data_epoch: 0,
            tuples_scanned: 0,
            batches: 0,
            cells: 0,
            cells_frozen_early: 0,
            snippets_observed: 0,
            chunks: 0,
            chunks_pruned: 0,
            rows_matched: 0,
            morsels: 0,
            morsels_stolen: 0,
            partitions: 0,
            partitions_pruned: 0,
            partition_cache_hits: 0,
            partition_cache_misses: 0,
            partition_bytes_faulted: 0,
            stages: StageTimings::default(),
            elapsed_ns: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_monotone_seq() {
        let log = QueryLog::new(3);
        for i in 0..5 {
            let t = log.push(trace(&format!("t{i}")));
            assert_eq!(t.seq, i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_pushed(), 5);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 3);
        // Newest first, oldest two evicted.
        assert_eq!(recent[0].seq, 4);
        assert_eq!(recent[2].seq, 2);
        assert_eq!(log.recent(1).len(), 1);
    }

    #[test]
    fn zero_capacity_log_retains_nothing() {
        let log = QueryLog::new(0);
        log.push(trace("t"));
        assert!(log.is_empty());
        assert_eq!(log.total_pushed(), 1);
    }

    #[test]
    fn disabled_stopwatch_reads_zero() {
        let sw = Stopwatch::disabled();
        assert!(!sw.is_running());
        assert_eq!(sw.elapsed_ns(), 0);
        assert!(Stopwatch::started_if(true).is_running());
        assert!(!Stopwatch::started_if(false).is_running());
    }

    #[test]
    fn stage_total_sums_all_clocks() {
        let s = StageTimings {
            parse_ns: 1,
            plan_ns: 2,
            scan_ns: 3,
            infer_ns: 4,
            absorb_ns: 5,
        };
        assert_eq!(s.total_ns(), 15);
    }
}
