//! The metrics registry and its lock-free handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};

/// Number of log₂ buckets in a [`Histogram`]. Bucket `i` covers values in
/// `[2^i, 2^(i+1))` (bucket 0 also absorbs 0), so 64 buckets cover the
/// whole `u64` range.
pub(crate) const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count. Cloning shares the underlying
/// atomic; updates are relaxed atomic adds — safe and cheap from any
/// thread.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up or down (f64, stored as bits in an atomic).
/// `set` is a plain store; `add` is a CAS loop — both lock-free.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    fn new() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A fixed-bucket log₂-scale histogram: 64 buckets, bucket `i` covering
/// `[2^i, 2^(i+1))`. Recording is two relaxed adds and one relaxed
/// increment — no locks, no allocation. Percentiles are extracted from
/// the bucket counts with ~±50% resolution (each bucket is represented by
/// its geometric midpoint `1.5·2^i`).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Representative value for bucket `i` (geometric midpoint of its range).
pub(crate) fn bucket_mid(i: usize) -> f64 {
    1.5 * (i as f64).exp2()
}

impl Histogram {
    fn new() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// Registry key: metric name plus an optional `table` label.
type Key = (String, Option<String>);

/// The metrics registry.
///
/// One hub serves a whole [`Database`](https://docs.rs/verdict): share it
/// via `Arc`. Metric handles are get-or-create by `(name, table-label)`;
/// registration locks a mutex (cold path, typically once per table at
/// build time), after which the returned handle updates shared atomics
/// without any locking.
///
/// Names follow Prometheus conventions (`verdict_queries_started_total`);
/// the only label in use is `table`.
#[derive(Default)]
pub struct MetricsHub {
    counters: Mutex<BTreeMap<Key, Counter>>,
    gauges: Mutex<BTreeMap<Key, Gauge>>,
    histograms: Mutex<BTreeMap<Key, Histogram>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub").finish_non_exhaustive()
    }
}

impl MetricsHub {
    /// A fresh, empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_for(name, None)
    }

    /// Get-or-create a counter labelled `table="..."`.
    pub fn table_counter(&self, name: &str, table: &str) -> Counter {
        self.counter_for(name, Some(table))
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_for(name, None)
    }

    /// Get-or-create a gauge labelled `table="..."`.
    pub fn table_gauge(&self, name: &str, table: &str) -> Gauge {
        self.gauge_for(name, Some(table))
    }

    /// Get-or-create an unlabelled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_for(name, None)
    }

    /// Get-or-create a histogram labelled `table="..."`.
    pub fn table_histogram(&self, name: &str, table: &str) -> Histogram {
        self.histogram_for(name, Some(table))
    }

    fn counter_for(&self, name: &str, table: Option<&str>) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry((name.to_string(), table.map(str::to_string)))
            .or_insert_with(Counter::new)
            .clone()
    }

    fn gauge_for(&self, name: &str, table: Option<&str>) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry((name.to_string(), table.map(str::to_string)))
            .or_insert_with(Gauge::new)
            .clone()
    }

    fn histogram_for(&self, name: &str, table: Option<&str>) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry((name.to_string(), table.map(str::to_string)))
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Captures a point-in-time snapshot of every registered metric.
    /// Values are read with relaxed ordering; concurrent updates may or
    /// may not be included, but each individual metric is internally
    /// consistent enough for monitoring (histogram `count`/`sum`/buckets
    /// are read as three separate loads).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|((name, table), c)| CounterSnapshot {
                name: name.clone(),
                table: table.clone(),
                value: c.value(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|((name, table), g)| GaugeSnapshot {
                name: name.clone(),
                table: table.clone(),
                value: g.value(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|((name, table), h)| {
                HistogramSnapshot::from_parts(
                    name.clone(),
                    table.clone(),
                    h.count(),
                    h.sum(),
                    h.bucket_counts(),
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shares_state_across_clones() {
        let hub = MetricsHub::new();
        let a = hub.counter("verdict_x_total");
        let b = hub.counter("verdict_x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        assert_eq!(hub.counter("verdict_x_total").value(), 3);
        // A different label is a different series.
        assert_eq!(hub.table_counter("verdict_x_total", "t").value(), 0);
    }

    #[test]
    fn gauge_set_and_add() {
        let hub = MetricsHub::new();
        let g = hub.table_gauge("verdict_rows", "t");
        g.set(10.0);
        g.add(-2.5);
        assert_eq!(g.value(), 7.5);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let hub = MetricsHub::new();
        let h = hub.histogram("verdict_latency_ns");
        // 90 small values, 10 large: p50 lands in the small bucket,
        // p99 in the large one.
        for _ in 0..90 {
            h.record(1000); // bucket 9 (512..1024 is bucket 9? 1000 < 1024 → idx 9)
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 1000 + 10 * 1_000_000);
        let snap = hub.snapshot();
        let hs = snap.histogram("verdict_latency_ns", None).unwrap();
        let p50 = hs.percentile(0.50).unwrap();
        let p99 = hs.percentile(0.99).unwrap();
        // Log-bucket resolution: within a factor of 2.
        assert!((512.0..=2048.0).contains(&p50), "p50={p50}");
        assert!((500_000.0..=2_000_000.0).contains(&p99), "p99={p99}");
        assert!(hs.percentile(0.0).is_some());
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let hub = MetricsHub::new();
        hub.histogram("verdict_empty");
        let snap = hub.snapshot();
        let hs = snap.histogram("verdict_empty", None).unwrap();
        assert_eq!(hs.count, 0);
        assert!(hs.percentile(0.5).is_none());
    }
}
