//! Point-in-time snapshots of the registry and their renderings.

use crate::hub::{bucket_mid, HISTOGRAM_BUCKETS};

/// One counter's value at snapshot time.
#[derive(Clone, Debug)]
pub struct CounterSnapshot {
    /// Metric name (`verdict_*_total`).
    pub name: String,
    /// Value of the `table` label, if the series is per-table.
    pub table: Option<String>,
    /// Counter value.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Clone, Debug)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value of the `table` label, if the series is per-table.
    pub table: Option<String>,
    /// Gauge value.
    pub value: f64,
}

/// One histogram's state at snapshot time, with percentile extraction.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Value of the `table` label, if the series is per-table.
    pub table: Option<String>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded observations.
    pub sum: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub(crate) fn from_parts(
        name: String,
        table: Option<String>,
        count: u64,
        sum: u64,
        buckets: [u64; HISTOGRAM_BUCKETS],
    ) -> HistogramSnapshot {
        HistogramSnapshot {
            name,
            table,
            count,
            sum,
            buckets: buckets.to_vec(),
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the geometric midpoint of the
    /// bucket holding that rank — resolution is ~±50% by construction.
    /// `None` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        // Unreachable if count == sum(buckets), but be safe under racy reads.
        Some(bucket_mid(HISTOGRAM_BUCKETS - 1))
    }

    /// Mean of recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A point-in-time typed tree of every registered metric, captured by
/// [`crate::MetricsHub::snapshot`]. Series are sorted by name then table
/// label, so [`MetricsSnapshot::to_text`] and [`MetricsSnapshot::to_json`]
/// are stable across runs.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by (name, table).
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by (name, table).
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by (name, table).
    pub histograms: Vec<HistogramSnapshot>,
}

fn series(name: &str, table: &Option<String>) -> String {
    match table {
        Some(t) => format!("{name}{{table=\"{t}\"}}"),
        None => name.to_string(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip isn't needed; {v} prints enough digits.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl MetricsSnapshot {
    /// Looks up a counter's value by name and optional `table` label.
    pub fn counter(&self, name: &str, table: Option<&str>) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.table.as_deref() == table)
            .map(|c| c.value)
    }

    /// Looks up a gauge's value by name and optional `table` label.
    pub fn gauge(&self, name: &str, table: Option<&str>) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.table.as_deref() == table)
            .map(|g| g.value)
    }

    /// Looks up a histogram by name and optional `table` label.
    pub fn histogram(&self, name: &str, table: Option<&str>) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.table.as_deref() == table)
    }

    /// Prometheus-style text exposition: one `# TYPE` line per metric
    /// name, then one line per series. Histograms expose `_count`,
    /// `_sum`, and precomputed `_p50`/`_p90`/`_p99` summary lines (the
    /// raw buckets stay in the typed tree / JSON).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for c in &self.counters {
            if c.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", c.name));
                last_name = &c.name;
            }
            out.push_str(&format!("{} {}\n", series(&c.name, &c.table), c.value));
        }
        last_name = "";
        for g in &self.gauges {
            if g.name != last_name {
                out.push_str(&format!("# TYPE {} gauge\n", g.name));
                last_name = &g.name;
            }
            out.push_str(&format!("{} {}\n", series(&g.name, &g.table), g.value));
        }
        last_name = "";
        for h in &self.histograms {
            if h.name != last_name {
                out.push_str(&format!("# TYPE {} histogram\n", h.name));
                last_name = &h.name;
            }
            let count_name = format!("{}_count", h.name);
            let sum_name = format!("{}_sum", h.name);
            out.push_str(&format!("{} {}\n", series(&count_name, &h.table), h.count));
            out.push_str(&format!("{} {}\n", series(&sum_name, &h.table), h.sum));
            for (q, tag) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
                if let Some(v) = h.percentile(q) {
                    let qname = format!("{}_{tag}", h.name);
                    out.push_str(&format!("{} {}\n", series(&qname, &h.table), v));
                }
            }
        }
        out
    }

    /// JSON rendering of the whole tree (hand-rolled — this crate has no
    /// dependencies). Histograms carry `count`, `sum`, `mean`, and
    /// `p50`/`p90`/`p99`; empty histograms render those as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"table\":{},\"value\":{}}}",
                json_escape(&c.name),
                match &c.table {
                    Some(t) => format!("\"{}\"", json_escape(t)),
                    None => "null".to_string(),
                },
                c.value
            ));
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"table\":{},\"value\":{}}}",
                json_escape(&g.name),
                match &g.table {
                    Some(t) => format!("\"{}\"", json_escape(t)),
                    None => "null".to_string(),
                },
                json_f64(g.value)
            ));
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: Option<f64>| v.map(json_f64).unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"table\":{},\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_escape(&h.name),
                match &h.table {
                    Some(t) => format!("\"{}\"", json_escape(t)),
                    None => "null".to_string(),
                },
                h.count,
                h.sum,
                opt(h.mean()),
                opt(h.percentile(0.50)),
                opt(h.percentile(0.90)),
                opt(h.percentile(0.99)),
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsHub;

    #[test]
    fn text_and_json_are_stable_and_well_formed() {
        let hub = MetricsHub::new();
        hub.table_counter("verdict_queries_started_total", "t")
            .add(3);
        hub.table_counter("verdict_queries_started_total", "u")
            .add(1);
        hub.gauge("verdict_tables").set(2.0);
        hub.table_histogram("verdict_query_ns", "t").record(1024);
        let snap = hub.snapshot();

        let text = snap.to_text();
        assert!(text.contains("# TYPE verdict_queries_started_total counter"));
        assert!(text.contains("verdict_queries_started_total{table=\"t\"} 3"));
        assert!(text.contains("verdict_queries_started_total{table=\"u\"} 1"));
        assert!(text.contains("verdict_tables 2"));
        assert!(text.contains("verdict_query_ns_count{table=\"t\"} 1"));
        assert!(text.contains("verdict_query_ns_p50{table=\"t\"}"));

        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("\"name\":\"verdict_query_ns\""));
        assert!(json.contains("\"count\":1"));
        // Same hub, same snapshot ordering → identical rendering.
        assert_eq!(text, hub.snapshot().to_text());
    }

    #[test]
    fn lookup_helpers_distinguish_labels() {
        let hub = MetricsHub::new();
        hub.counter("verdict_global_total").add(7);
        hub.table_counter("verdict_global_total", "t").add(2);
        let snap = hub.snapshot();
        assert_eq!(snap.counter("verdict_global_total", None), Some(7));
        assert_eq!(snap.counter("verdict_global_total", Some("t")), Some(2));
        assert_eq!(snap.counter("verdict_global_total", Some("zzz")), None);
        assert_eq!(snap.gauge("missing", None), None);
    }
}
