//! # verdict-obs — observability substrate for the Verdict engine
//!
//! Zero-dependency metrics, pipeline tracing, and an in-memory query log.
//! This crate knows nothing about SQL, samples, or synopses — it is the
//! neutral substrate the engine crates instrument themselves with:
//!
//! - [`MetricsHub`] — a lock-free metrics registry. Registration (the
//!   cold path) takes a mutex once per distinct metric; the returned
//!   [`Counter`] / [`Gauge`] / [`Histogram`] handles are `Arc`'d atomics
//!   that hot paths update with relaxed atomic ops — no locks, no
//!   allocation, no syscalls.
//! - [`Histogram`] — fixed 64-bucket log₂-scale histogram with
//!   p50/p90/p99 extraction. Bucket *i* covers `[2^i, 2^(i+1))`, so
//!   percentiles carry ~±50% resolution; that is deliberate — the buckets
//!   are cheap, bounded, and mergeable, which is what a hot query path
//!   can afford.
//! - [`MetricsSnapshot`] — a point-in-time typed tree of every registered
//!   metric, with stable [`MetricsSnapshot::to_text`] (Prometheus-style
//!   lines) and [`MetricsSnapshot::to_json`] renderings.
//! - [`QueryTrace`] / [`StageTimings`] — one record per query: per-stage
//!   wall-clock (parse → plan → shared-scan → infer → absorb/publish) and
//!   engine facts (epoch read, tuples scanned, cells frozen early,
//!   snippets observed, prepared-vs-ad-hoc, table name).
//! - [`QueryLog`] — a bounded in-memory ring buffer of recent
//!   [`QueryTrace`]s with a monotone sequence number.
//!
//! ## The disabled path is a true no-op
//!
//! The engine threads `Option<Arc<MetricsHub>>` through its pipeline.
//! When the option is `None` nothing in this crate runs: no clocks are
//! read (see [`Stopwatch::disabled`]), no atomics are touched, and no
//! trace is allocated. The only residual cost in the engine is one
//! pointer-null check per instrumentation site, which is how the
//! ≤2% disabled-overhead guarantee is met.
//!
//! Answers are never affected by instrumentation: metrics observe the
//! pipeline, they do not participate in it. The root crate's parity test
//! proves metrics-on vs metrics-off answers are byte-identical.

mod hub;
mod snapshot;
mod trace;

pub use hub::{Counter, Gauge, Histogram, MetricsHub};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
pub use trace::{QueryLog, QueryTrace, ScanTrace, StageTimings, Stopwatch};
