//! Property-based tests for the linear-algebra kernel.

use proptest::prelude::*;
use verdict_linalg::cholesky::spd_solve;
use verdict_linalg::{quadratic_form, Cholesky, Matrix};

/// Builds a random SPD matrix `A = B Bᵀ + d·I` from a flat value vector.
fn spd_from(values: &[f64], n: usize) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| values[i * n + j]);
    let mut a = b.matmul(&b.transpose()).unwrap();
    a.add_diagonal(0.5);
    a
}

fn spd_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<f64>)> {
    (1..=max_n).prop_flat_map(|n| (Just(n), prop::collection::vec(-3.0..3.0f64, n * n..=n * n)))
}

proptest! {
    #[test]
    fn cholesky_reconstructs((n, vals) in spd_strategy(8)) {
        let a = spd_from(&vals, n);
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(a.frobenius_distance(&rec) < 1e-8 * scale * n as f64);
    }

    #[test]
    fn solve_satisfies_system((n, vals) in spd_strategy(8), bvals in prop::collection::vec(-5.0..5.0f64, 8)) {
        let a = spd_from(&vals, n);
        let b = &bvals[..n];
        let x = spd_solve(&a, b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6 * a.max_abs().max(1.0));
        }
    }

    #[test]
    fn inverse_is_two_sided((n, vals) in spd_strategy(6)) {
        let a = spd_from(&vals, n);
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let left = inv.matmul(&a).unwrap();
        let right = a.matmul(&inv).unwrap();
        let id = Matrix::identity(n);
        prop_assert!(left.frobenius_distance(&id) < 1e-6 * n as f64);
        prop_assert!(right.frobenius_distance(&id) < 1e-6 * n as f64);
    }

    #[test]
    fn quadratic_form_of_spd_is_nonnegative((n, vals) in spd_strategy(8), v in prop::collection::vec(-5.0..5.0f64, 8)) {
        let a = spd_from(&vals, n);
        let q = quadratic_form(&a, &v[..n]);
        prop_assert!(q >= -1e-9);
    }

    #[test]
    fn log_det_matches_inverse_relation((n, vals) in spd_strategy(6)) {
        // log det(A) = -log det(A^{ -1 })
        let a = spd_from(&vals, n);
        let c = Cholesky::new(&a).unwrap();
        let inv = c.inverse().unwrap();
        let cinv = Cholesky::new_with_jitter(&inv, 1e-12, 6).unwrap();
        prop_assert!((c.log_det() + cinv.log_det()).abs() < 1e-5 * n as f64);
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let m = Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17 + seed as usize) % 13) as f64);
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}
