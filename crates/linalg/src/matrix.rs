//! Row-major dense matrix.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// The storage layout is `data[row * cols + col]`. All Verdict covariance
/// matrices are small and dense, so no sparse representation is needed.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable access to entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix-matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, r) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::matvec",
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            out.push(crate::ops::dot(self.row(i), v));
        }
        Ok(out)
    }

    /// Returns the `k x k` leading principal submatrix (first `k` rows/cols).
    ///
    /// Verdict uses this to extract `Σ_n` from `Σ` (paper §5).
    pub fn leading_principal(&self, k: usize) -> Result<Matrix> {
        if k > self.rows || k > self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::leading_principal",
            });
        }
        Ok(Matrix::from_fn(k, k, |i, j| self.get(i, j)))
    }

    /// Adds `value` to every diagonal entry (ridge/jitter regularization).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += value;
        }
    }

    /// Maximum absolute entry; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm of `self - other`, for test assertions.
    pub fn frobenius_distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_entries() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), m.get(1, 2));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let c = a.matmul(&Matrix::identity(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_dimension_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap();
        let y = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn leading_principal_extracts_top_left() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.leading_principal(2).unwrap();
        assert_eq!(s.as_slice(), &[0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(2.5);
        assert_eq!(m.get(0, 0), 2.5);
        assert_eq!(m.get(1, 1), 2.5);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        let mut m = Matrix::identity(3);
        assert!(m.is_symmetric(1e-12));
        m.set(0, 2, 0.5);
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn from_fn_matches_closure() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.get(2, 1), 12.0);
    }
}
