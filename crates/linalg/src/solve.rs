//! Triangular solves.

use crate::{LinalgError, Matrix, Result};

/// Solves `L x = b` by forward substitution for lower-triangular `L`.
///
/// Entries above the diagonal are ignored, so a full square matrix whose
/// lower triangle holds the factor is accepted.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = l.rows();
    if !l.is_square() {
        return Err(LinalgError::NotSquare {
            rows: l.rows(),
            cols: l.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "solve_lower",
        });
    }
    let mut x = vec![0.0; n];
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for (k, xv) in x.iter().enumerate().take(i) {
            s -= row[k] * xv;
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U x = b` by back substitution for upper-triangular `U`.
///
/// Entries below the diagonal are ignored.
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = u.rows();
    if !u.is_square() {
        return Err(LinalgError::NotSquare {
            rows: u.rows(),
            cols: u.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "solve_upper",
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = b[i];
        for (k, xv) in x.iter().enumerate().skip(i + 1) {
            s -= row[k] * xv;
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_lower_known_system() {
        // L = [[2,0],[1,3]], b = [4, 7] -> x = [2, 5/3]
        let l = Matrix::from_vec(2, 2, vec![2.0, 0.0, 1.0, 3.0]).unwrap();
        let x = solve_lower(&l, &[4.0, 7.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_upper_known_system() {
        // U = [[2,1],[0,3]], b = [5, 6] -> x2 = 2, x1 = (5-2)/2 = 1.5
        let u = Matrix::from_vec(2, 2, vec![2.0, 1.0, 0.0, 3.0]).unwrap();
        let x = solve_upper(&u, &[5.0, 6.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_pivot_is_error() {
        let l = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        assert!(solve_lower(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let l = Matrix::identity(2);
        assert!(solve_lower(&l, &[1.0]).is_err());
        assert!(solve_upper(&l, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn solve_roundtrip_against_matvec() {
        let l = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0]).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = l.matvec(&x_true).unwrap();
        let x = solve_lower(&l, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
    }
}
