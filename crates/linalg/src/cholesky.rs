//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Verdict factors the `n x n` past-snippet covariance matrix `Σ_n` once
//! offline (paper Algorithm 1) and reuses the factor for every query-time
//! solve, giving the O(n²) online complexity of Lemma 2.

use crate::{solve_lower, LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive. Callers that assemble covariance matrices from
    /// noisy estimates should add a small diagonal jitter first (see
    /// [`Cholesky::new_with_jitter`]).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum_{k<j} L[i][k] * L[j][k]
                let mut s = 0.0;
                for k in 0..j {
                    s += l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    let d = a.get(i, i) - s;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, d.sqrt());
                } else {
                    l.set(i, j, (a.get(i, j) - s) / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors `a`, retrying with geometrically increasing diagonal jitter
    /// when the matrix is numerically indefinite.
    ///
    /// The jitter starts at `initial_jitter * max|a|` and is multiplied by 10
    /// for up to `max_attempts` attempts. This mirrors the standard GP
    /// practice; the paper's Eq. (6) usually regularizes `Σ_n` already via
    /// the `β²` diagonal terms, but degenerate snippet sets (e.g. duplicated
    /// queries with zero raw error) still need it.
    pub fn new_with_jitter(a: &Matrix, initial_jitter: f64, max_attempts: u32) -> Result<Self> {
        match Cholesky::new(a) {
            Ok(c) => Ok(c),
            Err(_) => {
                let scale = a.max_abs().max(1.0);
                let mut jitter = initial_jitter * scale;
                let mut last_err = LinalgError::NotPositiveDefinite { pivot: 0 };
                for _ in 0..max_attempts {
                    let mut aj = a.clone();
                    aj.add_diagonal(jitter);
                    match Cholesky::new(&aj) {
                        Ok(c) => return Ok(c),
                        Err(e) => last_err = e,
                    }
                    jitter *= 10.0;
                }
                Err(last_err)
            }
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization (two triangular solves).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.l.rows() {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky::solve",
            });
        }
        let y = solve_lower(&self.l, b)?;
        solve_upper_transposed(&self.l, &y)
    }

    /// Computes `A⁻¹` explicitly.
    ///
    /// Verdict precomputes `Σ_n⁻¹` offline (Algorithm 1) so that online
    /// inference is a matrix-vector product.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.l.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for (i, v) in col.iter().enumerate() {
                inv.set(i, j, *v);
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Log-determinant of `A` (twice the log-sum of the factor diagonal).
    ///
    /// Used by the marginal log-likelihood of Appendix A (Eq. 13).
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        let mut acc = 0.0;
        for i in 0..n {
            acc += self.l.get(i, i).ln();
        }
        2.0 * acc
    }
}

/// Solves `Lᵀ x = y` given lower-triangular `L` without materializing `Lᵀ`.
fn solve_upper_transposed(l: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    let n = l.rows();
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "solve_upper_transposed",
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for (k, xk) in x.iter().enumerate().skip(i + 1) {
            s -= l.get(k, i) * xk;
        }
        x[i] = s / l.get(i, i);
    }
    Ok(x)
}

/// Convenience: solve `A x = b` for SPD `A` in one call.
pub fn spd_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Cholesky::new(a)?.solve(b)
}

/// Convenience: invert an SPD matrix in one call, with jitter fallback.
pub fn spd_inverse(a: &Matrix) -> Result<Matrix> {
    Cholesky::new_with_jitter(a, 1e-10, 8)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B^T B + I for B random-ish fixed values; known SPD.
        Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(a.frobenius_distance(&rec) < 1e-10);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.factor();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semidefinite() {
        // Rank-deficient PSD matrix: ones(2,2).
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(Cholesky::new(&a).is_err());
        let c = Cholesky::new_with_jitter(&a, 1e-10, 10).unwrap();
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn solve_matches_direct_check() {
        let a = spd3();
        let b = [1.0, 2.0, 3.0];
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let bx = a.matvec(&x).unwrap();
        for (got, want) in bx.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.frobenius_distance(&Matrix::identity(3)) < 1e-9);
    }

    #[test]
    fn log_det_matches_known_value() {
        // det of diag(2, 3) = 6.
        let a = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 3.0]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - 6.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn spd_solve_one_call() {
        let a = Matrix::identity(2);
        assert_eq!(spd_solve(&a, &[5.0, -1.0]).unwrap(), vec![5.0, -1.0]);
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_vec(1, 1, vec![4.0]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        assert_eq!(c.factor().get(0, 0), 2.0);
        assert_eq!(c.solve(&[8.0]).unwrap(), vec![2.0]);
    }
}
