//! Free-standing vector operations used throughout the inference engine.

use crate::Matrix;

/// Dot product of two equal-length slices.
///
/// Panics in debug builds if the lengths differ; in release the shorter
/// length wins (both callers in this workspace pass equal lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Element-wise difference `a - b` into a new vector.
#[inline]
pub fn vec_sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Matrix-vector product convenience wrapper that panics on shape mismatch.
///
/// Use [`Matrix::matvec`] when the caller wants a recoverable error.
#[inline]
pub fn mat_vec(m: &Matrix, v: &[f64]) -> Vec<f64> {
    m.matvec(v).expect("mat_vec: dimension mismatch")
}

/// Quadratic form `vᵀ M v` without materializing `M v`.
///
/// This is the hot operation of Verdict's inference: `k̄ᵀ Σ⁻¹ k̄` in
/// Eq. (11) of the paper.
pub fn quadratic_form(m: &Matrix, v: &[f64]) -> f64 {
    debug_assert_eq!(m.rows(), v.len());
    debug_assert_eq!(m.cols(), v.len());
    let mut acc = 0.0;
    for i in 0..m.rows() {
        acc += v[i] * dot(m.row(i), v);
    }
    acc
}

/// Bilinear form `aᵀ M b`.
pub fn bilinear_form(a: &[f64], m: &Matrix, b: &[f64]) -> f64 {
    debug_assert_eq!(m.rows(), a.len());
    debug_assert_eq!(m.cols(), b.len());
    let mut acc = 0.0;
    for (i, ai) in a.iter().enumerate() {
        acc += ai * dot(m.row(i), b);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn vec_sub_elementwise() {
        assert_eq!(vec_sub(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn quadratic_form_identity_is_norm_squared() {
        let m = Matrix::identity(3);
        let v = [1.0, 2.0, 3.0];
        assert_eq!(quadratic_form(&m, &v), 14.0);
    }

    #[test]
    fn quadratic_form_matches_explicit_product() {
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let v = [1.0, -1.0];
        // v^T M v = [1,-1] [[2,1],[1,3]] [1,-1]^T = 2 - 1 - 1 + 3 = 3
        assert!((quadratic_form(&m, &v) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bilinear_form_mixed_vectors() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]).unwrap();
        assert_eq!(bilinear_form(&[1.0, 1.0], &m, &[3.0, 4.0]), 3.0 + 8.0);
    }

    #[test]
    fn mat_vec_matches_matvec() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(mat_vec(&m, &[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
