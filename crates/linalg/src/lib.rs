//! Small dense linear-algebra kernel used by the Verdict inference engine.
//!
//! Verdict's inference (paper §3.4, §5) needs exactly the operations
//! implemented here: symmetric positive-definite (SPD) factorizations,
//! triangular solves, matrix inversion, log-determinants, and a handful of
//! matrix/vector products. The covariance matrices involved are small
//! (`n ≤ C_g = 2000` past snippets), so a straightforward cache-friendly
//! row-major dense implementation is both sufficient and dependency-free.
//!
//! The crate intentionally exposes a minimal, allocation-conscious API:
//! factorizations borrow their input where possible and solves reuse caller
//! buffers.

pub mod cholesky;
pub mod matrix;
pub mod ops;
pub mod solve;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use ops::{dot, mat_vec, quadratic_form, vec_sub};
pub use solve::{solve_lower, solve_upper};

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// A matrix expected to be square was not.
    NotSquare {
        /// Number of rows observed.
        rows: usize,
        /// Number of columns observed.
        cols: usize,
    },
    /// Dimensions of two operands disagree.
    DimensionMismatch {
        /// Human-readable description of the failed operation.
        context: &'static str,
    },
    /// The matrix is not positive definite (Cholesky hit a non-positive pivot).
    NotPositiveDefinite {
        /// The pivot index at which factorization failed.
        pivot: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch in {context}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
