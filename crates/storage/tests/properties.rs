//! Property-based tests for the storage engine.

use proptest::prelude::*;
use verdict_storage::{
    eval_group_by, AggregateFn, ColumnDef, Expr, Predicate, Schema, Table, Value,
};

/// Builds a table from generated (week, group, value) rows.
fn table_from(rows: &[(f64, u8, f64)]) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::numeric_dimension("week"),
        ColumnDef::categorical_dimension("grp"),
        ColumnDef::measure("v"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    for &(w, g, v) in rows {
        t.push_row(vec![w.into(), (g as u32 % 5).into(), v.into()])
            .unwrap();
    }
    t
}

fn rows_strategy() -> impl Strategy<Value = Vec<(f64, u8, f64)>> {
    prop::collection::vec((0.0..100.0f64, any::<u8>(), -100.0..100.0f64), 0..120)
}

proptest! {
    /// The normal-form fast path of `selected_rows` must agree with
    /// row-by-row `eval_row`.
    #[test]
    fn normal_form_matches_row_eval(
        rows in rows_strategy(),
        lo in 0.0..100.0f64,
        w in 0.0..50.0f64,
        codes in prop::collection::vec(0u32..5, 0..4),
    ) {
        let t = table_from(&rows);
        let p = Predicate::between("week", lo, lo + w)
            .and(Predicate::cat_in("grp", codes));
        let fast = p.selected_rows(&t).unwrap();
        let slow: Vec<usize> = (0..t.num_rows())
            .filter(|&r| p.eval_row(&t, r).unwrap())
            .collect();
        prop_assert_eq!(fast, slow);
    }

    /// SUM = AVG × COUNT exactly on exact evaluation (§2.3 identity).
    #[test]
    fn sum_equals_avg_times_count(rows in rows_strategy(), lo in 0.0..100.0f64, w in 0.0..80.0f64) {
        let t = table_from(&rows);
        let p = Predicate::between("week", lo, lo + w);
        let sum = AggregateFn::Sum(Expr::col("v")).eval_exact(&t, &p).unwrap();
        let avg = AggregateFn::Avg(Expr::col("v")).eval_exact(&t, &p).unwrap();
        let count = AggregateFn::Count.eval_exact(&t, &p).unwrap();
        prop_assert!((sum - avg * count).abs() < 1e-6 * (1.0 + sum.abs()));
    }

    /// FREQ × cardinality = COUNT.
    #[test]
    fn freq_scales_to_count(rows in rows_strategy(), lo in 0.0..100.0f64, w in 0.0..80.0f64) {
        let t = table_from(&rows);
        if t.num_rows() == 0 {
            return Ok(());
        }
        let p = Predicate::between("week", lo, lo + w);
        let freq = AggregateFn::Freq.eval_exact(&t, &p).unwrap();
        let count = AggregateFn::Count.eval_exact(&t, &p).unwrap();
        prop_assert!((freq * t.num_rows() as f64 - count).abs() < 1e-9);
    }

    /// Group-by totals partition the filtered rows: per-group COUNTs sum
    /// to the ungrouped COUNT.
    #[test]
    fn group_by_partitions(rows in rows_strategy(), lo in 0.0..100.0f64, w in 0.0..80.0f64) {
        let t = table_from(&rows);
        let p = Predicate::between("week", lo, lo + w);
        let grouped = eval_group_by(&t, &p, &["grp".to_owned()], &AggregateFn::Count).unwrap();
        let total: f64 = grouped.iter().map(|(_, c)| c).sum();
        let count = AggregateFn::Count.eval_exact(&t, &p).unwrap();
        prop_assert_eq!(total, count);
        // Group keys are unique.
        let mut keys: Vec<&Vec<Value>> = grouped.iter().map(|(k, _)| k).collect();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    /// `gather` preserves row content and order.
    #[test]
    fn gather_preserves_rows(rows in rows_strategy(), idx in prop::collection::vec(0usize..120, 0..40)) {
        let t = table_from(&rows);
        if t.num_rows() == 0 {
            return Ok(());
        }
        let picks: Vec<usize> = idx.into_iter().map(|i| i % t.num_rows()).collect();
        let g = t.gather(&picks).unwrap();
        prop_assert_eq!(g.num_rows(), picks.len());
        for (out_row, &src_row) in picks.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), t.row(src_row));
        }
    }

    /// `append` concatenates: aggregates over the result equal the sum of
    /// the parts.
    #[test]
    fn append_is_concatenation(a in rows_strategy(), b in rows_strategy()) {
        let mut ta = table_from(&a);
        let tb = table_from(&b);
        let sum_a = AggregateFn::Sum(Expr::col("v")).eval_exact(&ta, &Predicate::True).unwrap();
        let sum_b = AggregateFn::Sum(Expr::col("v")).eval_exact(&tb, &Predicate::True).unwrap();
        ta.append(&tb).unwrap();
        let total = AggregateFn::Sum(Expr::col("v")).eval_exact(&ta, &Predicate::True).unwrap();
        prop_assert!((total - sum_a - sum_b).abs() < 1e-6 * (1.0 + total.abs()));
        prop_assert_eq!(ta.num_rows(), a.len() + b.len());
    }

    /// Compiled expressions agree with interpreted evaluation everywhere.
    #[test]
    fn compiled_expr_matches_interpreter(rows in rows_strategy(), k in -10.0..10.0f64) {
        let t = table_from(&rows);
        let e = Expr::Mul(
            Box::new(Expr::Add(Box::new(Expr::col("v")), Box::new(Expr::Const(k)))),
            Box::new(Expr::col("week")),
        );
        let c = e.compile(&t).unwrap();
        for r in 0..t.num_rows() {
            prop_assert_eq!(c.eval(r), e.eval_row(&t, r).unwrap());
        }
    }
}
