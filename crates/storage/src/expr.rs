//! Scalar expressions over numeric columns.
//!
//! Verdict supports aggregates over *derived* attributes (paper §2.2:
//! "The arguments to these aggregates can also be a derived attribute",
//! e.g. `SUM(revenue * discount)`). An [`Expr`] evaluates to one `f64` per
//! row and is compiled against a table into a flat evaluation closure.

use crate::{Result, StorageError, Table};

/// A scalar arithmetic expression over numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric column reference.
    Col(String),
    /// A literal constant.
    Const(f64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division (IEEE semantics; divide-by-zero yields ±inf/NaN).
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: &str) -> Expr {
        Expr::Col(name.to_owned())
    }

    /// Parses the textual form produced by this type's `Display` impl
    /// (fully parenthesized: `(a + (b * 2))`, `(-x)`, bare columns and
    /// constants) back into an [`Expr`].
    ///
    /// `AggKey::Avg` stores only the *string* form of the aggregated
    /// expression; the ingest path uses this inverse to re-evaluate a
    /// persisted aggregate over new data without carrying the structured
    /// expression alongside every key.
    pub fn parse(s: &str) -> Result<Expr> {
        let mut p = ExprParser { src: s, pos: 0 };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(StorageError::TypeError(format!(
                "trailing input at byte {} of expression {s:?}",
                p.pos
            )));
        }
        Ok(e)
    }

    /// All column names referenced by the expression, in first-use order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(c) => {
                if !out.contains(&c.as_str()) {
                    out.push(c);
                }
            }
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Neg(a) => a.collect_columns(out),
        }
    }

    /// Evaluates the expression at one row of `table`.
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<f64> {
        Ok(match self {
            Expr::Col(name) => table.column(name)?.numeric()?[row],
            Expr::Const(c) => *c,
            Expr::Add(a, b) => a.eval_row(table, row)? + b.eval_row(table, row)?,
            Expr::Sub(a, b) => a.eval_row(table, row)? - b.eval_row(table, row)?,
            Expr::Mul(a, b) => a.eval_row(table, row)? * b.eval_row(table, row)?,
            Expr::Div(a, b) => a.eval_row(table, row)? / b.eval_row(table, row)?,
            Expr::Neg(a) => -a.eval_row(table, row)?,
        })
    }

    /// Validates the expression against `table` (all referenced columns
    /// exist and are numeric) and returns an evaluator closure over row
    /// indices. This avoids per-row name lookups on hot aggregation paths.
    pub fn compile<'t>(&self, table: &'t Table) -> Result<CompiledExpr<'t>> {
        let node = self.compile_node(table)?;
        Ok(CompiledExpr { node })
    }

    fn compile_node<'t>(&self, table: &'t Table) -> Result<Node<'t>> {
        Ok(match self {
            Expr::Col(name) => {
                let data = table.column(name)?.numeric().map_err(|_| {
                    StorageError::TypeError(format!(
                        "expression references non-numeric column {name}"
                    ))
                })?;
                Node::Col(data)
            }
            Expr::Const(c) => Node::Const(*c),
            Expr::Add(a, b) => Node::Add(
                Box::new(a.compile_node(table)?),
                Box::new(b.compile_node(table)?),
            ),
            Expr::Sub(a, b) => Node::Sub(
                Box::new(a.compile_node(table)?),
                Box::new(b.compile_node(table)?),
            ),
            Expr::Mul(a, b) => Node::Mul(
                Box::new(a.compile_node(table)?),
                Box::new(b.compile_node(table)?),
            ),
            Expr::Div(a, b) => Node::Div(
                Box::new(a.compile_node(table)?),
                Box::new(b.compile_node(table)?),
            ),
            Expr::Neg(a) => Node::Neg(Box::new(a.compile_node(table)?)),
        })
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// Recursive-descent parser for the `Display` grammar of [`Expr`].
struct ExprParser<'s> {
    src: &'s str,
    pos: usize,
}

impl ExprParser<'_> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(StorageError::TypeError(format!(
                "expected {c:?} at byte {} of expression {:?}",
                self.pos, self.src
            )))
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.skip_ws();
        if self.peek() == Some('(') {
            self.expect('(')?;
            self.skip_ws();
            // `(-x)` is unary negation; `(a - b)` parses a left operand
            // first (negative *constants* print without parentheses, so a
            // '-' directly after '(' can only be Neg).
            if self.peek() == Some('-') {
                self.expect('-')?;
                let inner = self.expr()?;
                self.skip_ws();
                self.expect(')')?;
                return Ok(Expr::Neg(Box::new(inner)));
            }
            let left = self.expr()?;
            self.skip_ws();
            let op = self.peek().ok_or_else(|| {
                StorageError::TypeError(format!("unterminated expression {:?}", self.src))
            })?;
            self.pos += op.len_utf8();
            let right = self.expr()?;
            self.skip_ws();
            self.expect(')')?;
            let (l, r) = (Box::new(left), Box::new(right));
            return match op {
                '+' => Ok(Expr::Add(l, r)),
                '-' => Ok(Expr::Sub(l, r)),
                '*' => Ok(Expr::Mul(l, r)),
                '/' => Ok(Expr::Div(l, r)),
                _ => Err(StorageError::TypeError(format!(
                    "unknown operator {op:?} in expression {:?}",
                    self.src
                ))),
            };
        }
        // Atom: a constant or a column name, delimited by whitespace or
        // parentheses (Display always space-separates operators).
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_whitespace() || c == '(' || c == ')' {
                break;
            }
            self.pos += c.len_utf8();
        }
        let token = &self.src[start..self.pos];
        if token.is_empty() {
            return Err(StorageError::TypeError(format!(
                "empty token at byte {start} of expression {:?}",
                self.src
            )));
        }
        match token.parse::<f64>() {
            Ok(v) => Ok(Expr::Const(v)),
            Err(_) => Ok(Expr::Col(token.to_owned())),
        }
    }
}

/// An expression bound to a table's column storage.
pub struct CompiledExpr<'t> {
    node: Node<'t>,
}

enum Node<'t> {
    Col(&'t [f64]),
    Const(f64),
    Add(Box<Node<'t>>, Box<Node<'t>>),
    Sub(Box<Node<'t>>, Box<Node<'t>>),
    Mul(Box<Node<'t>>, Box<Node<'t>>),
    Div(Box<Node<'t>>, Box<Node<'t>>),
    Neg(Box<Node<'t>>),
}

impl<'t> CompiledExpr<'t> {
    /// Evaluates at row `row`.
    #[inline]
    pub fn eval(&self, row: usize) -> f64 {
        eval_node(&self.node, row)
    }

    /// The raw column slice when the expression is a bare column
    /// reference, letting chunked kernels stream values without the
    /// per-row expression-tree walk. `eval(row) == as_col().unwrap()[row]`
    /// bit-for-bit whenever this returns `Some`.
    pub fn as_col(&self) -> Option<&'t [f64]> {
        match self.node {
            Node::Col(data) => Some(data),
            _ => None,
        }
    }
}

fn eval_node(node: &Node<'_>, row: usize) -> f64 {
    match node {
        Node::Col(data) => data[row],
        Node::Const(c) => *c,
        Node::Add(a, b) => eval_node(a, row) + eval_node(b, row),
        Node::Sub(a, b) => eval_node(a, row) - eval_node(b, row),
        Node::Mul(a, b) => eval_node(a, row) * eval_node(b, row),
        Node::Div(a, b) => eval_node(a, row) / eval_node(b, row),
        Node::Neg(a) => -eval_node(a, row),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::measure("price"),
            ColumnDef::measure("discount"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec![100.0.into(), 0.1.into()]).unwrap();
        t.push_row(vec![50.0.into(), 0.5.into()]).unwrap();
        t
    }

    #[test]
    fn column_expr_reads_values() {
        let t = table();
        assert_eq!(Expr::col("price").eval_row(&t, 1).unwrap(), 50.0);
    }

    #[test]
    fn derived_attribute() {
        // price * (1 - discount), as in TPC-H Q1.
        let t = table();
        let e = Expr::Mul(
            Box::new(Expr::col("price")),
            Box::new(Expr::Sub(
                Box::new(Expr::Const(1.0)),
                Box::new(Expr::col("discount")),
            )),
        );
        assert_eq!(e.eval_row(&t, 0).unwrap(), 90.0);
        assert_eq!(e.eval_row(&t, 1).unwrap(), 25.0);
    }

    #[test]
    fn compiled_matches_interpreted() {
        let t = table();
        let e = Expr::Div(
            Box::new(Expr::Add(
                Box::new(Expr::col("price")),
                Box::new(Expr::Const(10.0)),
            )),
            Box::new(Expr::Neg(Box::new(Expr::col("discount")))),
        );
        let c = e.compile(&t).unwrap();
        for row in 0..t.num_rows() {
            assert_eq!(c.eval(row), e.eval_row(&t, row).unwrap());
        }
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(Expr::col("nope").eval_row(&t, 0).is_err());
        assert!(Expr::col("nope").compile(&t).is_err());
    }

    #[test]
    fn columns_deduplicated() {
        let e = Expr::Add(
            Box::new(Expr::col("a")),
            Box::new(Expr::Mul(
                Box::new(Expr::col("b")),
                Box::new(Expr::col("a")),
            )),
        );
        assert_eq!(e.columns(), vec!["a", "b"]);
    }

    #[test]
    fn display_is_parenthesized() {
        let e = Expr::Sub(Box::new(Expr::col("x")), Box::new(Expr::Const(2.0)));
        assert_eq!(e.to_string(), "(x - 2)");
    }

    #[test]
    fn parse_inverts_display() {
        let exprs = vec![
            Expr::col("price"),
            Expr::Const(3.25),
            Expr::Const(-2.0),
            Expr::Add(Box::new(Expr::col("a")), Box::new(Expr::col("b"))),
            Expr::Neg(Box::new(Expr::col("x"))),
            Expr::Div(
                Box::new(Expr::Sub(
                    Box::new(Expr::col("price")),
                    Box::new(Expr::Const(1.5)),
                )),
                Box::new(Expr::Mul(
                    Box::new(Expr::col("discount")),
                    Box::new(Expr::Neg(Box::new(Expr::Const(4.0)))),
                )),
            ),
        ];
        for e in exprs {
            let s = e.to_string();
            let back = Expr::parse(&s).unwrap_or_else(|err| panic!("parse {s:?}: {err}"));
            assert_eq!(back, e, "round trip of {s:?}");
            assert_eq!(back.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "(a +", "(a ? b)", "(a + b) trailing", "( )"] {
            assert!(Expr::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
