//! Horizontal table partitions with partition-level zone summaries.
//!
//! A [`PartitionSpec`] assigns every row to one partition by the value of
//! a chosen column — contiguous value ranges over a numeric dimension
//! ([`PartitionScheme::Range`]) or a deterministic hash over either
//! column type ([`PartitionScheme::Hash`]). A [`PartitionMap`] routes
//! rows and maintains, per partition, a row count and one
//! [`ColumnSummary`] per schema column: min/max (+ NaN flag) for numeric
//! columns and the sorted set of observed dictionary codes for
//! categorical ones.
//!
//! The summaries are the chunk-level zone-map contract lifted one level:
//! [`crate::CompiledPredicate::classify_partition`] mirrors
//! [`crate::CompiledPredicate::classify_chunk`] against a partition's
//! summaries, so a scan can skip a provably-disjoint partition without
//! touching any of its chunks (and classify a provably-covered one as
//! dense). Classification is conservative and sound: `NoRows`/`AllRows`
//! only when the summaries prove it.
//!
//! Routing is a pure function of the cell value — independent of row
//! order, table identity, and batching — so the same spec routes base
//! rows, sampled rows, and ingested rows consistently.
//! [`PartitionMap::extend`] absorbs appended rows by widening only the
//! summaries of partitions that actually received rows; everything else
//! is untouched.

use std::ops::Range;

use crate::{ColumnType, Result, StorageError, Table};

/// How rows map to partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionScheme {
    /// Range partitioning over a numeric column: sorted cut points split
    /// the number line into `bounds.len() + 1` partitions; partition `i`
    /// holds `bounds[i-1] <= v < bounds[i]` (NaNs route to the last
    /// partition).
    Range {
        /// Ascending, finite, deduplicated cut points.
        bounds: Vec<f64>,
    },
    /// Hash partitioning over a numeric or categorical column.
    Hash {
        /// Number of partitions (≥ 1).
        partitions: usize,
    },
}

/// A partitioning rule: the column to partition by and the scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    column: String,
    scheme: PartitionScheme,
}

impl PartitionSpec {
    /// Range partitioning of `column` at the given cut points (sorted and
    /// deduplicated here; validity is checked when a map is built).
    pub fn range(column: &str, mut bounds: Vec<f64>) -> Self {
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        PartitionSpec {
            column: column.to_owned(),
            scheme: PartitionScheme::Range { bounds },
        }
    }

    /// Hash partitioning of `column` into `partitions` buckets.
    pub fn hash(column: &str, partitions: usize) -> Self {
        PartitionSpec {
            column: column.to_owned(),
            scheme: PartitionScheme::Hash { partitions },
        }
    }

    /// The partitioning column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The partitioning scheme.
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// Number of partitions the scheme defines.
    pub fn num_partitions(&self) -> usize {
        match &self.scheme {
            PartitionScheme::Range { bounds } => bounds.len() + 1,
            PartitionScheme::Hash { partitions } => *partitions,
        }
    }
}

/// Partition-level zone summary of one column — the chunk zone-map
/// contract ([`crate::NumZone`] / [`crate::CatZone`]) lifted to a whole
/// partition, with an explicit code *set* instead of a code range.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSummary {
    /// Numeric column: observed bounds. An empty partition holds
    /// `min = +inf, max = -inf` (the min/max identity).
    Num {
        /// Smallest non-NaN value routed here.
        min: f64,
        /// Largest non-NaN value routed here.
        max: f64,
        /// Whether any NaN was routed here.
        has_nan: bool,
    },
    /// Categorical column: every dictionary code observed, sorted.
    Cat {
        /// Sorted, deduplicated codes.
        codes: Vec<u32>,
    },
}

impl ColumnSummary {
    fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Numeric => ColumnSummary::Num {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                has_nan: false,
            },
            ColumnType::Categorical => ColumnSummary::Cat { codes: Vec::new() },
        }
    }

    fn observe_num(&mut self, x: f64) {
        let ColumnSummary::Num { min, max, has_nan } = self else {
            unreachable!("numeric observation on a categorical summary");
        };
        if x.is_nan() {
            *has_nan = true;
        } else {
            *min = min.min(x);
            *max = max.max(x);
        }
    }

    fn observe_cat(&mut self, code: u32) {
        let ColumnSummary::Cat { codes } = self else {
            unreachable!("categorical observation on a numeric summary");
        };
        if let Err(at) = codes.binary_search(&code) {
            codes.insert(at, code);
        }
    }
}

/// One partition: its row count and per-column summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionInfo {
    rows: u64,
    summaries: Vec<ColumnSummary>,
}

impl PartitionInfo {
    /// Rows routed to this partition so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Summary of schema column `col`, if the column exists.
    pub fn summary(&self, col: usize) -> Option<&ColumnSummary> {
        self.summaries.get(col)
    }

    /// All per-column summaries, in schema order (for persistence).
    pub fn summaries(&self) -> &[ColumnSummary] {
        &self.summaries
    }

    /// Reassembles a partition from persisted state.
    pub fn from_parts(rows: u64, summaries: Vec<ColumnSummary>) -> PartitionInfo {
        PartitionInfo { rows, summaries }
    }
}

/// The routing and summary state of one partitioned table.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMap {
    spec: PartitionSpec,
    /// Schema index of the partitioning column.
    col_index: usize,
    /// Whether the partitioning column is categorical.
    cat_column: bool,
    /// Rows of the backing table already routed.
    rows_covered: usize,
    parts: Vec<PartitionInfo>,
}

impl PartitionMap {
    /// Builds a map over every current row of `table`.
    pub fn build(table: &Table, spec: PartitionSpec) -> Result<PartitionMap> {
        let col_index = table.schema().index_of(spec.column())?;
        let ty = table.schema().columns()[col_index].ty;
        match &spec.scheme {
            PartitionScheme::Range { bounds } => {
                if ty != ColumnType::Numeric {
                    return Err(StorageError::TypeError(format!(
                        "range partitioning requires a numeric column, {} is categorical",
                        spec.column()
                    )));
                }
                if bounds.iter().any(|b| !b.is_finite()) {
                    return Err(StorageError::TypeError(
                        "range partition bounds must be finite".into(),
                    ));
                }
            }
            PartitionScheme::Hash { partitions } => {
                if *partitions == 0 {
                    return Err(StorageError::TypeError(
                        "hash partitioning needs at least one partition".into(),
                    ));
                }
            }
        }
        let parts = (0..spec.num_partitions())
            .map(|_| PartitionInfo {
                rows: 0,
                summaries: table
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| ColumnSummary::new(c.ty))
                    .collect(),
            })
            .collect();
        let mut map = PartitionMap {
            spec,
            col_index,
            cat_column: ty == ColumnType::Categorical,
            rows_covered: 0,
            parts,
        };
        map.extend(table)?;
        Ok(map)
    }

    /// Routes the rows of `table` in `range` without changing the map.
    /// Pure in the cell values: any table with a compatible schema (the
    /// base, a gathered sample, an ingest batch) routes identically.
    pub fn route(&self, table: &Table, range: Range<usize>) -> Result<Vec<u32>> {
        let mut out = Vec::with_capacity(range.len());
        if self.cat_column {
            let codes = table.column_at(self.col_index).categorical()?;
            for &c in &codes[range] {
                out.push(self.route_cat(c));
            }
        } else {
            let data = table.column_at(self.col_index).numeric()?;
            for &x in &data[range] {
                out.push(self.route_num(x));
            }
        }
        Ok(out)
    }

    /// Absorbs rows appended to `table` since the last build/extend:
    /// routes them, bumps the receiving partitions' row counts, and
    /// widens *only those* partitions' summaries. Returns the sorted ids
    /// of the partitions that received rows.
    pub fn extend(&mut self, table: &Table) -> Result<Vec<u32>> {
        let from = self.rows_covered;
        let to = table.num_rows();
        if to < from {
            return Err(StorageError::SchemaMismatch(format!(
                "partition map covers {from} rows but the table has {to}"
            )));
        }
        let routed = self.route(table, from..to)?;
        let schema_cols = table.schema().len();
        let mut touched: Vec<u32> = Vec::new();
        for (offset, &p) in routed.iter().enumerate() {
            let row = from + offset;
            let part = &mut self.parts[p as usize];
            part.rows += 1;
            for col in 0..schema_cols {
                match table.column_at(col) {
                    crate::Column::Numeric(_) => {
                        let x = table.column_at(col).numeric()?[row];
                        part.summaries[col].observe_num(x);
                    }
                    crate::Column::Categorical { .. } => {
                        let c = table.column_at(col).categorical()?[row];
                        part.summaries[col].observe_cat(c);
                    }
                }
            }
            if let Err(at) = touched.binary_search(&p) {
                touched.insert(at, p);
            }
        }
        self.rows_covered = to;
        Ok(touched)
    }

    /// Absorbs a standalone ingest batch: routes every row of `batch` (a
    /// table holding *only* the appended rows, dictionary-consistent with
    /// the partitioned relation), bumps the receiving partitions' row
    /// counts, and widens their summaries. The out-of-core ingest path
    /// uses this — the full base table is not resident, so
    /// [`PartitionMap::extend`] has nothing to diff against. Returns the
    /// sorted ids of the partitions that received rows.
    pub fn extend_batch(&mut self, batch: &Table) -> Result<Vec<u32>> {
        let n = batch.num_rows();
        let routed = self.route(batch, 0..n)?;
        let schema_cols = batch.schema().len();
        let mut touched: Vec<u32> = Vec::new();
        for (row, &p) in routed.iter().enumerate() {
            let part = &mut self.parts[p as usize];
            part.rows += 1;
            for col in 0..schema_cols {
                match batch.column_at(col) {
                    crate::Column::Numeric(_) => {
                        let x = batch.column_at(col).numeric()?[row];
                        part.summaries[col].observe_num(x);
                    }
                    crate::Column::Categorical { .. } => {
                        let c = batch.column_at(col).categorical()?[row];
                        part.summaries[col].observe_cat(c);
                    }
                }
            }
            if let Err(at) = touched.binary_search(&p) {
                touched.insert(at, p);
            }
        }
        self.rows_covered += n;
        Ok(touched)
    }

    /// The partition a numeric value routes to.
    fn route_num(&self, x: f64) -> u32 {
        match &self.spec.scheme {
            PartitionScheme::Range { bounds } => {
                if x.is_nan() {
                    bounds.len() as u32
                } else {
                    bounds.partition_point(|&b| b <= x) as u32
                }
            }
            PartitionScheme::Hash { partitions } => {
                // Canonicalize so -0.0 == 0.0 and every NaN routes alike.
                let bits = if x.is_nan() {
                    f64::NAN.to_bits()
                } else if x == 0.0 {
                    0u64
                } else {
                    x.to_bits()
                };
                hash_bucket(bits, *partitions)
            }
        }
    }

    /// The partition a categorical code routes to.
    fn route_cat(&self, code: u32) -> u32 {
        match &self.spec.scheme {
            // `build` rejects range-on-categorical.
            PartitionScheme::Range { .. } => unreachable!("range partitioning is numeric-only"),
            PartitionScheme::Hash { partitions } => hash_bucket(code as u64, *partitions),
        }
    }

    /// The spec the map was built from.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Schema index of the partitioning column.
    pub fn column_index(&self) -> usize {
        self.col_index
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Rows routed so far.
    pub fn rows_covered(&self) -> usize {
        self.rows_covered
    }

    /// One partition's state.
    pub fn part(&self, p: usize) -> &PartitionInfo {
        &self.parts[p]
    }

    /// All partitions in id order.
    pub fn parts(&self) -> &[PartitionInfo] {
        &self.parts
    }

    /// Reassembles a map from persisted state: `spec` + per-partition
    /// counts and summaries, validated against `schema` (the routing
    /// column must exist and match the scheme's type requirements, and
    /// every partition must carry one type-correct summary per column).
    pub fn from_parts(
        schema: &crate::Schema,
        spec: PartitionSpec,
        rows_covered: usize,
        parts: Vec<PartitionInfo>,
    ) -> Result<PartitionMap> {
        let col_index = schema.index_of(spec.column())?;
        let ty = schema.columns()[col_index].ty;
        if matches!(spec.scheme(), PartitionScheme::Range { .. }) && ty != ColumnType::Numeric {
            return Err(StorageError::TypeError(format!(
                "range partitioning requires a numeric column, {} is categorical",
                spec.column()
            )));
        }
        if parts.len() != spec.num_partitions() {
            return Err(StorageError::SchemaMismatch(format!(
                "partition map holds {} partitions but the spec defines {}",
                parts.len(),
                spec.num_partitions()
            )));
        }
        for (p, part) in parts.iter().enumerate() {
            if part.summaries.len() != schema.len() {
                return Err(StorageError::SchemaMismatch(format!(
                    "partition {p} carries {} column summaries for a {}-column schema",
                    part.summaries.len(),
                    schema.len()
                )));
            }
            for (def, summary) in schema.columns().iter().zip(&part.summaries) {
                let ok = matches!(
                    (def.ty, summary),
                    (ColumnType::Numeric, ColumnSummary::Num { .. })
                        | (ColumnType::Categorical, ColumnSummary::Cat { .. })
                );
                if !ok {
                    return Err(StorageError::TypeError(format!(
                        "partition {p} summary type mismatch on column {}",
                        def.name
                    )));
                }
            }
        }
        Ok(PartitionMap {
            spec,
            col_index,
            cat_column: ty == ColumnType::Categorical,
            rows_covered,
            parts,
        })
    }
}

/// FNV-1a over the value's canonical 8 bytes, reduced to a bucket.
/// Deterministic across runs and platforms — partition assignment is
/// part of reproducible state.
fn hash_bucket(word: u64, buckets: usize) -> u32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % buckets as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChunkMatch, ColumnDef, Predicate, Schema, Value};

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("x"),
            ColumnDef::categorical_dimension("g"),
            ColumnDef::measure("v"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            let g = ["a", "b", "c"][i % 3];
            t.push_row(vec![(i as f64).into(), g.into(), ((i % 7) as f64).into()])
                .unwrap();
        }
        t
    }

    #[test]
    fn range_routing_respects_bounds() {
        let t = table(100);
        let spec = PartitionSpec::range("x", vec![25.0, 50.0, 75.0]);
        assert_eq!(spec.num_partitions(), 4);
        let m = PartitionMap::build(&t, spec).unwrap();
        let routed = m.route(&t, 0..100).unwrap();
        assert_eq!(routed[0], 0);
        assert_eq!(routed[24], 0);
        assert_eq!(routed[25], 1, "cut point belongs to the upper partition");
        assert_eq!(routed[74], 2);
        assert_eq!(routed[75], 3);
        assert_eq!(m.part(0).rows(), 25);
        assert_eq!(m.part(3).rows(), 25);
        let total: u64 = m.parts().iter().map(PartitionInfo::rows).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn summaries_track_all_columns() {
        let t = table(100);
        let m = PartitionMap::build(&t, PartitionSpec::range("x", vec![50.0])).unwrap();
        match m.part(0).summary(0).unwrap() {
            ColumnSummary::Num { min, max, has_nan } => {
                assert_eq!((*min, *max), (0.0, 49.0));
                assert!(!has_nan);
            }
            _ => panic!("x is numeric"),
        }
        match m.part(1).summary(0).unwrap() {
            ColumnSummary::Num { min, max, .. } => assert_eq!((*min, *max), (50.0, 99.0)),
            _ => panic!("x is numeric"),
        }
        match m.part(0).summary(1).unwrap() {
            ColumnSummary::Cat { codes } => assert_eq!(codes.len(), 3, "all three labels seen"),
            _ => panic!("g is categorical"),
        }
    }

    #[test]
    fn hash_routing_is_deterministic_and_total() {
        let t = table(200);
        let m = PartitionMap::build(&t, PartitionSpec::hash("g", 3)).unwrap();
        let a = m.route(&t, 0..200).unwrap();
        let b = m.route(&t, 0..200).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p < 3));
        // Same label always routes to the same partition.
        let codes = t.column("g").unwrap().categorical().unwrap();
        for (i, &c) in codes.iter().enumerate() {
            for (j, &d) in codes.iter().enumerate() {
                if c == d {
                    assert_eq!(a[i], a[j]);
                }
            }
        }
        let total: u64 = m.parts().iter().map(PartitionInfo::rows).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn classify_partition_mirrors_chunk_semantics() {
        let t = table(300);
        let m = PartitionMap::build(&t, PartitionSpec::range("x", vec![100.0, 200.0])).unwrap();
        // Disjoint range: partitions 1 and 2 cannot match.
        let p = Predicate::between("x", 10.0, 20.0).compile(&t).unwrap();
        assert_eq!(p.classify_partition(m.part(0)), ChunkMatch::SomeRows);
        assert_eq!(p.classify_partition(m.part(1)), ChunkMatch::NoRows);
        assert_eq!(p.classify_partition(m.part(2)), ChunkMatch::NoRows);
        // Covering range: partition 0 is provably dense.
        let p = Predicate::between("x", -5.0, 99.5).compile(&t).unwrap();
        assert_eq!(p.classify_partition(m.part(0)), ChunkMatch::AllRows);
        assert_eq!(p.classify_partition(m.part(1)), ChunkMatch::NoRows);
        // Categorical membership: every partition holds all three labels.
        let a = t.column("g").unwrap().code_of("a").unwrap();
        let p = Predicate::cat_eq("g", a).compile(&t).unwrap();
        assert_eq!(p.classify_partition(m.part(0)), ChunkMatch::SomeRows);
        // Empty IN-set matches nothing.
        let p = Predicate::cat_in("g", vec![]).compile(&t).unwrap();
        assert_eq!(p.classify_partition(m.part(0)), ChunkMatch::NoRows);
        // A set covering every present code is provably dense.
        let all: Vec<u32> = (0..3).collect();
        let p = Predicate::cat_in("g", all).compile(&t).unwrap();
        assert_eq!(p.classify_partition(m.part(1)), ChunkMatch::AllRows);
    }

    #[test]
    fn classify_is_sound_against_brute_force() {
        let t = table(500);
        for spec in [
            PartitionSpec::range("x", vec![100.0, 250.0, 400.0]),
            PartitionSpec::hash("g", 4),
            PartitionSpec::hash("x", 5),
        ] {
            let m = PartitionMap::build(&t, spec).unwrap();
            let routed = m.route(&t, 0..500).unwrap();
            let a = t.column("g").unwrap().code_of("a").unwrap();
            let preds = [
                Predicate::True,
                Predicate::between("x", 120.0, 180.0),
                Predicate::cat_eq("g", a),
                Predicate::between("x", -10.0, 600.0),
            ];
            for pred in &preds {
                let c = pred.compile(&t).unwrap();
                for p in 0..m.num_partitions() {
                    let rows: Vec<usize> = (0..500).filter(|&r| routed[r] == p as u32).collect();
                    let matched = rows.iter().filter(|&&r| c.matches(r)).count();
                    match c.classify_partition(m.part(p)) {
                        ChunkMatch::NoRows => assert_eq!(matched, 0, "{pred:?} part {p}"),
                        ChunkMatch::AllRows => {
                            assert_eq!(matched, rows.len(), "{pred:?} part {p}")
                        }
                        ChunkMatch::SomeRows => {}
                    }
                }
            }
        }
    }

    #[test]
    fn empty_partition_classifies_no_rows() {
        let t = table(50);
        // All x < 1000: the upper partition is empty.
        let m = PartitionMap::build(&t, PartitionSpec::range("x", vec![1000.0])).unwrap();
        assert_eq!(m.part(1).rows(), 0);
        let p = Predicate::True.compile(&t).unwrap();
        assert_eq!(p.classify_partition(m.part(1)), ChunkMatch::NoRows);
    }

    #[test]
    fn extend_touches_only_receiving_partitions() {
        let mut t = table(90);
        let mut m = PartitionMap::build(&t, PartitionSpec::range("x", vec![30.0, 60.0])).unwrap();
        let before_p0 = m.part(0).clone();
        let before_p2 = m.part(2).clone();
        // Append rows landing only in the middle partition.
        let batch: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![(35.0 + i as f64 * 0.1).into(), "z".into(), 1.0.into()])
            .collect();
        t.push_rows(&batch).unwrap();
        let touched = m.extend(&t).unwrap();
        assert_eq!(touched, vec![1]);
        assert_eq!(m.part(0), &before_p0, "untouched partition must not move");
        assert_eq!(m.part(2), &before_p2, "untouched partition must not move");
        assert_eq!(m.part(1).rows(), 30 + 10);
        // The new label widened only partition 1's code set.
        let z = t.column("g").unwrap().code_of("z").unwrap();
        match m.part(1).summary(1).unwrap() {
            ColumnSummary::Cat { codes } => assert!(codes.contains(&z)),
            _ => panic!("g is categorical"),
        }
        assert_eq!(m.rows_covered(), 100);
    }

    /// Regression: one ingest batch straddling several partitions must
    /// split cleanly — each receiving partition widens, each bystander
    /// stays bit-identical.
    #[test]
    fn cross_partition_batch_split() {
        let mut t = table(90);
        let mut m = PartitionMap::build(&t, PartitionSpec::range("x", vec![30.0, 60.0])).unwrap();
        let before_p1 = m.part(1).clone();
        let batch: Vec<Vec<Value>> = vec![
            vec![(-5.0).into(), "a".into(), 1.0.into()], // partition 0
            vec![500.0.into(), "b".into(), 2.0.into()],  // partition 2
            vec![(-6.0).into(), "c".into(), 3.0.into()], // partition 0
        ];
        t.push_rows(&batch).unwrap();
        let touched = m.extend(&t).unwrap();
        assert_eq!(touched, vec![0, 2]);
        assert_eq!(m.part(1), &before_p1);
        match m.part(0).summary(0).unwrap() {
            ColumnSummary::Num { min, .. } => assert_eq!(*min, -6.0),
            _ => panic!("x is numeric"),
        }
        match m.part(2).summary(0).unwrap() {
            ColumnSummary::Num { max, .. } => assert_eq!(*max, 500.0),
            _ => panic!("x is numeric"),
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let t = table(10);
        assert!(PartitionMap::build(&t, PartitionSpec::range("g", vec![1.0])).is_err());
        assert!(PartitionMap::build(&t, PartitionSpec::hash("x", 0)).is_err());
        assert!(PartitionMap::build(&t, PartitionSpec::hash("nope", 2)).is_err());
        assert!(PartitionMap::build(&t, PartitionSpec::range("x", vec![f64::NAN])).is_err());
    }

    #[test]
    fn nan_routes_to_last_range_partition() {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("x"),
            ColumnDef::measure("v"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec![1.0.into(), 1.0.into()]).unwrap();
        t.push_row(vec![f64::NAN.into(), 2.0.into()]).unwrap();
        let m = PartitionMap::build(&t, PartitionSpec::range("x", vec![10.0])).unwrap();
        let routed = m.route(&t, 0..2).unwrap();
        assert_eq!(routed, vec![0, 1]);
        match m.part(1).summary(0).unwrap() {
            ColumnSummary::Num { has_nan, .. } => assert!(has_nan),
            _ => panic!("x is numeric"),
        }
        // A NaN-holding partition is never provably dense for a range.
        let p = Predicate::between("x", f64::NEG_INFINITY, f64::INFINITY)
            .compile(&t)
            .unwrap();
        assert_ne!(p.classify_partition(m.part(1)), ChunkMatch::AllRows);
    }
}
