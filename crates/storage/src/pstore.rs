//! A memory-budgeted buffer manager for demand-paged partition segments.
//!
//! Out-of-core serving keeps partition data on disk and faults it into
//! memory only when a scan actually needs it. [`PartitionStore`] is the
//! cache in the middle: segments (immutable [`Table`]s, one per
//! `(sample, partition)` pair) are loaded through a caller-supplied
//! fault function, accounted by [`Table::heap_bytes`], and evicted in
//! LRU order once the configured byte budget is exceeded.
//!
//! # Pinning
//!
//! A scan pins the segment it is reading ([`PartitionStore::pin`]
//! returns a [`SegmentPin`] guard); pinned segments are never evicted,
//! so eviction can never race a scan — a worker's column slices stay
//! valid for as long as its pin lives. Pins may push residency past the
//! budget transiently: correctness requires only that the budget admits
//! one partition at a time, which is the documented floor.
//!
//! # Determinism
//!
//! The cache affects *when* I/O happens, never *what* a scan computes:
//! the fault function is a pure function of the segment key, so answers
//! are bit-identical at every budget. Only the counters
//! ([`PartitionStore::counters`]) reflect cache behavior.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{Result, Table};

/// Identifies one cached segment: partition `partition` of sample
/// `sample` (samples of one session share a store and a budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentKey {
    /// Index of the offline sample the segment belongs to.
    pub sample: u32,
    /// Partition id within the sample's partition map.
    pub partition: u32,
}

/// Monotonic counters and the residency gauge of one
/// [`PartitionStore`], cheap to snapshot at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Pins served from a resident segment.
    pub hits: u64,
    /// Pins that had to fault the segment in.
    pub misses: u64,
    /// Segments evicted to make room.
    pub evictions: u64,
    /// Bytes loaded by faults (monotonic).
    pub bytes_faulted: u64,
    /// Bytes currently resident (gauge).
    pub resident_bytes: u64,
}

impl CacheCounters {
    /// Counter-wise difference against an earlier snapshot (the gauge
    /// keeps its current value — a delta of a gauge is meaningless).
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            bytes_faulted: self.bytes_faulted - earlier.bytes_faulted,
            resident_bytes: self.resident_bytes,
        }
    }
}

struct Entry {
    table: Arc<Table>,
    bytes: u64,
    pins: u32,
    /// Logical clock of the most recent touch (LRU ordering).
    last_used: u64,
}

struct Resident {
    entries: HashMap<SegmentKey, Entry>,
    clock: u64,
    resident_bytes: u64,
}

/// The buffer manager. Shared (`Arc`) between a session and its scan
/// workers; all methods take `&self`.
pub struct PartitionStore {
    budget_bytes: u64,
    inner: Mutex<Resident>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes_faulted: AtomicU64,
}

impl std::fmt::Debug for PartitionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("PartitionStore")
            .field("budget_bytes", &self.budget_bytes)
            .field("counters", &c)
            .finish()
    }
}

impl PartitionStore {
    /// A store evicting down to `budget_bytes` of resident segments.
    /// The budget is best-effort under pinning: pinned segments are
    /// never evicted even when they exceed it.
    pub fn new(budget_bytes: u64) -> PartitionStore {
        PartitionStore {
            budget_bytes,
            inner: Mutex::new(Resident {
                entries: HashMap::new(),
                clock: 0,
                resident_bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_faulted: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Pins segment `key`, faulting it in through `load` on a miss, and
    /// returns a guard keeping it resident. The fault runs under the
    /// cache lock, serializing concurrent faults of the *same* segment
    /// into one load.
    pub fn pin(
        self: &Arc<Self>,
        key: SegmentKey,
        load: impl FnOnce() -> Result<Table>,
    ) -> Result<SegmentPin> {
        let mut inner = self.inner.lock().expect("partition cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.entries.get_mut(&key) {
            e.pins += 1;
            e.last_used = clock;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(SegmentPin {
                store: Arc::clone(self),
                key,
                table: Arc::clone(&e.table),
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(load()?);
        let bytes = table.heap_bytes();
        self.bytes_faulted.fetch_add(bytes, Ordering::Relaxed);
        inner.resident_bytes += bytes;
        inner.entries.insert(
            key,
            Entry {
                table: Arc::clone(&table),
                bytes,
                pins: 1,
                last_used: clock,
            },
        );
        self.evict_over_budget(&mut inner);
        Ok(SegmentPin {
            store: Arc::clone(self),
            key,
            table,
        })
    }

    /// LRU-touches `key` if it is resident (no fault) — the scan driver
    /// bumps every resident unpruned segment before scanning, so warm
    /// ("hot") segments outlive cold ones under eviction pressure.
    pub fn touch(&self, key: SegmentKey) -> bool {
        let mut inner = self.inner.lock().expect("partition cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = clock;
                true
            }
            None => false,
        }
    }

    /// Whether `key` is resident right now (no fault, no touch).
    pub fn contains(&self, key: SegmentKey) -> bool {
        self.inner
            .lock()
            .expect("partition cache poisoned")
            .entries
            .contains_key(&key)
    }

    /// Snapshot of the cache counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_faulted: self.bytes_faulted.load(Ordering::Relaxed),
            resident_bytes: self
                .inner
                .lock()
                .expect("partition cache poisoned")
                .resident_bytes,
        }
    }

    /// Evicts least-recently-used unpinned segments until residency is
    /// within budget (or only pinned segments remain).
    fn evict_over_budget(&self, inner: &mut Resident) {
        while inner.resident_bytes > self.budget_bytes {
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            if let Some(e) = inner.entries.remove(&key) {
                inner.resident_bytes -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn unpin(&self, key: SegmentKey) {
        let mut inner = self.inner.lock().expect("partition cache poisoned");
        if let Some(e) = inner.entries.get_mut(&key) {
            debug_assert!(e.pins > 0, "unpin without pin");
            e.pins = e.pins.saturating_sub(1);
        }
        self.evict_over_budget(&mut inner);
    }
}

/// Keeps one segment resident while alive; dropping unpins (and lets
/// deferred eviction reclaim space if the cache is over budget).
pub struct SegmentPin {
    store: Arc<PartitionStore>,
    key: SegmentKey,
    table: Arc<Table>,
}

impl SegmentPin {
    /// The pinned segment's rows.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The pinned key.
    pub fn key(&self) -> SegmentKey {
        self.key
    }
}

impl Drop for SegmentPin {
    fn drop(&mut self) {
        self.store.unpin(self.key);
    }
}

impl std::fmt::Debug for SegmentPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentPin")
            .field("key", &self.key)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, Schema};

    fn segment(rows: usize, tag: f64) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("x"),
            ColumnDef::measure("v"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..rows {
            t.push_row(vec![(i as f64).into(), tag.into()]).unwrap();
        }
        t
    }

    fn key(p: u32) -> SegmentKey {
        SegmentKey {
            sample: 0,
            partition: p,
        }
    }

    #[test]
    fn hit_after_miss_and_counters() {
        let bytes_one = segment(10, 0.0).heap_bytes();
        let store = Arc::new(PartitionStore::new(bytes_one * 10));
        let a = store.pin(key(1), || Ok(segment(10, 1.0))).unwrap();
        assert_eq!(a.table().num_rows(), 10);
        let b = store.pin(key(1), || panic!("must not refault")).unwrap();
        assert!(Arc::ptr_eq(a.table(), b.table()), "one resident copy");
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.evictions), (1, 1, 0));
        assert_eq!(c.bytes_faulted, bytes_one);
        assert_eq!(c.resident_bytes, bytes_one);
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        let bytes_one = segment(100, 0.0).heap_bytes();
        // Room for two segments.
        let store = Arc::new(PartitionStore::new(bytes_one * 2));
        for p in 0..2 {
            drop(store.pin(key(p), || Ok(segment(100, p as f64))).unwrap());
        }
        // Touch 0 so 1 is the LRU victim when 2 faults in.
        assert!(store.touch(key(0)));
        drop(store.pin(key(2), || Ok(segment(100, 2.0))).unwrap());
        assert!(store.contains(key(0)));
        assert!(!store.contains(key(1)), "LRU segment must be evicted");
        assert!(store.contains(key(2)));
        let c = store.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.resident_bytes, bytes_one * 2);
    }

    #[test]
    fn pinned_segments_survive_over_budget() {
        let bytes_one = segment(100, 0.0).heap_bytes();
        // Budget fits only one segment.
        let store = Arc::new(PartitionStore::new(bytes_one));
        let p0 = store.pin(key(0), || Ok(segment(100, 0.0))).unwrap();
        let p1 = store.pin(key(1), || Ok(segment(100, 1.0))).unwrap();
        // Both pinned: nothing evictable, residency transiently exceeds
        // the budget, and both tables stay readable.
        assert_eq!(store.counters().resident_bytes, bytes_one * 2);
        assert_eq!(p0.table().num_rows(), 100);
        assert_eq!(p1.table().num_rows(), 100);
        drop(p0);
        // Unpinning triggers the deferred eviction of the now-LRU entry.
        assert!(!store.contains(key(0)));
        assert!(store.contains(key(1)));
        drop(p1);
    }

    #[test]
    fn fault_error_leaves_cache_unchanged() {
        let store = Arc::new(PartitionStore::new(u64::MAX));
        let r = store.pin(key(7), || {
            Err(crate::StorageError::TypeError("boom".into()))
        });
        assert!(r.is_err());
        assert!(!store.contains(key(7)));
        let c = store.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.resident_bytes, 0);
    }
}
