//! Exact aggregate evaluation over tables.
//!
//! Verdict internally computes everything from two primitives (paper §2.3):
//! `AVG(Ak)` and `FREQ(*)` (the fraction of tuples satisfying the
//! predicate). The user-facing aggregates are recovered as
//!
//! ```text
//! AVG(Ak)   = AVG(Ak)
//! COUNT(*)  = round(FREQ(*) × table cardinality)
//! SUM(Ak)   = AVG(Ak) × COUNT(*)
//! ```
//!
//! This module evaluates these exactly — the ground truth used by the
//! experiment harness when reporting *actual* (not estimated) errors.

use std::collections::BTreeMap;

use crate::{Expr, Predicate, Result, Table, Value};

/// A user-facing aggregate function over an optional derived attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateFn {
    /// `AVG(expr)`.
    Avg(Expr),
    /// `SUM(expr)`.
    Sum(Expr),
    /// `COUNT(*)`.
    Count,
    /// `FREQ(*)`: fraction of rows satisfying the predicate (internal
    /// primitive; exposed for tests and the inference engine).
    Freq,
}

impl AggregateFn {
    /// Short display name, e.g. `AVG(rev)`.
    pub fn label(&self) -> String {
        match self {
            AggregateFn::Avg(e) => format!("AVG({e})"),
            AggregateFn::Sum(e) => format!("SUM({e})"),
            AggregateFn::Count => "COUNT(*)".to_owned(),
            AggregateFn::Freq => "FREQ(*)".to_owned(),
        }
    }

    /// Evaluates the aggregate exactly over the rows of `table` selected by
    /// `predicate`.
    ///
    /// `AVG` over zero rows returns `0.0` (matching the AQP engine's
    /// convention of reporting a zero estimate with maximal uncertainty).
    pub fn eval_exact(&self, table: &Table, predicate: &Predicate) -> Result<f64> {
        let rows = predicate.selected_rows(table)?;
        self.eval_on_rows(table, &rows)
    }

    /// Evaluates the aggregate over an explicit row set of `table`.
    pub fn eval_on_rows(&self, table: &Table, rows: &[usize]) -> Result<f64> {
        match self {
            AggregateFn::Avg(expr) => {
                if rows.is_empty() {
                    return Ok(0.0);
                }
                let c = expr.compile(table)?;
                let sum: f64 = rows.iter().map(|&r| c.eval(r)).sum();
                Ok(sum / rows.len() as f64)
            }
            AggregateFn::Sum(expr) => {
                let c = expr.compile(table)?;
                Ok(rows.iter().map(|&r| c.eval(r)).sum())
            }
            AggregateFn::Count => Ok(rows.len() as f64),
            AggregateFn::Freq => {
                if table.num_rows() == 0 {
                    return Ok(0.0);
                }
                Ok(rows.len() as f64 / table.num_rows() as f64)
            }
        }
    }
}

/// A group-by key: the categorical codes / numeric values of the grouping
/// columns for one output row.
pub type GroupKey = Vec<Value>;

/// Exact `GROUP BY` evaluation: returns `(group key, aggregate value)` pairs
/// sorted by key (numeric values are compared by total order; groups are
/// formed by exact equality).
pub fn eval_group_by(
    table: &Table,
    predicate: &Predicate,
    group_cols: &[String],
    agg: &AggregateFn,
) -> Result<Vec<(GroupKey, f64)>> {
    let rows = predicate.selected_rows(table)?;
    let mut groups: BTreeMap<Vec<OrdValue>, Vec<usize>> = BTreeMap::new();
    for &row in &rows {
        let mut key = Vec::with_capacity(group_cols.len());
        for col in group_cols {
            key.push(OrdValue(table.column(col)?.get(row)));
        }
        groups.entry(key).or_default().push(row);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, rows) in groups {
        let v = agg.eval_on_rows(table, &rows)?;
        out.push((key.into_iter().map(|k| k.0).collect(), v));
    }
    Ok(out)
}

/// Total-order wrapper so `Value` can key a `BTreeMap` (shared with the
/// scan module so group enumeration orders keys identically everywhere).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OrdValue(pub(crate) Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (&self.0, &other.0) {
            (Value::Num(a), Value::Num(b)) => a.total_cmp(b),
            (Value::Cat(a), Value::Cat(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Num(_), _) => Ordering::Less,
            (_, Value::Num(_)) => Ordering::Greater,
            (Value::Cat(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Cat(_)) => Ordering::Greater,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (w, r, v) in [
            (1.0, "us", 10.0),
            (2.0, "eu", 20.0),
            (3.0, "us", 30.0),
            (4.0, "jp", 40.0),
        ] {
            t.push_row(vec![w.into(), r.into(), v.into()]).unwrap();
        }
        t
    }

    #[test]
    fn avg_over_predicate() {
        let t = table();
        let p = Predicate::between("week", 1.0, 3.0);
        let v = AggregateFn::Avg(Expr::col("rev"))
            .eval_exact(&t, &p)
            .unwrap();
        assert_eq!(v, 20.0);
    }

    #[test]
    fn sum_count_freq_relationship() {
        let t = table();
        let p = Predicate::between("week", 2.0, 4.0);
        let sum = AggregateFn::Sum(Expr::col("rev"))
            .eval_exact(&t, &p)
            .unwrap();
        let avg = AggregateFn::Avg(Expr::col("rev"))
            .eval_exact(&t, &p)
            .unwrap();
        let count = AggregateFn::Count.eval_exact(&t, &p).unwrap();
        let freq = AggregateFn::Freq.eval_exact(&t, &p).unwrap();
        assert_eq!(sum, 90.0);
        assert_eq!(count, 3.0);
        assert!((avg * count - sum).abs() < 1e-12);
        assert!((freq - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_conventions() {
        let t = table();
        let p = Predicate::between("week", 100.0, 200.0);
        assert_eq!(
            AggregateFn::Avg(Expr::col("rev"))
                .eval_exact(&t, &p)
                .unwrap(),
            0.0
        );
        assert_eq!(
            AggregateFn::Sum(Expr::col("rev"))
                .eval_exact(&t, &p)
                .unwrap(),
            0.0
        );
        assert_eq!(AggregateFn::Count.eval_exact(&t, &p).unwrap(), 0.0);
        assert_eq!(AggregateFn::Freq.eval_exact(&t, &p).unwrap(), 0.0);
    }

    #[test]
    fn group_by_region() {
        let t = table();
        let groups = eval_group_by(
            &t,
            &Predicate::True,
            &["region".to_owned()],
            &AggregateFn::Sum(Expr::col("rev")),
        )
        .unwrap();
        // Codes: us=0, eu=1, jp=2; sorted by code.
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (vec![Value::Cat(0)], 40.0));
        assert_eq!(groups[1], (vec![Value::Cat(1)], 20.0));
        assert_eq!(groups[2], (vec![Value::Cat(2)], 40.0));
    }

    #[test]
    fn group_by_with_predicate() {
        let t = table();
        let groups = eval_group_by(
            &t,
            &Predicate::between("week", 1.0, 2.0),
            &["region".to_owned()],
            &AggregateFn::Count,
        )
        .unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn derived_attribute_aggregate() {
        let t = table();
        let doubled = Expr::Mul(Box::new(Expr::col("rev")), Box::new(Expr::Const(2.0)));
        let v = AggregateFn::Sum(doubled)
            .eval_exact(&t, &Predicate::True)
            .unwrap();
        assert_eq!(v, 200.0);
    }

    #[test]
    fn labels_format() {
        assert_eq!(AggregateFn::Count.label(), "COUNT(*)");
        assert_eq!(AggregateFn::Avg(Expr::col("x")).label(), "AVG(x)");
    }
}
