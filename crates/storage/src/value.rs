//! Scalar values exchanged with the storage engine.

/// A single cell value.
///
/// The engine stores two physical types, matching the paper's data model
/// (§3.1): numeric (`f64`) and categorical (dictionary-encoded `u32`).
/// `Str` is a convenience wrapper used at the API boundary before dictionary
/// encoding resolves it to a code.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric value (dimension or measure).
    Num(f64),
    /// Dictionary code of a categorical value.
    Cat(u32),
    /// Un-encoded categorical string (encoded on insert).
    Str(String),
}

impl Value {
    /// Numeric accessor; `None` for categorical values.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Categorical-code accessor; `None` for numeric or string values.
    pub fn as_cat(&self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(*c),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Num(x as f64)
    }
}

impl From<u32> for Value {
    fn from(c: u32) -> Self {
        Value::Cat(c)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Cat(c) => write!(f, "#{c}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Num(1.5).as_num(), Some(1.5));
        assert_eq!(Value::Num(1.5).as_cat(), None);
        assert_eq!(Value::Cat(3).as_cat(), Some(3));
        assert_eq!(Value::Cat(3).as_num(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2.0), Value::Num(2.0));
        assert_eq!(Value::from(7i64), Value::Num(7.0));
        assert_eq!(Value::from(4u32), Value::Cat(4));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Num(1.0).to_string(), "1");
        assert_eq!(Value::Cat(9).to_string(), "#9");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
    }
}
