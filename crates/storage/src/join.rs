//! Foreign-key hash joins and star-schema denormalization.
//!
//! Verdict supports foreign-key joins between a fact table and any number
//! of dimension tables (paper §2.2 item 2); such joins do not introduce
//! sampling bias, and the paper's discussion then proceeds on the
//! denormalized result. This module provides both the join and a one-shot
//! [`denormalize`] that folds a star schema into a single wide table.

use std::collections::HashMap;

use crate::{Column, Result, Schema, StorageError, Table, Value};

/// Specification of one fact→dimension foreign-key edge.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Fact-side join column (categorical: key codes).
    pub fact_column: String,
    /// Dimension-side key column (categorical: key codes).
    pub dim_key_column: String,
}

/// Inner hash join of `fact` with `dim` along `fk`.
///
/// Every fact row joins with at most one dimension row (the key is unique in
/// the dimension table, as with a primary key). Output columns are the fact
/// columns followed by the dimension columns (minus its key column), with
/// clashes prefixed by `prefix`.
pub fn fk_join(fact: &Table, dim: &Table, fk: &ForeignKey, prefix: &str) -> Result<Table> {
    let dim_key = dim.column(&fk.dim_key_column)?.categorical()?;
    let mut index: HashMap<u32, usize> = HashMap::with_capacity(dim_key.len());
    for (row, &code) in dim_key.iter().enumerate() {
        if index.insert(code, row).is_some() {
            return Err(StorageError::SchemaMismatch(format!(
                "duplicate key {code} in dimension column {}",
                fk.dim_key_column
            )));
        }
    }

    // Dimension schema without its key column.
    let dim_cols: Vec<&crate::ColumnDef> = dim
        .schema()
        .columns()
        .iter()
        .filter(|c| c.name != fk.dim_key_column)
        .collect();
    let dim_schema = Schema::new(dim_cols.iter().map(|&c| c.clone()).collect())?;
    let out_schema = fact.schema().concat(&dim_schema, prefix)?;

    let fact_key = fact.column(&fk.fact_column)?.categorical()?;
    let mut out = Table::new(out_schema);
    let fact_width = fact.schema().len();
    for (fact_row, &code) in fact_key.iter().enumerate() {
        let Some(&dim_row) = index.get(&code) else {
            continue; // inner join: drop dangling fact rows
        };
        let mut row: Vec<Value> = Vec::with_capacity(fact_width + dim_cols.len());
        row.extend(fact.row_decoded(fact_row));
        for c in &dim_cols {
            let col = dim.column(&c.name)?;
            row.push(match col.get(dim_row) {
                Value::Cat(code) => match col.label_of(code) {
                    Some(label) => Value::Str(label.to_owned()),
                    None => Value::Cat(code),
                },
                v => v,
            });
        }
        out.push_row(row)?;
    }
    Ok(out)
}

/// Denormalizes a star schema: joins `fact` with each `(dim, fk)` pair in
/// turn, producing a single wide table.
pub fn denormalize(fact: &Table, dims: &[(&Table, ForeignKey)]) -> Result<Table> {
    let mut acc = fact.clone();
    for (i, (dim, fk)) in dims.iter().enumerate() {
        let prefix = format!("d{i}_");
        acc = fk_join(&acc, dim, fk, &prefix)?;
    }
    Ok(acc)
}

/// Looks up the dictionary `Column` for a join key, verifying it is
/// categorical; convenience for workload builders.
pub fn key_column<'t>(table: &'t Table, name: &str) -> Result<&'t Column> {
    let col = table.column(name)?;
    col.categorical()?;
    Ok(col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, Predicate, Schema};

    fn star() -> (Table, Table) {
        let fact_schema = Schema::new(vec![
            ColumnDef::categorical_dimension("cust_id"),
            ColumnDef::measure("amount"),
        ])
        .unwrap();
        let mut fact = Table::new(fact_schema);
        for (k, v) in [(0u32, 10.0), (1, 20.0), (0, 30.0), (2, 40.0)] {
            fact.push_row(vec![k.into(), v.into()]).unwrap();
        }

        let dim_schema = Schema::new(vec![
            ColumnDef::categorical_dimension("id"),
            ColumnDef::categorical_dimension("segment"),
        ])
        .unwrap();
        let mut dim = Table::new(dim_schema);
        for (k, s) in [(0u32, "gold"), (1, "silver")] {
            dim.push_row(vec![k.into(), s.into()]).unwrap();
        }
        (fact, dim)
    }

    fn fk() -> ForeignKey {
        ForeignKey {
            fact_column: "cust_id".into(),
            dim_key_column: "id".into(),
        }
    }

    #[test]
    fn join_matches_keys_and_drops_dangling() {
        let (fact, dim) = star();
        let joined = fk_join(&fact, &dim, &fk(), "d_").unwrap();
        // cust_id 2 has no dimension row -> dropped by the inner join.
        assert_eq!(joined.num_rows(), 3);
        assert!(joined.schema().index_of("segment").is_ok());
    }

    #[test]
    fn joined_attributes_are_filterable() {
        let (fact, dim) = star();
        let joined = fk_join(&fact, &dim, &fk(), "d_").unwrap();
        let gold = joined.column("segment").unwrap().code_of("gold").unwrap();
        let rows = Predicate::cat_eq("segment", gold)
            .selected_rows(&joined)
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn duplicate_dimension_key_is_error() {
        let (fact, mut dim) = star();
        dim.push_row(vec![0u32.into(), "gold".into()]).unwrap();
        assert!(fk_join(&fact, &dim, &fk(), "d_").is_err());
    }

    #[test]
    fn denormalize_two_dims() {
        let (fact, dim) = star();
        let mut fact2 = fact.clone();
        // Second dimension keyed by the same fact column for simplicity.
        let denorm = denormalize(&fact2, &[(&dim, fk()), (&dim, fk())]).unwrap();
        assert_eq!(denorm.num_rows(), 3);
        // Second join prefixes the clashing "segment" column.
        assert!(denorm.schema().index_of("segment").is_ok());
        assert!(denorm.schema().index_of("d1_segment").is_ok());
        fact2.push_row(vec![1u32.into(), 5.0.into()]).unwrap();
    }

    #[test]
    fn key_column_requires_categorical() {
        let (fact, _) = star();
        assert!(key_column(&fact, "cust_id").is_ok());
        assert!(key_column(&fact, "amount").is_err());
    }
}
