//! Columnar chunk format: fixed-size row batches, `u64` selection
//! bitmaps, per-chunk min/max zone maps, and bit-packed dictionary
//! codes for low-cardinality categorical columns.
//!
//! The scan pipeline processes a table as a sequence of [`CHUNK_ROWS`]-row
//! chunks. Per chunk it holds:
//!
//! - raw typed column data (`&[f64]` values, `&[u32]` dictionary codes)
//!   sliced out of the column storage — see [`Chunk`];
//! - a [`SelectionMask`]: one bit per row, built by the branch-free
//!   predicate kernels in [`crate::predicate`];
//! - a zone map entry ([`NumZone`] / [`CatZone`]) recording the min/max
//!   of every column over the chunk, letting the scan skip chunks whose
//!   value range cannot intersect the predicate;
//! - optionally a [`PackedCodes`] mirror of a low-cardinality
//!   categorical column, storing codes at 1/2/4/8 bits each so the
//!   group-key resolution loop reads 4–64× less memory.
//!
//! # Bit-parity contract
//!
//! The chunked kernel must produce answers *bit-identical* to the
//! per-row reference path. Everything in this module is therefore
//! exact, never approximate:
//!
//! - a [`SelectionMask`] filled by `fill_mask` has exactly the same
//!   set of rows as per-row predicate evaluation;
//! - zone maps are only used to classify a chunk as "no row can match"
//!   (skip — equivalent to an all-zero mask) or "every row matches"
//!   (dense fast path — equivalent to an all-one mask); when in doubt
//!   the classifier says "some rows" and the mask kernel decides;
//! - packed codes decode to exactly the codes they were packed from.
//!
//! Floating-point accumulation order is preserved by the *driver*
//! (rows are always consumed in ascending order within a chunk
//! sequence); this module only guarantees the row *sets* are exact.

use std::ops::Range;

use crate::column::Column;

/// Number of rows per chunk. 1024 rows × 8 bytes = one 8 KiB column
/// segment — two pages, comfortably L1-resident alongside the mask.
pub const CHUNK_ROWS: usize = 1024;

/// Splits `range` into chunk-aligned segments, yielding
/// `(chunk_index, row_range)` pairs in ascending row order.
///
/// Segments at the edges may be partial (a scan batch can start or end
/// mid-chunk); interior segments span a full chunk.
pub fn chunk_segments(range: Range<usize>) -> impl Iterator<Item = (usize, Range<usize>)> {
    let mut at = range.start;
    let end = range.end;
    std::iter::from_fn(move || {
        if at >= end {
            return None;
        }
        let chunk = at / CHUNK_ROWS;
        let stop = ((chunk + 1) * CHUNK_ROWS).min(end);
        let seg = at..stop;
        at = stop;
        Some((chunk, seg))
    })
}

/// A borrowed view of one chunk of a table: raw typed column slices
/// for a fixed row range.
#[derive(Debug, Clone)]
pub struct Chunk<'t> {
    index: usize,
    rows: Range<usize>,
    columns: &'t [Column],
}

impl<'t> Chunk<'t> {
    pub(crate) fn new(index: usize, rows: Range<usize>, columns: &'t [Column]) -> Self {
        Chunk {
            index,
            rows,
            columns,
        }
    }

    /// Chunk index within the table (`row / CHUNK_ROWS`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The absolute row range this chunk covers.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Number of rows in the chunk (the last chunk may be short).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Raw numeric values of column `col` over this chunk, or `None`
    /// for a categorical column.
    pub fn numeric(&self, col: usize) -> Option<&'t [f64]> {
        self.columns[col]
            .numeric()
            .ok()
            .map(|d| &d[self.rows.start..self.rows.end])
    }

    /// Raw dictionary codes of column `col` over this chunk, or `None`
    /// for a numeric column.
    pub fn codes(&self, col: usize) -> Option<&'t [u32]> {
        self.columns[col]
            .categorical()
            .ok()
            .map(|d| &d[self.rows.start..self.rows.end])
    }
}

/// A per-row selection bitmap over one chunk segment, 64 rows per word.
///
/// Invariant: bits at positions `>= len` in the last word are zero, so
/// popcounts and all-ones checks are straight word operations.
#[derive(Debug, Clone, Default)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// An empty mask; size it with [`SelectionMask::reset_ones`].
    pub fn new() -> Self {
        SelectionMask::default()
    }

    /// Resizes to `len` bits, all set. Kernels then AND conjuncts in.
    pub fn reset_ones(&mut self, len: usize) {
        let nwords = len.div_ceil(64);
        self.words.clear();
        self.words.resize(nwords, !0u64);
        self.len = len;
        let tail = len % 64;
        if tail != 0 {
            self.words[nwords - 1] = (1u64 << tail) - 1;
        }
    }

    /// Resizes to `len` bits, all clear.
    pub fn reset_zeros(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Number of rows the mask covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit for row `i` (relative to the segment start).
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// The raw bitmap words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Number of selected rows.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// True when every covered row is selected.
    pub fn all_ones(&self) -> bool {
        if self.len == 0 {
            return true;
        }
        let tail = self.len % 64;
        let (last, full) = self.words.split_last().expect("len > 0 implies words");
        full.iter().all(|&w| w == !0u64)
            && *last == if tail == 0 { !0u64 } else { (1u64 << tail) - 1 }
    }

    /// True when at least one row is selected.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Calls `f` with each selected row index, ascending.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

/// Min/max summary of a numeric column over one chunk.
///
/// NaN values are excluded from the min/max and flagged in `has_nan`;
/// an all-NaN chunk has `min = +inf, max = -inf`, which is disjoint
/// from every predicate range — sound, since NaN never matches a
/// range predicate.
#[derive(Debug, Clone, Copy)]
pub struct NumZone {
    pub min: f64,
    pub max: f64,
    pub has_nan: bool,
}

impl NumZone {
    fn of(data: &[f64]) -> Self {
        let mut z = NumZone {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            has_nan: false,
        };
        for &v in data {
            if v.is_nan() {
                z.has_nan = true;
            } else {
                z.min = z.min.min(v);
                z.max = z.max.max(v);
            }
        }
        z
    }
}

/// Min/max dictionary codes of a categorical column over one chunk.
#[derive(Debug, Clone, Copy)]
pub struct CatZone {
    pub min_code: u32,
    pub max_code: u32,
}

impl CatZone {
    fn of(codes: &[u32]) -> Self {
        let mut z = CatZone {
            min_code: u32::MAX,
            max_code: 0,
        };
        for &c in codes {
            z.min_code = z.min_code.min(c);
            z.max_code = z.max_code.max(c);
        }
        z
    }
}

/// Per-chunk zone entries for one column.
#[derive(Debug, Clone)]
pub enum ColumnZones {
    Num(Vec<NumZone>),
    Cat {
        zones: Vec<CatZone>,
        /// Bit-packed mirror of the full code vector when the column's
        /// codes fit in ≤ 8 bits; `None` for wide dictionaries.
        packed: Option<PackedCodes>,
    },
}

/// Zone maps for every column of a table, covering `rows` rows.
///
/// Built lazily on first chunked scan and *extended* incrementally
/// after ingest: min/max is associative, so covering new rows only
/// requires scanning from the start of the last previously-covered
/// chunk — never the whole column (the stale-bound hazard ISSUE 7
/// satellite 6 guards against).
#[derive(Debug, Clone)]
pub struct ZoneMaps {
    cols: Vec<ColumnZones>,
    rows: usize,
}

impl ZoneMaps {
    /// Builds zone maps over `rows` rows of `columns` from scratch.
    pub fn build(columns: &[Column], rows: usize) -> Self {
        let cols = columns
            .iter()
            .map(|col| Self::column_zones(col, 0, rows, None))
            .collect();
        ZoneMaps { cols, rows }
    }

    /// Returns zone maps covering `rows` rows, reusing every complete
    /// chunk of `self` and scanning only from the start of the last
    /// (possibly partial) previously-covered chunk.
    pub fn extended(&self, columns: &[Column], rows: usize) -> Self {
        assert!(rows >= self.rows, "tables only grow");
        if rows == self.rows {
            return self.clone();
        }
        // The last covered chunk may have been partial; recompute it
        // from full chunk data along with all new chunks.
        let keep_chunks = self.rows / CHUNK_ROWS;
        let from_row = keep_chunks * CHUNK_ROWS;
        let cols = columns
            .iter()
            .zip(&self.cols)
            .map(|(col, old)| Self::column_zones(col, from_row, rows, Some((old, keep_chunks))))
            .collect();
        ZoneMaps { cols, rows }
    }

    fn column_zones(
        col: &Column,
        from_row: usize,
        rows: usize,
        reuse: Option<(&ColumnZones, usize)>,
    ) -> ColumnZones {
        match col {
            Column::Numeric(data) => {
                let mut zones = match reuse {
                    Some((ColumnZones::Num(old), keep)) => old[..keep].to_vec(),
                    _ => Vec::new(),
                };
                for (_, seg) in chunk_segments(from_row..rows) {
                    zones.push(NumZone::of(&data[seg]));
                }
                ColumnZones::Num(zones)
            }
            Column::Categorical { codes, .. } => {
                let (mut zones, old_packed) = match reuse {
                    Some((ColumnZones::Cat { zones, packed }, keep)) => {
                        (zones[..keep].to_vec(), packed.as_ref())
                    }
                    _ => (Vec::new(), None),
                };
                for (_, seg) in chunk_segments(from_row..rows) {
                    zones.push(CatZone::of(&codes[seg.clone()]));
                }
                let packed = match (old_packed, reuse.is_some()) {
                    // Incremental: re-pack only the tail rows; drops to
                    // None if a new code outgrew the bit width.
                    (Some(p), true) => p.repacked_tail(codes, rows),
                    (None, true) => None,
                    _ => PackedCodes::pack(&codes[..rows]),
                };
                ColumnZones::Cat { zones, packed }
            }
        }
    }

    /// Rows covered by these zone maps.
    pub fn rows_covered(&self) -> usize {
        self.rows
    }

    /// Number of chunks covered.
    pub fn num_chunks(&self) -> usize {
        self.rows.div_ceil(CHUNK_ROWS)
    }

    /// Zone entries for column `col`.
    pub fn column(&self, col: usize) -> &ColumnZones {
        &self.cols[col]
    }

    /// Numeric zone of `(col, chunk)`, if the column is numeric and the
    /// chunk is covered.
    pub fn num_zone(&self, col: usize, chunk: usize) -> Option<NumZone> {
        match &self.cols[col] {
            ColumnZones::Num(z) => z.get(chunk).copied(),
            ColumnZones::Cat { .. } => None,
        }
    }

    /// Categorical zone of `(col, chunk)`, if covered.
    pub fn cat_zone(&self, col: usize, chunk: usize) -> Option<CatZone> {
        match &self.cols[col] {
            ColumnZones::Cat { zones, .. } => zones.get(chunk).copied(),
            ColumnZones::Num(_) => None,
        }
    }

    /// The bit-packed code mirror for categorical column `col`, when
    /// its dictionary is narrow enough.
    pub fn packed_codes(&self, col: usize) -> Option<&PackedCodes> {
        match &self.cols[col] {
            ColumnZones::Cat { packed, .. } => packed.as_ref(),
            ColumnZones::Num(_) => None,
        }
    }
}

/// Dictionary codes stored at 1, 2, 4, or 8 bits each.
///
/// Decodes to exactly the `u32` codes it was packed from; used as a
/// bandwidth-reducing mirror for low-cardinality group-by columns.
#[derive(Debug, Clone)]
pub struct PackedCodes {
    bits: u32,
    len: usize,
    words: Vec<u64>,
}

impl PackedCodes {
    const MAX_BITS: u32 = 8;

    fn width_for(max_code: u32) -> Option<u32> {
        let needed = (32 - max_code.leading_zeros()).max(1);
        let width = needed.next_power_of_two();
        (width <= Self::MAX_BITS).then_some(width)
    }

    /// Packs `codes`, or `None` when any code needs more than 8 bits
    /// (wide dictionaries aren't worth packing).
    pub fn pack(codes: &[u32]) -> Option<Self> {
        let max = codes.iter().copied().max().unwrap_or(0);
        let bits = Self::width_for(max)?;
        let per_word = (64 / bits) as usize;
        let mut p = PackedCodes {
            bits,
            len: 0,
            words: Vec::with_capacity(codes.len().div_ceil(per_word)),
        };
        p.push_all(codes);
        Some(p)
    }

    fn push_all(&mut self, codes: &[u32]) {
        let per_word = (64 / self.bits) as usize;
        for &c in codes {
            let slot = self.len % per_word;
            if slot == 0 {
                self.words.push(0);
            }
            let w = self.words.last_mut().expect("pushed above");
            *w |= u64::from(c) << (slot as u32 * self.bits);
            self.len += 1;
        }
    }

    /// Returns a copy of `self` extended with `codes[self.len..rows]`,
    /// or `None` if any new code exceeds the current bit width.
    pub fn repacked_tail(&self, codes: &[u32], rows: usize) -> Option<Self> {
        let tail = &codes[self.len..rows];
        let limit = if self.bits == 64 {
            u32::MAX
        } else {
            ((1u64 << self.bits) - 1) as u32
        };
        if tail.iter().any(|&c| c > limit) {
            return None;
        }
        let mut next = self.clone();
        next.push_all(tail);
        Some(next)
    }

    /// Bits per code (1, 2, 4, or 8).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of codes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Code at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        let per_word = (64 / self.bits) as usize;
        let w = self.words[i / per_word];
        let shift = (i % per_word) as u32 * self.bits;
        ((w >> shift) & ((1u64 << self.bits) - 1)) as u32
    }

    /// Decodes `range` into `out` (cleared first).
    pub fn unpack_range(&self, range: Range<usize>, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(range.len());
        for i in range {
            out.push(self.get(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_segments_split_at_boundaries() {
        let segs: Vec<_> = chunk_segments(1000..3000).collect();
        assert_eq!(
            segs,
            vec![(0, 1000..1024), (1, 1024..2048), (2, 2048..3000)]
        );
        assert_eq!(chunk_segments(0..0).count(), 0);
        let inner: Vec<_> = chunk_segments(100..200).collect();
        assert_eq!(inner, vec![(0, 100..200)]);
    }

    #[test]
    fn selection_mask_invariants() {
        let mut m = SelectionMask::new();
        m.reset_ones(70);
        assert_eq!(m.len(), 70);
        assert!(m.all_ones());
        assert_eq!(m.count_ones(), 70);
        assert!(m.any());
        // Tail bits beyond len stay zero.
        assert_eq!(m.words()[1], (1u64 << 6) - 1);

        m.words_mut()[0] &= !(1u64 << 3);
        assert!(!m.all_ones());
        assert_eq!(m.count_ones(), 69);
        assert!(!m.get(3));
        assert!(m.get(4));

        let mut seen = Vec::new();
        m.for_each_set(|i| seen.push(i));
        assert_eq!(seen.len(), 69);
        assert!(!seen.contains(&3));
        assert!(seen.windows(2).all(|w| w[0] < w[1]));

        m.reset_zeros(10);
        assert!(!m.any());
        assert!(!m.all_ones());
        assert_eq!(m.count_ones(), 0);

        m.reset_ones(64);
        assert!(m.all_ones());
        assert_eq!(m.words()[0], !0u64);
    }

    #[test]
    fn num_zone_tracks_nan() {
        let z = NumZone::of(&[3.0, f64::NAN, -1.0]);
        assert_eq!(z.min, -1.0);
        assert_eq!(z.max, 3.0);
        assert!(z.has_nan);
        let all_nan = NumZone::of(&[f64::NAN]);
        assert_eq!(all_nan.min, f64::INFINITY);
        assert_eq!(all_nan.max, f64::NEG_INFINITY);
    }

    #[test]
    fn packed_codes_roundtrip_and_extend() {
        for max in [0u32, 1, 3, 9, 200] {
            let codes: Vec<u32> = (0..2500).map(|i| (i * 7) as u32 % (max + 1)).collect();
            let p = PackedCodes::pack(&codes).expect("fits in 8 bits");
            assert!(p.bits() <= PackedCodes::MAX_BITS);
            assert_eq!(p.len(), codes.len());
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(p.get(i), c, "code {i} under max {max}");
            }
            let mut out = Vec::new();
            p.unpack_range(100..300, &mut out);
            assert_eq!(out, &codes[100..300]);
        }
        // Wide dictionaries refuse to pack.
        assert!(PackedCodes::pack(&[0, 300]).is_none());
        // Tail extension keeps codes, rejects overflow.
        let base: Vec<u32> = vec![1, 2, 3];
        let p = PackedCodes::pack(&base).unwrap();
        let grown = [1u32, 2, 3, 0, 3, 2];
        let p2 = p.repacked_tail(&grown, 6).unwrap();
        for (i, &c) in grown.iter().enumerate() {
            assert_eq!(p2.get(i), c);
        }
        assert!(p.repacked_tail(&[1, 2, 3, 99], 4).is_none());
    }

    #[test]
    fn zone_maps_build_and_extend_match_scratch() {
        let n = 2600usize;
        let mut vals: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        vals[1500] = f64::NAN;
        let codes: Vec<u32> = (0..n).map(|i| (i % 12) as u32).collect();
        let labels: Vec<String> = (0..12).map(|i| format!("l{i}")).collect();
        let cols = vec![
            Column::Numeric(vals.clone()),
            Column::from_categorical(codes.clone(), labels),
        ];

        // Build over a prefix, then extend to the full table; must match
        // a from-scratch build exactly.
        let prefix = 1100; // mid-chunk: forces last-chunk recompute
        let zm0 = ZoneMaps::build(&cols, prefix);
        assert_eq!(zm0.rows_covered(), prefix);
        assert_eq!(zm0.num_chunks(), 2);
        let zm = zm0.extended(&cols, n);
        let fresh = ZoneMaps::build(&cols, n);
        assert_eq!(zm.rows_covered(), n);
        assert_eq!(zm.num_chunks(), fresh.num_chunks());
        for chunk in 0..zm.num_chunks() {
            let (a, b) = (
                zm.num_zone(0, chunk).unwrap(),
                fresh.num_zone(0, chunk).unwrap(),
            );
            assert_eq!(a.min.to_bits(), b.min.to_bits());
            assert_eq!(a.max.to_bits(), b.max.to_bits());
            assert_eq!(a.has_nan, b.has_nan);
            let (c, d) = (
                zm.cat_zone(1, chunk).unwrap(),
                fresh.cat_zone(1, chunk).unwrap(),
            );
            assert_eq!((c.min_code, c.max_code), (d.min_code, d.max_code));
        }
        assert!(zm.num_zone(0, 1).unwrap().has_nan);
        let p = zm.packed_codes(1).expect("12 codes fit in 4 bits");
        assert_eq!(p.bits(), 4);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(p.get(i), c);
        }
        // Numeric columns have no packed mirror or cat zones.
        assert!(zm.packed_codes(0).is_none());
        assert!(zm.cat_zone(0, 0).is_none());
        assert!(zm.num_zone(1, 0).is_none());
    }
}
