//! Conjunctive selection predicates.
//!
//! Verdict's supported `where` clauses (paper §2.2) are conjunctions of
//! equality/inequality comparisons over dimension attributes, including the
//! `in` operator; disjunctions and textual `LIKE` filters are unsupported.
//! [`Predicate`] mirrors exactly that class: a conjunction of numeric range
//! constraints and categorical membership constraints.
//!
//! Compiled form: [`Predicate::compile`] binds the normal form to a table's
//! raw column slices. Chunked scans then call
//! [`CompiledPredicate::fill_mask`], which evaluates each conjunct as a
//! branch-free tight loop over a chunk segment, ANDing 64-row words into a
//! [`SelectionMask`]; [`CompiledPredicate::classify_chunk`] consults
//! per-chunk zone maps first so chunks that cannot match are skipped
//! without touching their data. Both are *exact*: the mask selects
//! precisely the rows per-row [`CompiledPredicate::matches`] would.

use std::collections::BTreeMap;

use crate::chunk::{SelectionMask, ZoneMaps};
use crate::partition::{ColumnSummary, PartitionInfo};
use crate::{Result, StorageError, Table};

/// A numeric interval constraint with per-bound inclusivity.
#[derive(Debug, Clone, PartialEq)]
pub struct NumRange {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
    /// Whether `lo` itself satisfies the constraint.
    pub lo_inclusive: bool,
    /// Whether `hi` itself satisfies the constraint.
    pub hi_inclusive: bool,
}

impl NumRange {
    /// The unconstrained interval `(-inf, +inf)`.
    pub fn unbounded() -> Self {
        NumRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            lo_inclusive: true,
            hi_inclusive: true,
        }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        NumRange {
            lo,
            hi,
            lo_inclusive: true,
            hi_inclusive: true,
        }
    }

    /// Tests a value against the interval.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        let lo_ok = if self.lo_inclusive {
            x >= self.lo
        } else {
            x > self.lo
        };
        let hi_ok = if self.hi_inclusive {
            x <= self.hi
        } else {
            x < self.hi
        };
        lo_ok && hi_ok
    }

    /// Intersects two intervals (tightest bounds win).
    pub fn intersect(&self, other: &NumRange) -> NumRange {
        let (lo, lo_inclusive) = match self.lo.partial_cmp(&other.lo) {
            Some(std::cmp::Ordering::Greater) => (self.lo, self.lo_inclusive),
            Some(std::cmp::Ordering::Less) => (other.lo, other.lo_inclusive),
            _ => (self.lo, self.lo_inclusive && other.lo_inclusive),
        };
        let (hi, hi_inclusive) = match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Less) => (self.hi, self.hi_inclusive),
            Some(std::cmp::Ordering::Greater) => (other.hi, other.hi_inclusive),
            _ => (self.hi, self.hi_inclusive && other.hi_inclusive),
        };
        NumRange {
            lo,
            hi,
            lo_inclusive,
            hi_inclusive,
        }
    }

    /// Whether no value can satisfy the interval.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && !(self.lo_inclusive && self.hi_inclusive))
    }
}

/// A conjunctive predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Conjunction of sub-predicates.
    And(Vec<Predicate>),
    /// `lo (<|<=) column (<|<=) hi` over a numeric dimension.
    NumRange {
        /// Column name.
        col: String,
        /// Interval constraint.
        range: NumRange,
    },
    /// `column IN (codes)` over a categorical dimension (equality is a
    /// single-element set).
    CatIn {
        /// Column name.
        col: String,
        /// Allowed dictionary codes (sorted, deduplicated on construction).
        codes: Vec<u32>,
    },
}

impl Predicate {
    /// `col BETWEEN lo AND hi` (closed interval).
    pub fn between(col: &str, lo: f64, hi: f64) -> Predicate {
        Predicate::NumRange {
            col: col.to_owned(),
            range: NumRange::closed(lo, hi),
        }
    }

    /// `col > bound` (exclusive) or `col >= bound` (inclusive).
    pub fn greater_than(col: &str, bound: f64, inclusive: bool) -> Predicate {
        Predicate::NumRange {
            col: col.to_owned(),
            range: NumRange {
                lo: bound,
                hi: f64::INFINITY,
                lo_inclusive: inclusive,
                hi_inclusive: true,
            },
        }
    }

    /// `col < bound` (exclusive) or `col <= bound` (inclusive).
    pub fn less_than(col: &str, bound: f64, inclusive: bool) -> Predicate {
        Predicate::NumRange {
            col: col.to_owned(),
            range: NumRange {
                lo: f64::NEG_INFINITY,
                hi: bound,
                lo_inclusive: true,
                hi_inclusive: inclusive,
            },
        }
    }

    /// `col = code` for a categorical dimension.
    pub fn cat_eq(col: &str, code: u32) -> Predicate {
        Predicate::CatIn {
            col: col.to_owned(),
            codes: vec![code],
        }
    }

    /// `col IN (codes)` for a categorical dimension.
    pub fn cat_in(col: &str, mut codes: Vec<u32>) -> Predicate {
        codes.sort_unstable();
        codes.dedup();
        Predicate::CatIn {
            col: col.to_owned(),
            codes,
        }
    }

    /// Conjunction of `self` and `other`.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Evaluates the predicate at one row.
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval_row(table, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::NumRange { col, range } => {
                let x = table.column(col)?.numeric()?[row];
                range.contains(x)
            }
            Predicate::CatIn { col, codes } => {
                let c = table.column(col)?.categorical()?[row];
                codes.binary_search(&c).is_ok()
            }
        })
    }

    /// Returns the indices of matching rows.
    pub fn selected_rows(&self, table: &Table) -> Result<Vec<usize>> {
        let nf = self.normal_form()?;
        let mut out = Vec::new();
        'rows: for row in 0..table.num_rows() {
            for (col, constraint) in &nf {
                match constraint {
                    ColumnConstraint::Range(r) => {
                        let x = table.column(col)?.numeric()?[row];
                        if !r.contains(x) {
                            continue 'rows;
                        }
                    }
                    ColumnConstraint::In(codes) => {
                        let c = table.column(col)?.categorical()?[row];
                        if codes.binary_search(&c).is_err() {
                            continue 'rows;
                        }
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Flattens the conjunction into one constraint per column: numeric
    /// ranges are intersected and categorical IN-sets intersected. This is
    /// the form Verdict's predicate regions (and hence kernel integration)
    /// consume.
    pub fn normal_form(&self) -> Result<BTreeMap<String, ColumnConstraint>> {
        let mut out = BTreeMap::new();
        self.fold_into(&mut out)?;
        Ok(out)
    }

    fn fold_into(&self, out: &mut BTreeMap<String, ColumnConstraint>) -> Result<()> {
        match self {
            Predicate::True => Ok(()),
            Predicate::And(ps) => {
                for p in ps {
                    p.fold_into(out)?;
                }
                Ok(())
            }
            Predicate::NumRange { col, range } => {
                match out.entry(col.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(ColumnConstraint::Range(range.clone()));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                        ColumnConstraint::Range(r) => *r = r.intersect(range),
                        ColumnConstraint::In(_) => {
                            return Err(StorageError::TypeError(format!(
                                "column {col} constrained both as numeric and categorical"
                            )))
                        }
                    },
                }
                Ok(())
            }
            Predicate::CatIn { col, codes } => {
                match out.entry(col.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(ColumnConstraint::In(codes.clone()));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                        ColumnConstraint::In(existing) => {
                            existing.retain(|c| codes.binary_search(c).is_ok());
                        }
                        ColumnConstraint::Range(_) => {
                            return Err(StorageError::TypeError(format!(
                                "column {col} constrained both as numeric and categorical"
                            )))
                        }
                    },
                }
                Ok(())
            }
        }
    }
}

/// Per-column constraint in normal form.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnConstraint {
    /// Intersected numeric interval.
    Range(NumRange),
    /// Intersected categorical code set (sorted).
    In(Vec<u32>),
}

impl Predicate {
    /// Binds the predicate's normal form to a table's column storage for
    /// vectorized batch evaluation: per-column constraints hold direct
    /// `&[f64]` / `&[u32]` slices, so selection runs column-at-a-time over
    /// a row range with no name lookups and no whole-table
    /// [`Predicate::selected_rows`] pre-pass.
    pub fn compile<'t>(&self, table: &'t Table) -> Result<CompiledPredicate<'t>> {
        let mut constraints = Vec::new();
        for (col, constraint) in self.normal_form()? {
            let col_index = table.schema().index_of(&col)?;
            match constraint {
                ColumnConstraint::Range(range) => {
                    let data = table.column_at(col_index).numeric()?;
                    constraints.push(CompiledConstraint::Range {
                        col_index,
                        data,
                        range,
                    });
                }
                ColumnConstraint::In(codes) => {
                    let data = table.column_at(col_index).categorical()?;
                    let bitset = CodeBitset::build(&codes);
                    constraints.push(CompiledConstraint::In {
                        col_index,
                        data,
                        codes,
                        bitset,
                    });
                }
            }
        }
        Ok(CompiledPredicate { constraints })
    }
}

/// A dense membership bitset over allowed dictionary codes, used by the
/// mask kernels to turn IN-set membership into one shift-and-AND per row.
/// Only built for narrow code spaces; wide IN-sets fall back to binary
/// search (identical semantics either way).
struct CodeBitset {
    words: Vec<u64>,
}

impl CodeBitset {
    /// Largest code worth a dense bitset: 4096 codes = 64 words = 512 B.
    const MAX_CODE: u32 = 4095;

    fn build(codes: &[u32]) -> Option<CodeBitset> {
        let max = codes.iter().copied().max()?;
        if max > Self::MAX_CODE {
            return None;
        }
        let mut words = vec![0u64; (max as usize >> 6) + 1];
        for &c in codes {
            words[(c >> 6) as usize] |= 1u64 << (c & 63);
        }
        Some(CodeBitset { words })
    }

    /// Membership test; codes beyond the bitset are absent by definition.
    #[inline]
    fn contains(&self, c: u32) -> u64 {
        let wi = (c >> 6) as usize;
        if wi < self.words.len() {
            self.words[wi] >> (c & 63) & 1
        } else {
            0
        }
    }
}

/// One normal-form constraint bound to its column slice.
enum CompiledConstraint<'t> {
    /// Numeric interval over a `f64` column.
    Range {
        /// Schema index of the column (for zone-map lookups).
        col_index: usize,
        /// The column data.
        data: &'t [f64],
        /// The interval.
        range: NumRange,
    },
    /// Membership over a dictionary-coded column (codes sorted).
    In {
        /// Schema index of the column (for zone-map lookups).
        col_index: usize,
        /// The column data (codes).
        data: &'t [u32],
        /// Allowed codes, sorted.
        codes: Vec<u32>,
        /// Dense membership bitset when the code space is narrow.
        bitset: Option<CodeBitset>,
    },
}

/// A predicate bound to one table for vectorized evaluation.
pub struct CompiledPredicate<'t> {
    constraints: Vec<CompiledConstraint<'t>>,
}

/// How a chunk relates to a predicate according to its zone maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkMatch {
    /// No row in the chunk can match: skip it (≡ an all-zero mask).
    NoRows,
    /// Every row in the chunk matches: dense fast path (≡ an all-one
    /// mask).
    AllRows,
    /// The zones cannot decide; run the mask kernels.
    SomeRows,
}

impl CompiledPredicate<'_> {
    /// Evaluates the predicate at one row.
    #[inline]
    pub fn matches(&self, row: usize) -> bool {
        self.constraints.iter().all(|c| match c {
            CompiledConstraint::Range { data, range, .. } => range.contains(data[row]),
            CompiledConstraint::In { data, codes, .. } => match codes.as_slice() {
                [] => false,
                [only] => data[row] == *only,
                many => many.binary_search(&data[row]).is_ok(),
            },
        })
    }

    /// Fills `out` with the selection bitmap for the rows in `range`:
    /// `out` covers `range.len()` bits and bit `i` reports whether row
    /// `range.start + i` matches. Each conjunct runs as a branch-free
    /// tight loop over its contiguous column slice, building one `u64`
    /// per 64 rows and ANDing it into the mask.
    pub fn fill_mask(&self, range: std::ops::Range<usize>, out: &mut SelectionMask) {
        out.reset_ones(range.len());
        let words = out.words_mut();
        for c in &self.constraints {
            match c {
                CompiledConstraint::Range { data, range: r, .. } => {
                    let seg = &data[range.clone()];
                    match (r.lo_inclusive, r.hi_inclusive) {
                        (true, true) => and_range::<true, true>(words, seg, r.lo, r.hi),
                        (true, false) => and_range::<true, false>(words, seg, r.lo, r.hi),
                        (false, true) => and_range::<false, true>(words, seg, r.lo, r.hi),
                        (false, false) => and_range::<false, false>(words, seg, r.lo, r.hi),
                    }
                }
                CompiledConstraint::In {
                    data,
                    codes,
                    bitset,
                    ..
                } => {
                    let seg = &data[range.clone()];
                    match (codes.as_slice(), bitset) {
                        ([], _) => words.fill(0),
                        ([only], _) => and_eq(words, seg, *only),
                        (_, Some(bits)) => and_in_bitset(words, seg, bits),
                        (many, None) => and_in_search(words, seg, many),
                    }
                }
            }
        }
    }

    /// Classifies chunk `chunk` against the predicate using zone maps
    /// only — no row data is touched. Conservative and sound: `NoRows`
    /// is returned only when provably no row matches, `AllRows` only
    /// when provably every row matches; anything uncertain is
    /// `SomeRows`.
    pub fn classify_chunk(&self, zones: &ZoneMaps, chunk: usize) -> ChunkMatch {
        let mut all = true;
        for c in &self.constraints {
            match c {
                CompiledConstraint::Range {
                    col_index,
                    range: r,
                    ..
                } => {
                    let Some(z) = zones.num_zone(*col_index, chunk) else {
                        return ChunkMatch::SomeRows;
                    };
                    // Disjoint: the whole zone sits below lo or above hi.
                    // An all-NaN chunk has min=+inf/max=-inf and lands
                    // here whenever the range is bounded — sound, since
                    // NaN never matches a range.
                    let below = if r.lo_inclusive {
                        z.max < r.lo
                    } else {
                        z.max <= r.lo
                    };
                    let above = if r.hi_inclusive {
                        z.min > r.hi
                    } else {
                        z.min >= r.hi
                    };
                    if below || above {
                        return ChunkMatch::NoRows;
                    }
                    // Containment: both zone endpoints inside the
                    // interval covers everything between; NaNs break it.
                    if z.has_nan || !r.contains(z.min) || !r.contains(z.max) {
                        all = false;
                    }
                }
                CompiledConstraint::In {
                    col_index, codes, ..
                } => {
                    if codes.is_empty() {
                        return ChunkMatch::NoRows;
                    }
                    let Some(z) = zones.cat_zone(*col_index, chunk) else {
                        return ChunkMatch::SomeRows;
                    };
                    // First allowed code at or above the zone minimum.
                    let lo = codes.partition_point(|&c| c < z.min_code);
                    if lo >= codes.len() || codes[lo] > z.max_code {
                        return ChunkMatch::NoRows;
                    }
                    // Full coverage: `codes` is sorted and unique, so
                    // hitting both zone endpoints exactly `span` apart
                    // means every code in [min, max] is allowed.
                    let span = (z.max_code - z.min_code) as usize;
                    let covered = codes[lo] == z.min_code
                        && lo + span < codes.len()
                        && codes[lo + span] == z.max_code;
                    if !covered {
                        all = false;
                    }
                }
            }
        }
        if all {
            ChunkMatch::AllRows
        } else {
            ChunkMatch::SomeRows
        }
    }

    /// Classifies a whole partition against the predicate using its
    /// partition-level summaries — [`classify_chunk`] lifted one level,
    /// with the same soundness contract. A `NoRows` partition can be
    /// skipped without touching any of its chunks; an `AllRows` one is
    /// provably dense. The summaries must come from a table sharing this
    /// predicate's schema and dictionary code space.
    ///
    /// [`classify_chunk`]: CompiledPredicate::classify_chunk
    pub fn classify_partition(&self, part: &PartitionInfo) -> ChunkMatch {
        if part.rows() == 0 {
            return ChunkMatch::NoRows;
        }
        let mut all = true;
        for c in &self.constraints {
            match c {
                CompiledConstraint::Range {
                    col_index,
                    range: r,
                    ..
                } => {
                    let Some(ColumnSummary::Num { min, max, has_nan }) = part.summary(*col_index)
                    else {
                        // Missing or type-mismatched summary: undecidable.
                        all = false;
                        continue;
                    };
                    // Same disjointness test as the chunk zones; an
                    // all-NaN partition (min=+inf/max=-inf) lands here
                    // for any bounded range.
                    let below = if r.lo_inclusive {
                        *max < r.lo
                    } else {
                        *max <= r.lo
                    };
                    let above = if r.hi_inclusive {
                        *min > r.hi
                    } else {
                        *min >= r.hi
                    };
                    if below || above {
                        return ChunkMatch::NoRows;
                    }
                    if *has_nan || !r.contains(*min) || !r.contains(*max) {
                        all = false;
                    }
                }
                CompiledConstraint::In {
                    col_index, codes, ..
                } => {
                    if codes.is_empty() {
                        return ChunkMatch::NoRows;
                    }
                    let Some(ColumnSummary::Cat { codes: present }) = part.summary(*col_index)
                    else {
                        all = false;
                        continue;
                    };
                    // Unlike chunk zones, the summary holds the exact
                    // code *set*, so membership is decided per code.
                    let mut any = false;
                    let mut covered = true;
                    for p in present {
                        if codes.binary_search(p).is_ok() {
                            any = true;
                        } else {
                            covered = false;
                        }
                    }
                    if !any {
                        return ChunkMatch::NoRows;
                    }
                    if !covered {
                        all = false;
                    }
                }
            }
        }
        if all {
            ChunkMatch::AllRows
        } else {
            ChunkMatch::SomeRows
        }
    }
}

/// ANDs `lo (<|<=) x (<|<=) hi` over `data` into `words`, 64 rows per
/// word. Comparisons become integer bit ops — no per-row branches.
fn and_range<const LO_INC: bool, const HI_INC: bool>(
    words: &mut [u64],
    data: &[f64],
    lo: f64,
    hi: f64,
) {
    for (wi, w) in words.iter_mut().enumerate() {
        let start = wi * 64;
        let end = (start + 64).min(data.len());
        let mut m = 0u64;
        for (bit, &x) in data[start..end].iter().enumerate() {
            let lo_ok = if LO_INC { x >= lo } else { x > lo };
            let hi_ok = if HI_INC { x <= hi } else { x < hi };
            m |= u64::from(lo_ok & hi_ok) << bit;
        }
        *w &= m;
    }
}

/// ANDs `code == only` over `data` into `words`.
fn and_eq(words: &mut [u64], data: &[u32], only: u32) {
    for (wi, w) in words.iter_mut().enumerate() {
        let start = wi * 64;
        let end = (start + 64).min(data.len());
        let mut m = 0u64;
        for (bit, &c) in data[start..end].iter().enumerate() {
            m |= u64::from(c == only) << bit;
        }
        *w &= m;
    }
}

/// ANDs dense-bitset membership over `data` into `words`.
fn and_in_bitset(words: &mut [u64], data: &[u32], bits: &CodeBitset) {
    for (wi, w) in words.iter_mut().enumerate() {
        let start = wi * 64;
        let end = (start + 64).min(data.len());
        let mut m = 0u64;
        for (bit, &c) in data[start..end].iter().enumerate() {
            m |= bits.contains(c) << bit;
        }
        *w &= m;
    }
}

/// Binary-search membership fallback for wide IN-sets.
fn and_in_search(words: &mut [u64], data: &[u32], codes: &[u32]) {
    for (wi, w) in words.iter_mut().enumerate() {
        let start = wi * 64;
        let end = (start + 64).min(data.len());
        let mut m = 0u64;
        for (bit, &c) in data[start..end].iter().enumerate() {
            m |= u64::from(codes.binary_search(&c).is_ok()) << bit;
        }
        *w &= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (w, r, v) in [
            (1.0, "us", 10.0),
            (2.0, "eu", 20.0),
            (3.0, "us", 30.0),
            (4.0, "jp", 40.0),
            (5.0, "eu", 50.0),
        ] {
            t.push_row(vec![w.into(), r.into(), v.into()]).unwrap();
        }
        t
    }

    #[test]
    fn true_matches_all() {
        let t = table();
        assert_eq!(Predicate::True.selected_rows(&t).unwrap().len(), 5);
    }

    #[test]
    fn range_filters_rows() {
        let t = table();
        let p = Predicate::between("week", 2.0, 4.0);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn exclusive_bounds_respected() {
        let t = table();
        let p = Predicate::greater_than("week", 2.0, false);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![2, 3, 4]);
        let p = Predicate::greater_than("week", 2.0, true);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cat_in_filters_rows() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let eu = t.column("region").unwrap().code_of("eu").unwrap();
        let p = Predicate::cat_in("region", vec![us, eu]);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn conjunction_intersects() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let p = Predicate::between("week", 2.0, 5.0).and(Predicate::cat_eq("region", us));
        assert_eq!(p.selected_rows(&t).unwrap(), vec![2]);
    }

    #[test]
    fn and_with_true_simplifies() {
        let p = Predicate::True.and(Predicate::between("week", 0.0, 1.0));
        assert!(matches!(p, Predicate::NumRange { .. }));
    }

    #[test]
    fn normal_form_intersects_ranges() {
        let p =
            Predicate::greater_than("week", 2.0, true).and(Predicate::less_than("week", 4.0, true));
        let nf = p.normal_form().unwrap();
        match nf.get("week").unwrap() {
            ColumnConstraint::Range(r) => {
                assert_eq!(r.lo, 2.0);
                assert_eq!(r.hi, 4.0);
            }
            _ => panic!("expected a range"),
        }
    }

    #[test]
    fn normal_form_intersects_in_sets() {
        let p = Predicate::cat_in("region", vec![0, 1, 2])
            .and(Predicate::cat_in("region", vec![1, 2, 3]));
        let nf = p.normal_form().unwrap();
        assert_eq!(nf.get("region"), Some(&ColumnConstraint::In(vec![1, 2])));
    }

    #[test]
    fn mixed_constraint_types_error() {
        let p = Predicate::between("x", 0.0, 1.0).and(Predicate::cat_eq("x", 1));
        assert!(p.normal_form().is_err());
    }

    #[test]
    fn empty_intersection_detected() {
        let r = NumRange::closed(0.0, 1.0).intersect(&NumRange::closed(2.0, 3.0));
        assert!(r.is_empty());
        let half_open = NumRange {
            lo: 1.0,
            hi: 1.0,
            lo_inclusive: true,
            hi_inclusive: false,
        };
        assert!(half_open.is_empty());
        assert!(!NumRange::closed(1.0, 1.0).is_empty());
    }

    #[test]
    fn compiled_matches_agree_with_eval_row() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let eu = t.column("region").unwrap().code_of("eu").unwrap();
        let preds = [
            Predicate::True,
            Predicate::between("week", 2.0, 4.0),
            Predicate::cat_in("region", vec![us, eu]),
            Predicate::cat_in("region", vec![]),
            Predicate::between("week", 2.0, 5.0).and(Predicate::cat_eq("region", us)),
        ];
        for p in &preds {
            let c = p.compile(&t).unwrap();
            for row in 0..t.num_rows() {
                assert_eq!(
                    c.matches(row),
                    p.eval_row(&t, row).unwrap(),
                    "{p:?} row {row}"
                );
            }
        }
    }

    #[test]
    fn fill_mask_agrees_with_per_row_matches() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let eu = t.column("region").unwrap().code_of("eu").unwrap();
        let preds = [
            Predicate::True,
            Predicate::between("week", 2.0, 5.0).and(Predicate::cat_eq("region", us)),
            Predicate::cat_in("region", vec![us, eu]),
            Predicate::cat_in("region", vec![]),
            Predicate::greater_than("week", 2.0, false),
        ];
        let mut mask = SelectionMask::new();
        for p in &preds {
            let c = p.compile(&t).unwrap();
            for (start, end) in [(0, 5), (1, 4), (3, 3), (4, 5)] {
                c.fill_mask(start..end, &mut mask);
                assert_eq!(mask.len(), end - start);
                for i in 0..mask.len() {
                    assert_eq!(
                        mask.get(i),
                        c.matches(start + i),
                        "{p:?} range {start}..{end} offset {i}"
                    );
                }
            }
        }
    }

    /// A bigger table exercising whole 64-row mask words, wide IN-set
    /// fallback, and NaN data.
    fn wide_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("x"),
            ColumnDef::categorical_dimension("c"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..300usize {
            let x = if i % 97 == 0 {
                f64::NAN
            } else {
                (i % 50) as f64
            };
            t.push_row(vec![x.into(), format!("k{}", i % 40).as_str().into()])
                .unwrap();
        }
        t
    }

    #[test]
    fn fill_mask_matches_per_row_on_word_boundaries() {
        let t = wide_table();
        let p = Predicate::between("x", 5.0, 30.0)
            .and(Predicate::cat_in("c", (0..20).step_by(3).collect()));
        let c = p.compile(&t).unwrap();
        let mut mask = SelectionMask::new();
        for (start, end) in [(0, 300), (1, 129), (63, 65), (64, 128), (190, 300)] {
            c.fill_mask(start..end, &mut mask);
            for i in 0..mask.len() {
                assert_eq!(
                    mask.get(i),
                    c.matches(start + i),
                    "rows {start}..{end} @ {i}"
                );
            }
        }
    }

    #[test]
    fn code_bitset_and_search_agree() {
        let codes: Vec<u32> = vec![1, 5, 7, 130, 4000];
        let bits = CodeBitset::build(&codes).expect("narrow enough");
        for c in 0..=4100u32 {
            assert_eq!(
                bits.contains(c) == 1,
                codes.binary_search(&c).is_ok(),
                "code {c}"
            );
        }
        // Beyond the cap there is no bitset; the search path serves.
        assert!(CodeBitset::build(&[0, 5000]).is_none());
        assert!(CodeBitset::build(&[]).is_none());
    }

    #[test]
    fn classify_chunk_is_sound_and_prunes() {
        // 3000 rows ordered by x: chunk 0 holds x∈[0,1023], chunk 1
        // x∈[1024,2047], chunk 2 x∈[2048,2999].
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("x"),
            ColumnDef::categorical_dimension("c"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..3000usize {
            t.push_row(vec![
                (i as f64).into(),
                format!("k{}", i / 1500).as_str().into(),
            ])
            .unwrap();
        }
        let zones = t.zone_maps();
        let p = Predicate::between("x", 1100.0, 1200.0);
        let c = p.compile(&t).unwrap();
        assert_eq!(c.classify_chunk(&zones, 0), ChunkMatch::NoRows);
        assert_eq!(c.classify_chunk(&zones, 1), ChunkMatch::SomeRows);
        assert_eq!(c.classify_chunk(&zones, 2), ChunkMatch::NoRows);

        // A range covering a whole chunk classifies AllRows.
        let p = Predicate::between("x", 1024.0, 2047.0);
        let c = p.compile(&t).unwrap();
        assert_eq!(c.classify_chunk(&zones, 1), ChunkMatch::AllRows);
        // Exclusive upper bound at the zone max is not full coverage.
        let p = Predicate::greater_than("x", 1024.0, true)
            .and(Predicate::less_than("x", 2047.0, false));
        let c = p.compile(&t).unwrap();
        assert_eq!(c.classify_chunk(&zones, 1), ChunkMatch::SomeRows);

        // Categorical: chunk 0 is all "k0"; chunk 2 all "k1".
        let k0 = t.column("c").unwrap().code_of("k0").unwrap();
        let k1 = t.column("c").unwrap().code_of("k1").unwrap();
        let c = Predicate::cat_eq("c", k0).compile(&t).unwrap();
        assert_eq!(c.classify_chunk(&zones, 0), ChunkMatch::AllRows);
        assert_eq!(c.classify_chunk(&zones, 2), ChunkMatch::NoRows);
        let c = Predicate::cat_in("c", vec![k0, k1]).compile(&t).unwrap();
        assert_eq!(c.classify_chunk(&zones, 1), ChunkMatch::AllRows);
        let c = Predicate::cat_in("c", vec![]).compile(&t).unwrap();
        assert_eq!(c.classify_chunk(&zones, 0), ChunkMatch::NoRows);

        // Every classification agrees with brute-force row evaluation.
        use crate::chunk::{chunk_segments, CHUNK_ROWS};
        let preds = [
            Predicate::between("x", 1100.0, 1200.0),
            Predicate::between("x", 1024.0, 2047.0),
            Predicate::cat_eq("c", k0),
            Predicate::True,
        ];
        for p in &preds {
            let c = p.compile(&t).unwrap();
            for (chunk, seg) in chunk_segments(0..t.num_rows()) {
                assert_eq!(chunk, seg.start / CHUNK_ROWS);
                let matched = seg.clone().filter(|&r| c.matches(r)).count();
                match c.classify_chunk(&zones, chunk) {
                    ChunkMatch::NoRows => assert_eq!(matched, 0, "{p:?} chunk {chunk}"),
                    ChunkMatch::AllRows => assert_eq!(matched, seg.len(), "{p:?} chunk {chunk}"),
                    ChunkMatch::SomeRows => {}
                }
            }
        }
    }

    #[test]
    fn eval_row_matches_selected_rows() {
        let t = table();
        let p = Predicate::between("week", 2.0, 4.0);
        let selected = p.selected_rows(&t).unwrap();
        for row in 0..t.num_rows() {
            assert_eq!(
                p.eval_row(&t, row).unwrap(),
                selected.contains(&row),
                "row {row}"
            );
        }
    }
}
