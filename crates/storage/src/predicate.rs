//! Conjunctive selection predicates.
//!
//! Verdict's supported `where` clauses (paper §2.2) are conjunctions of
//! equality/inequality comparisons over dimension attributes, including the
//! `in` operator; disjunctions and textual `LIKE` filters are unsupported.
//! [`Predicate`] mirrors exactly that class: a conjunction of numeric range
//! constraints and categorical membership constraints.

use std::collections::BTreeMap;

use crate::{Result, StorageError, Table};

/// A numeric interval constraint with per-bound inclusivity.
#[derive(Debug, Clone, PartialEq)]
pub struct NumRange {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
    /// Whether `lo` itself satisfies the constraint.
    pub lo_inclusive: bool,
    /// Whether `hi` itself satisfies the constraint.
    pub hi_inclusive: bool,
}

impl NumRange {
    /// The unconstrained interval `(-inf, +inf)`.
    pub fn unbounded() -> Self {
        NumRange {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            lo_inclusive: true,
            hi_inclusive: true,
        }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        NumRange {
            lo,
            hi,
            lo_inclusive: true,
            hi_inclusive: true,
        }
    }

    /// Tests a value against the interval.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        let lo_ok = if self.lo_inclusive {
            x >= self.lo
        } else {
            x > self.lo
        };
        let hi_ok = if self.hi_inclusive {
            x <= self.hi
        } else {
            x < self.hi
        };
        lo_ok && hi_ok
    }

    /// Intersects two intervals (tightest bounds win).
    pub fn intersect(&self, other: &NumRange) -> NumRange {
        let (lo, lo_inclusive) = match self.lo.partial_cmp(&other.lo) {
            Some(std::cmp::Ordering::Greater) => (self.lo, self.lo_inclusive),
            Some(std::cmp::Ordering::Less) => (other.lo, other.lo_inclusive),
            _ => (self.lo, self.lo_inclusive && other.lo_inclusive),
        };
        let (hi, hi_inclusive) = match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Less) => (self.hi, self.hi_inclusive),
            Some(std::cmp::Ordering::Greater) => (other.hi, other.hi_inclusive),
            _ => (self.hi, self.hi_inclusive && other.hi_inclusive),
        };
        NumRange {
            lo,
            hi,
            lo_inclusive,
            hi_inclusive,
        }
    }

    /// Whether no value can satisfy the interval.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && !(self.lo_inclusive && self.hi_inclusive))
    }
}

/// A conjunctive predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Conjunction of sub-predicates.
    And(Vec<Predicate>),
    /// `lo (<|<=) column (<|<=) hi` over a numeric dimension.
    NumRange {
        /// Column name.
        col: String,
        /// Interval constraint.
        range: NumRange,
    },
    /// `column IN (codes)` over a categorical dimension (equality is a
    /// single-element set).
    CatIn {
        /// Column name.
        col: String,
        /// Allowed dictionary codes (sorted, deduplicated on construction).
        codes: Vec<u32>,
    },
}

impl Predicate {
    /// `col BETWEEN lo AND hi` (closed interval).
    pub fn between(col: &str, lo: f64, hi: f64) -> Predicate {
        Predicate::NumRange {
            col: col.to_owned(),
            range: NumRange::closed(lo, hi),
        }
    }

    /// `col > bound` (exclusive) or `col >= bound` (inclusive).
    pub fn greater_than(col: &str, bound: f64, inclusive: bool) -> Predicate {
        Predicate::NumRange {
            col: col.to_owned(),
            range: NumRange {
                lo: bound,
                hi: f64::INFINITY,
                lo_inclusive: inclusive,
                hi_inclusive: true,
            },
        }
    }

    /// `col < bound` (exclusive) or `col <= bound` (inclusive).
    pub fn less_than(col: &str, bound: f64, inclusive: bool) -> Predicate {
        Predicate::NumRange {
            col: col.to_owned(),
            range: NumRange {
                lo: f64::NEG_INFINITY,
                hi: bound,
                lo_inclusive: true,
                hi_inclusive: inclusive,
            },
        }
    }

    /// `col = code` for a categorical dimension.
    pub fn cat_eq(col: &str, code: u32) -> Predicate {
        Predicate::CatIn {
            col: col.to_owned(),
            codes: vec![code],
        }
    }

    /// `col IN (codes)` for a categorical dimension.
    pub fn cat_in(col: &str, mut codes: Vec<u32>) -> Predicate {
        codes.sort_unstable();
        codes.dedup();
        Predicate::CatIn {
            col: col.to_owned(),
            codes,
        }
    }

    /// Conjunction of `self` and `other`.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Evaluates the predicate at one row.
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval_row(table, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::NumRange { col, range } => {
                let x = table.column(col)?.numeric()?[row];
                range.contains(x)
            }
            Predicate::CatIn { col, codes } => {
                let c = table.column(col)?.categorical()?[row];
                codes.binary_search(&c).is_ok()
            }
        })
    }

    /// Returns the indices of matching rows.
    pub fn selected_rows(&self, table: &Table) -> Result<Vec<usize>> {
        let nf = self.normal_form()?;
        let mut out = Vec::new();
        'rows: for row in 0..table.num_rows() {
            for (col, constraint) in &nf {
                match constraint {
                    ColumnConstraint::Range(r) => {
                        let x = table.column(col)?.numeric()?[row];
                        if !r.contains(x) {
                            continue 'rows;
                        }
                    }
                    ColumnConstraint::In(codes) => {
                        let c = table.column(col)?.categorical()?[row];
                        if codes.binary_search(&c).is_err() {
                            continue 'rows;
                        }
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Flattens the conjunction into one constraint per column: numeric
    /// ranges are intersected and categorical IN-sets intersected. This is
    /// the form Verdict's predicate regions (and hence kernel integration)
    /// consume.
    pub fn normal_form(&self) -> Result<BTreeMap<String, ColumnConstraint>> {
        let mut out = BTreeMap::new();
        self.fold_into(&mut out)?;
        Ok(out)
    }

    fn fold_into(&self, out: &mut BTreeMap<String, ColumnConstraint>) -> Result<()> {
        match self {
            Predicate::True => Ok(()),
            Predicate::And(ps) => {
                for p in ps {
                    p.fold_into(out)?;
                }
                Ok(())
            }
            Predicate::NumRange { col, range } => {
                match out.entry(col.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(ColumnConstraint::Range(range.clone()));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                        ColumnConstraint::Range(r) => *r = r.intersect(range),
                        ColumnConstraint::In(_) => {
                            return Err(StorageError::TypeError(format!(
                                "column {col} constrained both as numeric and categorical"
                            )))
                        }
                    },
                }
                Ok(())
            }
            Predicate::CatIn { col, codes } => {
                match out.entry(col.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(ColumnConstraint::In(codes.clone()));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                        ColumnConstraint::In(existing) => {
                            existing.retain(|c| codes.binary_search(c).is_ok());
                        }
                        ColumnConstraint::Range(_) => {
                            return Err(StorageError::TypeError(format!(
                                "column {col} constrained both as numeric and categorical"
                            )))
                        }
                    },
                }
                Ok(())
            }
        }
    }
}

/// Per-column constraint in normal form.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnConstraint {
    /// Intersected numeric interval.
    Range(NumRange),
    /// Intersected categorical code set (sorted).
    In(Vec<u32>),
}

impl Predicate {
    /// Binds the predicate's normal form to a table's column storage for
    /// vectorized batch evaluation: per-column constraints hold direct
    /// `&[f64]` / `&[u32]` slices, so selection runs column-at-a-time over
    /// a row range with no name lookups and no whole-table
    /// [`Predicate::selected_rows`] pre-pass.
    pub fn compile<'t>(&self, table: &'t Table) -> Result<CompiledPredicate<'t>> {
        let mut constraints = Vec::new();
        for (col, constraint) in self.normal_form()? {
            match constraint {
                ColumnConstraint::Range(range) => {
                    let data = table.column(&col)?.numeric()?;
                    constraints.push(CompiledConstraint::Range { data, range });
                }
                ColumnConstraint::In(codes) => {
                    let data = table.column(&col)?.categorical()?;
                    constraints.push(CompiledConstraint::In { data, codes });
                }
            }
        }
        Ok(CompiledPredicate { constraints })
    }
}

/// One normal-form constraint bound to its column slice.
enum CompiledConstraint<'t> {
    /// Numeric interval over a `f64` column.
    Range {
        /// The column data.
        data: &'t [f64],
        /// The interval.
        range: NumRange,
    },
    /// Membership over a dictionary-coded column (codes sorted).
    In {
        /// The column data (codes).
        data: &'t [u32],
        /// Allowed codes, sorted.
        codes: Vec<u32>,
    },
}

/// A predicate bound to one table for vectorized evaluation.
pub struct CompiledPredicate<'t> {
    constraints: Vec<CompiledConstraint<'t>>,
}

impl CompiledPredicate<'_> {
    /// Evaluates the predicate at one row.
    #[inline]
    pub fn matches(&self, row: usize) -> bool {
        self.constraints.iter().all(|c| match c {
            CompiledConstraint::Range { data, range } => range.contains(data[row]),
            CompiledConstraint::In { data, codes } => match codes.as_slice() {
                [] => false,
                [only] => data[row] == *only,
                many => many.binary_search(&data[row]).is_ok(),
            },
        })
    }

    /// Fills `out` with the selection bitmap for the rows in `range`,
    /// column-at-a-time: `out` is resized to `range.len()` and `out[i]`
    /// reports whether row `range.start + i` matches. Each constraint
    /// sweeps its own contiguous column slice, which the compiler can
    /// auto-vectorize; rows rejected by an earlier constraint are still
    /// touched but cost one AND.
    pub fn fill_matches(&self, range: std::ops::Range<usize>, out: &mut Vec<bool>) {
        out.clear();
        out.resize(range.len(), true);
        for c in &self.constraints {
            match c {
                CompiledConstraint::Range { data, range: r } => {
                    for (flag, &x) in out.iter_mut().zip(&data[range.clone()]) {
                        *flag &= r.contains(x);
                    }
                }
                CompiledConstraint::In { data, codes } => match codes.as_slice() {
                    [] => out.iter_mut().for_each(|f| *f = false),
                    [only] => {
                        for (flag, &c) in out.iter_mut().zip(&data[range.clone()]) {
                            *flag &= c == *only;
                        }
                    }
                    many => {
                        for (flag, &c) in out.iter_mut().zip(&data[range.clone()]) {
                            *flag &= many.binary_search(&c).is_ok();
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (w, r, v) in [
            (1.0, "us", 10.0),
            (2.0, "eu", 20.0),
            (3.0, "us", 30.0),
            (4.0, "jp", 40.0),
            (5.0, "eu", 50.0),
        ] {
            t.push_row(vec![w.into(), r.into(), v.into()]).unwrap();
        }
        t
    }

    #[test]
    fn true_matches_all() {
        let t = table();
        assert_eq!(Predicate::True.selected_rows(&t).unwrap().len(), 5);
    }

    #[test]
    fn range_filters_rows() {
        let t = table();
        let p = Predicate::between("week", 2.0, 4.0);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn exclusive_bounds_respected() {
        let t = table();
        let p = Predicate::greater_than("week", 2.0, false);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![2, 3, 4]);
        let p = Predicate::greater_than("week", 2.0, true);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cat_in_filters_rows() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let eu = t.column("region").unwrap().code_of("eu").unwrap();
        let p = Predicate::cat_in("region", vec![us, eu]);
        assert_eq!(p.selected_rows(&t).unwrap(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn conjunction_intersects() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let p = Predicate::between("week", 2.0, 5.0).and(Predicate::cat_eq("region", us));
        assert_eq!(p.selected_rows(&t).unwrap(), vec![2]);
    }

    #[test]
    fn and_with_true_simplifies() {
        let p = Predicate::True.and(Predicate::between("week", 0.0, 1.0));
        assert!(matches!(p, Predicate::NumRange { .. }));
    }

    #[test]
    fn normal_form_intersects_ranges() {
        let p =
            Predicate::greater_than("week", 2.0, true).and(Predicate::less_than("week", 4.0, true));
        let nf = p.normal_form().unwrap();
        match nf.get("week").unwrap() {
            ColumnConstraint::Range(r) => {
                assert_eq!(r.lo, 2.0);
                assert_eq!(r.hi, 4.0);
            }
            _ => panic!("expected a range"),
        }
    }

    #[test]
    fn normal_form_intersects_in_sets() {
        let p = Predicate::cat_in("region", vec![0, 1, 2])
            .and(Predicate::cat_in("region", vec![1, 2, 3]));
        let nf = p.normal_form().unwrap();
        assert_eq!(nf.get("region"), Some(&ColumnConstraint::In(vec![1, 2])));
    }

    #[test]
    fn mixed_constraint_types_error() {
        let p = Predicate::between("x", 0.0, 1.0).and(Predicate::cat_eq("x", 1));
        assert!(p.normal_form().is_err());
    }

    #[test]
    fn empty_intersection_detected() {
        let r = NumRange::closed(0.0, 1.0).intersect(&NumRange::closed(2.0, 3.0));
        assert!(r.is_empty());
        let half_open = NumRange {
            lo: 1.0,
            hi: 1.0,
            lo_inclusive: true,
            hi_inclusive: false,
        };
        assert!(half_open.is_empty());
        assert!(!NumRange::closed(1.0, 1.0).is_empty());
    }

    #[test]
    fn compiled_matches_agree_with_eval_row() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let eu = t.column("region").unwrap().code_of("eu").unwrap();
        let preds = [
            Predicate::True,
            Predicate::between("week", 2.0, 4.0),
            Predicate::cat_in("region", vec![us, eu]),
            Predicate::cat_in("region", vec![]),
            Predicate::between("week", 2.0, 5.0).and(Predicate::cat_eq("region", us)),
        ];
        for p in &preds {
            let c = p.compile(&t).unwrap();
            for row in 0..t.num_rows() {
                assert_eq!(
                    c.matches(row),
                    p.eval_row(&t, row).unwrap(),
                    "{p:?} row {row}"
                );
            }
        }
    }

    #[test]
    fn fill_matches_agrees_with_per_row_matches() {
        let t = table();
        let us = t.column("region").unwrap().code_of("us").unwrap();
        let p = Predicate::between("week", 2.0, 5.0).and(Predicate::cat_eq("region", us));
        let c = p.compile(&t).unwrap();
        let mut buf = Vec::new();
        for (start, end) in [(0, 5), (1, 4), (3, 3), (4, 5)] {
            c.fill_matches(start..end, &mut buf);
            assert_eq!(buf.len(), end - start);
            for (i, &flag) in buf.iter().enumerate() {
                assert_eq!(
                    flag,
                    c.matches(start + i),
                    "range {start}..{end} offset {i}"
                );
            }
        }
    }

    #[test]
    fn eval_row_matches_selected_rows() {
        let t = table();
        let p = Predicate::between("week", 2.0, 4.0);
        let selected = p.selected_rows(&t).unwrap();
        for row in 0..t.num_rows() {
            assert_eq!(
                p.eval_row(&t, row).unwrap(),
                selected.contains(&row),
                "row {row}"
            );
        }
    }
}
