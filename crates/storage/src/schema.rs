//! Table schemas with the paper's dimension/measure attribute split.

use crate::{Result, StorageError};

/// Physical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// `f64` storage.
    Numeric,
    /// Dictionary-encoded `u32` storage.
    Categorical,
}

/// Logical attribute role (paper §3.1).
///
/// Dimension attributes `A1..Al` may appear in selection predicates and
/// group-by clauses but never inside aggregate functions; measure attributes
/// `A(l+1)..Am` are numeric and may be aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributeRole {
    /// Filterable/groupable attribute.
    Dimension,
    /// Aggregatable attribute (always numeric).
    Measure,
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (unique within the schema).
    pub name: String,
    /// Physical type.
    pub ty: ColumnType,
    /// Logical role.
    pub role: AttributeRole,
}

impl ColumnDef {
    /// Numeric dimension column (e.g. a timestamp or price filterable range).
    pub fn numeric_dimension(name: &str) -> Self {
        ColumnDef {
            name: name.to_owned(),
            ty: ColumnType::Numeric,
            role: AttributeRole::Dimension,
        }
    }

    /// Categorical dimension column.
    pub fn categorical_dimension(name: &str) -> Self {
        ColumnDef {
            name: name.to_owned(),
            ty: ColumnType::Categorical,
            role: AttributeRole::Dimension,
        }
    }

    /// Numeric measure column.
    pub fn measure(name: &str) -> Self {
        ColumnDef {
            name: name.to_owned(),
            ty: ColumnType::Numeric,
            role: AttributeRole::Measure,
        }
    }
}

/// Ordered collection of column definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate column names and non-numeric
    /// measures.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if c.role == AttributeRole::Measure && c.ty != ColumnType::Numeric {
                return Err(StorageError::SchemaMismatch(format!(
                    "measure column {} must be numeric",
                    c.name
                )));
            }
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::SchemaMismatch(format!(
                    "duplicate column name {}",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All column definitions in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// Definition of a column by name.
    pub fn column(&self, name: &str) -> Result<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Names of all dimension columns.
    pub fn dimension_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.role == AttributeRole::Dimension)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Names of all measure columns.
    pub fn measure_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.role == AttributeRole::Measure)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Returns a new schema that appends the columns of `other`, prefixing
    /// clashing names with `prefix`. Used by denormalizing joins.
    pub fn concat(&self, other: &Schema, prefix: &str) -> Result<Schema> {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            let name = if cols.iter().any(|p| p.name == c.name) {
                format!("{prefix}{}", c.name)
            } else {
                c.name.clone()
            };
            cols.push(ColumnDef {
                name,
                ty: c.ty,
                role: c.role,
            });
        }
        Schema::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("revenue"),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_lookup() {
        let s = sample();
        assert_eq!(s.index_of("region").unwrap(), 1);
        assert_eq!(s.column("revenue").unwrap().role, AttributeRole::Measure);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let r = Schema::new(vec![ColumnDef::measure("x"), ColumnDef::measure("x")]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_categorical_measure() {
        let r = Schema::new(vec![ColumnDef {
            name: "bad".into(),
            ty: ColumnType::Categorical,
            role: AttributeRole::Measure,
        }]);
        assert!(r.is_err());
    }

    #[test]
    fn role_partitions() {
        let s = sample();
        assert_eq!(s.dimension_names(), vec!["week", "region"]);
        assert_eq!(s.measure_names(), vec!["revenue"]);
    }

    #[test]
    fn concat_prefixes_clashes() {
        let a = sample();
        let b = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::measure("cost"),
        ])
        .unwrap();
        let c = a.concat(&b, "d_").unwrap();
        assert_eq!(c.len(), 5);
        assert!(c.index_of("d_week").is_ok());
        assert!(c.index_of("cost").is_ok());
    }
}
