//! Shared-scan building blocks: group enumeration and row → group mapping.
//!
//! The shared-scan executor answers every cell of a `GROUP BY` query from
//! one pass over the sample. That pass needs two things from the storage
//! layer besides predicate evaluation ([`crate::predicate::CompiledPredicate`]):
//!
//! - [`distinct_group_keys`]: enumerate the group keys present in the
//!   (filtered) table in one pass, without running any aggregate — the
//!   executor previously abused `eval_group_by(.., Count)` for this;
//! - [`GroupIndexer`]: map each row to the index of its group key in that
//!   enumeration, so a single scan can route a row's contribution to the
//!   right accumulator cell.
//!
//! Both order groups exactly like [`crate::aggregate::eval_group_by`]
//! (key-sorted under the same total order), so result rows keep their
//! historical ordering.

use std::collections::{BTreeSet, HashMap};

use crate::aggregate::OrdValue;
use crate::{Column, GroupKey, Predicate, Result, StorageError, Table, Value};

/// Enumerates the distinct group keys of `group_cols` among the rows of
/// `table` matching `predicate`, sorted by key. One pass, no aggregate
/// machinery, no whole-table row-index materialization.
pub fn distinct_group_keys(
    table: &Table,
    predicate: &Predicate,
    group_cols: &[String],
) -> Result<Vec<GroupKey>> {
    let pred = predicate.compile(table)?;
    let cols: Vec<&Column> = group_cols
        .iter()
        .map(|c| table.column(c))
        .collect::<Result<_>>()?;
    let mut keys: BTreeSet<Vec<OrdValue>> = BTreeSet::new();
    for row in 0..table.num_rows() {
        if !pred.matches(row) {
            continue;
        }
        // Canonicalize -0.0 to 0.0: the two zeros are equal under the
        // group-equality predicate, so enumerating them as two keys would
        // produce two result rows claiming the same rows.
        let key: Vec<OrdValue> = cols
            .iter()
            .map(|c| match c.get(row) {
                Value::Num(v) => OrdValue(Value::Num(if v == 0.0 { 0.0 } else { v })),
                other => OrdValue(other),
            })
            .collect();
        keys.insert(key);
    }
    Ok(keys
        .into_iter()
        .map(|k| k.into_iter().map(|v| v.0).collect())
        .collect())
}

/// Incremental [`distinct_group_keys`]: accumulates the distinct group
/// keys of many table fragments observed one at a time, in any order.
///
/// The out-of-core path cannot hand [`distinct_group_keys`] one resident
/// table — segments are faulted in one at a time under the memory budget.
/// Feeding every segment (and the ingest tail) through
/// [`GroupKeyCollector::observe`] yields exactly the keys the one-pass
/// enumeration would have found on the fully-resident sample, in the
/// same key-sorted order: the accumulator is the same canonicalized
/// `BTreeSet`, and set union is order-insensitive.
pub struct GroupKeyCollector {
    group_cols: Vec<String>,
    keys: BTreeSet<Vec<OrdValue>>,
}

impl GroupKeyCollector {
    /// A collector over the named group columns.
    pub fn new(group_cols: &[String]) -> Self {
        GroupKeyCollector {
            group_cols: group_cols.to_vec(),
            keys: BTreeSet::new(),
        }
    }

    /// Folds in the keys of `fragment`'s rows matching `predicate`.
    pub fn observe(&mut self, fragment: &Table, predicate: &Predicate) -> Result<()> {
        let pred = predicate.compile(fragment)?;
        let cols: Vec<&Column> = self
            .group_cols
            .iter()
            .map(|c| fragment.column(c))
            .collect::<Result<_>>()?;
        for row in 0..fragment.num_rows() {
            if !pred.matches(row) {
                continue;
            }
            // Same -0.0 canonicalization as `distinct_group_keys`.
            let key: Vec<OrdValue> = cols
                .iter()
                .map(|c| match c.get(row) {
                    Value::Num(v) => OrdValue(Value::Num(if v == 0.0 { 0.0 } else { v })),
                    other => OrdValue(other),
                })
                .collect();
            self.keys.insert(key);
        }
        Ok(())
    }

    /// The accumulated keys, sorted exactly like [`distinct_group_keys`].
    pub fn finish(self) -> Vec<GroupKey> {
        self.keys
            .into_iter()
            .map(|k| k.into_iter().map(|v| v.0).collect())
            .collect()
    }
}

/// Maps rows to group indices during a shared scan.
///
/// Built once per query from the group columns and the enumerated group
/// keys; [`GroupIndexer::group_of`] then resolves a row to the index of
/// its key in O(columns) with one hash lookup, instead of re-evaluating a
/// per-group equality predicate for every (row × group) pair.
pub struct GroupIndexer<'t> {
    cols: Vec<GroupCol<'t>>,
    /// Schema indices of the group columns, aligned with `cols` (lets the
    /// chunked scan find per-chunk artifacts like packed codes).
    col_indices: Vec<usize>,
    /// Key parts (numeric bits / categorical codes) → group index. The
    /// overwhelmingly common single-column `GROUP BY` gets a scalar-keyed
    /// map so the per-row lookup allocates nothing.
    map: KeyMap,
    /// Dense code → group-index table for a single categorical group
    /// column with a narrow dictionary: `lut[code]` is the group index or
    /// [`GroupIndexer::NO_GROUP`]. Replaces the per-row hash lookup in
    /// the chunked kernel's hottest loop.
    lut: Option<Vec<u32>>,
}

enum KeyMap {
    One(HashMap<u64, usize>),
    Many(HashMap<Vec<u64>, usize>),
}

enum GroupCol<'t> {
    Num(&'t [f64]),
    Cat(&'t [u32]),
}

/// Canonical key part for one row's group value: numeric values by
/// IEEE-754 bits (`-0.0` folded into `0.0` so the two equal zeros land in
/// one group), categorical values by code. `None` for numeric NaN: under
/// the group-equality predicate (`col BETWEEN v AND v`) a NaN never
/// equals anything, so a NaN row belongs to no group.
fn key_part(col: &GroupCol<'_>, row: usize) -> Option<u64> {
    match col {
        GroupCol::Num(data) => {
            let x = data[row];
            if x.is_nan() {
                None
            } else {
                Some((if x == 0.0 { 0.0f64 } else { x }).to_bits())
            }
        }
        GroupCol::Cat(data) => Some(u64::from(data[row])),
    }
}

impl<'t> GroupIndexer<'t> {
    /// Binds `group_cols` of `table` and indexes `keys` (as returned by
    /// [`distinct_group_keys`]) by position. A key whose label or type
    /// does not fit the column is an error; duplicate keys keep the first
    /// position.
    pub fn new(table: &'t Table, group_cols: &[String], keys: &[GroupKey]) -> Result<Self> {
        let mut cols = Vec::with_capacity(group_cols.len());
        let mut col_indices = Vec::with_capacity(group_cols.len());
        for name in group_cols {
            let col = table.column(name)?;
            col_indices.push(table.schema().index_of(name)?);
            cols.push(match col {
                Column::Numeric(_) => GroupCol::Num(col.numeric()?),
                Column::Categorical { .. } => GroupCol::Cat(col.categorical()?),
            });
        }
        // `None` marks a key no row can ever match (NaN numeric value or
        // an unknown categorical label): it gets no map entry, so its
        // cells stay empty — exactly what the per-snippet equality
        // predicate produces for such keys.
        let parts_of_key = |key: &GroupKey| -> Result<Option<Vec<u64>>> {
            let mut parts = Vec::with_capacity(key.len());
            for (value, (col, name)) in key.iter().zip(cols.iter().zip(group_cols.iter())) {
                let part = match (col, value) {
                    (GroupCol::Num(_), Value::Num(v)) => {
                        if v.is_nan() {
                            return Ok(None);
                        }
                        (if *v == 0.0 { 0.0f64 } else { *v }).to_bits()
                    }
                    (GroupCol::Cat(_), Value::Cat(c)) => u64::from(*c),
                    (GroupCol::Cat(_), Value::Str(s)) => match table.column(name)?.code_of(s) {
                        Some(c) => u64::from(c),
                        None => return Ok(None),
                    },
                    _ => {
                        return Err(StorageError::TypeError(format!(
                            "group value {value} does not match column {name}"
                        )))
                    }
                };
                parts.push(part);
            }
            Ok(Some(parts))
        };
        let mut map = if group_cols.len() == 1 {
            KeyMap::One(HashMap::with_capacity(keys.len()))
        } else {
            KeyMap::Many(HashMap::with_capacity(keys.len()))
        };
        for (gi, key) in keys.iter().enumerate() {
            if key.len() != group_cols.len() {
                return Err(StorageError::SchemaMismatch(format!(
                    "group key arity {} does not match {} group columns",
                    key.len(),
                    group_cols.len()
                )));
            }
            let Some(parts) = parts_of_key(key)? else {
                continue;
            };
            match &mut map {
                KeyMap::One(m) => {
                    m.entry(parts[0]).or_insert(gi);
                }
                KeyMap::Many(m) => {
                    m.entry(parts).or_insert(gi);
                }
            }
        }
        let lut = Self::build_lut(&cols, &map);
        Ok(GroupIndexer {
            cols,
            col_indices,
            map,
            lut,
        })
    }

    /// Sentinel group index in [`GroupIndexer::fill_groups`] output and
    /// the dense LUT: the row belongs to no indexed group.
    pub const NO_GROUP: u32 = u32::MAX;

    /// Largest dictionary code worth a dense LUT (256 KiB of `u32`).
    const LUT_MAX_CODE: u64 = 1 << 16;

    fn build_lut(cols: &[GroupCol<'_>], map: &KeyMap) -> Option<Vec<u32>> {
        let (KeyMap::One(m), [GroupCol::Cat(_)]) = (map, cols) else {
            return None;
        };
        let max = m.keys().copied().max().unwrap_or(0);
        if max >= Self::LUT_MAX_CODE || m.values().any(|&gi| gi >= Self::NO_GROUP as usize) {
            return None;
        }
        let mut lut = vec![Self::NO_GROUP; max as usize + 1];
        for (&code, &gi) in m {
            lut[code as usize] = gi as u32;
        }
        Some(lut)
    }

    /// The group index of `row`, or `None` when the row's key was not
    /// among the indexed keys (e.g. groups dropped by the `N_max` cap, or
    /// a NaN group value, which equals no key).
    #[inline]
    pub fn group_of(&self, row: usize) -> Option<usize> {
        match &self.map {
            KeyMap::One(m) => m.get(&key_part(&self.cols[0], row)?).copied(),
            KeyMap::Many(m) => {
                let parts: Vec<u64> = self
                    .cols
                    .iter()
                    .map(|c| key_part(c, row))
                    .collect::<Option<_>>()?;
                m.get(&parts).copied()
            }
        }
    }

    /// The dense `code → group` table and the schema index of the group
    /// column, when this is a single-categorical group-by with a narrow
    /// dictionary. The chunked kernel pairs it with a table's bit-packed
    /// code mirror to resolve groups straight from raw codes.
    pub fn dense_cat_lut(&self) -> Option<(usize, &[u32])> {
        self.lut.as_deref().map(|lut| (self.col_indices[0], lut))
    }

    /// Resolves group indices for every row of `range` in one pass,
    /// writing one entry per row into `out` ([`GroupIndexer::NO_GROUP`]
    /// for unindexed keys). Semantically identical to calling
    /// [`GroupIndexer::group_of`] per row; the single-categorical fast
    /// path reads raw codes through the dense LUT.
    pub fn fill_groups(&self, range: std::ops::Range<usize>, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(range.len());
        if let (Some(lut), [GroupCol::Cat(codes)]) = (self.lut.as_deref(), self.cols.as_slice()) {
            for &c in &codes[range] {
                out.push(lut.get(c as usize).copied().unwrap_or(Self::NO_GROUP));
            }
            return;
        }
        for row in range {
            out.push(
                self.group_of(row)
                    .and_then(|g| u32::try_from(g).ok())
                    .unwrap_or(Self::NO_GROUP),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_group_by, AggregateFn, ColumnDef, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (w, r, v) in [
            (1.0, "us", 10.0),
            (2.0, "eu", 20.0),
            (1.0, "us", 30.0),
            (4.0, "jp", 40.0),
            (2.0, "us", 50.0),
        ] {
            t.push_row(vec![w.into(), r.into(), v.into()]).unwrap();
        }
        t
    }

    #[test]
    fn distinct_keys_match_eval_group_by_enumeration() {
        let t = table();
        for cols in [
            vec!["region".to_owned()],
            vec!["week".to_owned()],
            vec!["week".to_owned(), "region".to_owned()],
        ] {
            for pred in [Predicate::True, Predicate::between("week", 1.0, 2.0)] {
                let fast = distinct_group_keys(&t, &pred, &cols).unwrap();
                let slow: Vec<GroupKey> = eval_group_by(&t, &pred, &cols, &AggregateFn::Count)
                    .unwrap()
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                assert_eq!(fast, slow, "cols {cols:?} pred {pred:?}");
            }
        }
    }

    #[test]
    fn collector_over_fragments_matches_one_pass_enumeration() {
        let t = table();
        // Split the table into two dictionary-consistent fragments, the
        // way paged segments share their session's dictionary.
        let mut frags = [
            Table::new(t.schema().clone()),
            Table::new(t.schema().clone()),
        ];
        for f in frags.iter_mut() {
            f.sync_dictionaries_from(&t).unwrap();
        }
        for r in 0..t.num_rows() {
            let f = if r < 3 { 0 } else { 1 };
            frags[f].push_row(t.row(r)).unwrap();
        }
        for cols in [
            vec!["region".to_owned()],
            vec!["week".to_owned(), "region".to_owned()],
        ] {
            for pred in [Predicate::True, Predicate::between("week", 1.0, 2.0)] {
                let mut collector = GroupKeyCollector::new(&cols);
                // Observe out of order: union is order-insensitive.
                collector.observe(&frags[1], &pred).unwrap();
                collector.observe(&frags[0], &pred).unwrap();
                let expect = distinct_group_keys(&t, &pred, &cols).unwrap();
                assert_eq!(collector.finish(), expect, "cols {cols:?} pred {pred:?}");
            }
        }
    }

    #[test]
    fn empty_selection_yields_no_keys() {
        let t = table();
        let keys = distinct_group_keys(
            &t,
            &Predicate::between("week", 50.0, 60.0),
            &["region".to_owned()],
        )
        .unwrap();
        assert!(keys.is_empty());
    }

    #[test]
    fn indexer_routes_rows_to_their_keys() {
        let t = table();
        let cols = vec!["week".to_owned(), "region".to_owned()];
        let keys = distinct_group_keys(&t, &Predicate::True, &cols).unwrap();
        let idx = GroupIndexer::new(&t, &cols, &keys).unwrap();
        for row in 0..t.num_rows() {
            let gi = idx.group_of(row).expect("every row's key was enumerated");
            let key = &keys[gi];
            assert_eq!(key[0], t.column("week").unwrap().get(row));
            assert_eq!(key[1], t.column("region").unwrap().get(row));
        }
    }

    #[test]
    fn indexer_returns_none_for_unindexed_keys() {
        let t = table();
        let cols = vec!["region".to_owned()];
        let keys = distinct_group_keys(&t, &Predicate::True, &cols).unwrap();
        // Drop the last group (as the N_max cap does).
        let capped = &keys[..keys.len() - 1];
        let idx = GroupIndexer::new(&t, &cols, capped).unwrap();
        let dropped: Vec<usize> = (0..t.num_rows())
            .filter(|&r| idx.group_of(r).is_none())
            .collect();
        assert!(!dropped.is_empty(), "capped group must be unmapped");
    }

    #[test]
    fn indexer_resolves_string_group_values() {
        let t = table();
        let cols = vec!["region".to_owned()];
        let keys: Vec<GroupKey> = vec![vec![Value::Str("eu".into())]];
        let idx = GroupIndexer::new(&t, &cols, &keys).unwrap();
        assert_eq!(idx.group_of(1), Some(0));
        assert_eq!(idx.group_of(0), None);
        // Unknown labels match nothing rather than erroring.
        let idx = GroupIndexer::new(&t, &cols, &[vec![Value::Str("mars".into())]]).unwrap();
        assert_eq!(idx.group_of(0), None);
    }

    #[test]
    fn signed_zero_folds_into_one_group_and_nan_matches_nothing() {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("k"),
            ColumnDef::measure("v"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (k, v) in [(0.0, 1.0), (-0.0, 2.0), (f64::NAN, 3.0), (1.0, 4.0)] {
            t.push_row(vec![k.into(), v.into()]).unwrap();
        }
        let cols = vec!["k".to_owned()];
        let keys = distinct_group_keys(&t, &Predicate::True, &cols).unwrap();
        // -0.0 canonicalized into 0.0: groups are {0.0, 1.0, NaN}, not four.
        assert_eq!(keys.len(), 3, "{keys:?}");
        let idx = GroupIndexer::new(&t, &cols, &keys).unwrap();
        // Both zero rows land in the single zero group.
        assert_eq!(idx.group_of(0), idx.group_of(1));
        assert!(idx.group_of(0).is_some());
        // The NaN row belongs to no group (equality never holds), and the
        // enumerated NaN key matches no row — its cells stay empty, like
        // the per-snippet `BETWEEN NaN AND NaN` predicate.
        assert_eq!(idx.group_of(2), None);
        let nan_gi = keys
            .iter()
            .position(|k| matches!(k[0], Value::Num(v) if v.is_nan()))
            .expect("NaN key enumerated");
        assert!(
            (0..t.num_rows()).all(|r| idx.group_of(r) != Some(nan_gi)),
            "no row may route to the NaN group"
        );
    }

    #[test]
    fn fill_groups_agrees_with_group_of() {
        let t = table();
        for cols in [
            vec!["region".to_owned()],                    // dense LUT path
            vec!["week".to_owned()],                      // numeric: no LUT
            vec!["week".to_owned(), "region".to_owned()], // multi-column
        ] {
            let keys = distinct_group_keys(&t, &Predicate::True, &cols).unwrap();
            // Drop the last key so NO_GROUP shows up too.
            let capped = &keys[..keys.len() - 1];
            for keyset in [&keys[..], capped] {
                let idx = GroupIndexer::new(&t, &cols, keyset).unwrap();
                let mut out = Vec::new();
                for range in [0..t.num_rows(), 2..4, 3..3] {
                    idx.fill_groups(range.clone(), &mut out);
                    assert_eq!(out.len(), range.len());
                    for (i, row) in range.enumerate() {
                        let expect = idx
                            .group_of(row)
                            .map_or(GroupIndexer::NO_GROUP, |g| g as u32);
                        assert_eq!(out[i], expect, "cols {cols:?} row {row}");
                    }
                }
                if cols.len() == 1 && cols[0] == "region" {
                    let (ci, lut) = idx.dense_cat_lut().expect("single-cat LUT");
                    assert_eq!(ci, t.schema().index_of("region").unwrap());
                    assert!(!lut.is_empty());
                } else {
                    assert!(idx.dense_cat_lut().is_none());
                }
            }
        }
    }

    #[test]
    fn indexer_rejects_type_mismatch_and_arity() {
        let t = table();
        let cols = vec!["week".to_owned()];
        assert!(GroupIndexer::new(&t, &cols, &[vec![Value::Cat(1)]]).is_err());
        assert!(GroupIndexer::new(&t, &cols, &[vec![Value::Num(1.0), Value::Num(2.0)]]).is_err());
    }
}
