//! Named-table registry.

use std::collections::BTreeMap;

use crate::{Result, StorageError, Table};

/// A catalog of named tables, the root object handed to query engines.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table under `name`.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_owned(), table);
    }

    /// Removes a table, returning it if present.
    pub fn deregister(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Mutable lookup (e.g. for data appends).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColumnDef, Schema};

    fn tiny_table() -> Table {
        let schema = Schema::new(vec![ColumnDef::measure("x")]).unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec![1.0.into()]).unwrap();
        t
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("sales", tiny_table());
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("sales").unwrap().num_rows(), 1);
        assert!(c.table("missing").is_err());
    }

    #[test]
    fn mutable_access_appends() {
        let mut c = Catalog::new();
        c.register("t", tiny_table());
        c.table_mut("t")
            .unwrap()
            .push_row(vec![2.0.into()])
            .unwrap();
        assert_eq!(c.table("t").unwrap().num_rows(), 2);
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register("b", tiny_table());
        c.register("a", tiny_table());
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }

    #[test]
    fn deregister_removes() {
        let mut c = Catalog::new();
        c.register("t", tiny_table());
        assert!(c.deregister("t").is_some());
        assert!(c.deregister("t").is_none());
        assert!(c.table("t").is_err());
    }
}
