//! In-memory columnar storage engine.
//!
//! This crate is the "data warehouse" substrate of the reproduction: the
//! paper runs Verdict on Spark SQL over HDFS; we run it over an in-process
//! columnar store. Tables are dictionary-encoded for categorical columns and
//! plain `f64` vectors for numeric columns. The crate provides:
//!
//! - [`schema`]: column definitions with the paper's dimension/measure split
//!   (§3.1: dimension attributes appear in predicates, measure attributes in
//!   aggregates);
//! - [`table`]: row-appendable columnar tables;
//! - [`expr`]: scalar expressions so aggregates can target *derived*
//!   attributes (§2.2, e.g. `revenue * discount`);
//! - [`predicate`]: conjunctive selection predicates (ranges over numeric
//!   dimensions, IN-sets over categorical ones) matching Verdict's supported
//!   `where` clauses, compilable to column-bound form whose `fill_mask`
//!   kernels evaluate each conjunct as a branch-free loop over a chunk
//!   into a `u64` selection bitmap;
//! - [`chunk`]: the columnar chunk format — 1024-row batches, selection
//!   bitmaps, per-chunk min/max zone maps (scan skipping now; the
//!   groundwork for partition pruning later), and bit-packed dictionary
//!   codes for low-cardinality categorical columns;
//! - [`partition`]: horizontal range/hash partitions with partition-level
//!   min/max + code-set summaries, so whole partitions can be skipped or
//!   classified dense before any chunk is touched;
//! - [`scan`]: shared-scan building blocks — one-pass group-key
//!   enumeration and row → group-index mapping, with a dense
//!   code → group lookup table for single-column categorical group-bys;
//! - [`aggregate`]: exact AVG/SUM/COUNT/FREQ evaluation (ground truth for
//!   experiments);
//! - [`join`]: foreign-key hash joins between a fact table and dimension
//!   tables (§2.2 item 2), plus full denormalization;
//! - [`catalog`]: a named-table registry.

pub mod aggregate;
pub mod catalog;
pub mod chunk;
pub mod column;
pub mod expr;
pub mod join;
pub mod partition;
pub mod predicate;
pub mod pstore;
pub mod scan;
pub mod schema;
pub mod table;
pub mod value;

pub use aggregate::{eval_group_by, AggregateFn, GroupKey};
pub use catalog::Catalog;
pub use chunk::{
    chunk_segments, CatZone, Chunk, NumZone, PackedCodes, SelectionMask, ZoneMaps, CHUNK_ROWS,
};
pub use column::Column;
pub use expr::Expr;
pub use partition::{ColumnSummary, PartitionInfo, PartitionMap, PartitionScheme, PartitionSpec};
pub use predicate::{ChunkMatch, CompiledPredicate, Predicate};
pub use pstore::{CacheCounters, PartitionStore, SegmentKey, SegmentPin};
pub use scan::{distinct_group_keys, GroupIndexer, GroupKeyCollector};
pub use schema::{AttributeRole, ColumnDef, ColumnType, Schema};
pub use table::Table;
pub use value::Value;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Referenced a column that does not exist.
    UnknownColumn(String),
    /// Referenced a table that does not exist in the catalog.
    UnknownTable(String),
    /// A row or operation did not match the table schema.
    SchemaMismatch(String),
    /// An expression was applied to an incompatible column type.
    TypeError(String),
    /// An out-of-core segment could not be faulted in (I/O or decode
    /// failure surfaced by the paging loader).
    Io(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::TypeError(m) => write!(f, "type error: {m}"),
            StorageError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
