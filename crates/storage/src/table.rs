//! Row-appendable columnar tables.

use std::sync::{Arc, OnceLock, RwLock};

use crate::chunk::ZoneMaps;
use crate::{Column, ColumnType, Result, Schema, StorageError, Value};

/// Lazily computed per-column statistics, cached on the table and
/// invalidated whenever rows are appended (ranges and cardinalities are
/// `O(rows)` to recompute, and callers like predicate-range defaulting ask
/// for them repeatedly between mutations).
#[derive(Debug, Clone, Default)]
struct ColumnStats {
    /// `(min, max)` of a numeric column; `None` for categorical/empty.
    numeric_range: Option<(f64, f64)>,
    /// Distinct-code count of a categorical column; `None` for numeric.
    cardinality: Option<usize>,
}

/// An in-memory columnar table.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// One lazily filled stats slot per column; a mutation replaces the
    /// slot with an empty one (see [`Table::invalidate_stats`]).
    stats: Vec<OnceLock<ColumnStats>>,
    /// Per-chunk zone maps, built lazily on first chunked scan. Unlike
    /// `stats`, appends do *not* clear this cache: zone maps extend
    /// incrementally (min/max is associative), so [`Table::zone_maps`]
    /// scans only the tail rows appended since the last access.
    ///
    /// An `RwLock` rather than a `Mutex`: once the cache covers every
    /// row (the steady state between ingests), concurrent scan workers
    /// clone the `Arc` under a shared read lock instead of serializing
    /// on one mutex at every batch.
    zones: RwLock<Option<Arc<ZoneMaps>>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            rows: self.rows,
            stats: self.stats.clone(),
            zones: RwLock::new(self.zones.read().expect("zone cache poisoned").clone()),
        }
    }
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns: Vec<Column> = schema
            .columns()
            .iter()
            .map(|c| match c.ty {
                ColumnType::Numeric => Column::new_numeric(),
                ColumnType::Categorical => Column::new_categorical(),
            })
            .collect();
        let stats = fresh_stats(columns.len());
        Table {
            schema,
            columns,
            rows: 0,
            stats,
            zones: RwLock::new(None),
        }
    }

    /// Assembles a table directly from columns (bulk load / persistence).
    ///
    /// The columns must be given in schema order, match each declared
    /// column type, and all have the same length.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Table> {
        if columns.len() != schema.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "{} columns given, schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (col, def) in columns.iter().zip(schema.columns()) {
            let type_ok = matches!(
                (col, def.ty),
                (Column::Numeric(_), ColumnType::Numeric)
                    | (Column::Categorical { .. }, ColumnType::Categorical)
            );
            if !type_ok {
                return Err(StorageError::TypeError(format!(
                    "column {} does not match its declared type",
                    def.name
                )));
            }
            if col.len() != rows {
                return Err(StorageError::SchemaMismatch(format!(
                    "ragged columns: {} has {} rows, expected {rows}",
                    def.name,
                    col.len()
                )));
            }
        }
        let stats = fresh_stats(columns.len());
        Ok(Table {
            schema,
            columns,
            rows,
            stats,
            zones: RwLock::new(None),
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends one row given in schema order.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        // Validate all values first so a failed push cannot leave ragged
        // columns behind.
        for (v, def) in row.iter().zip(self.schema.columns()) {
            let ok = matches!(
                (v, def.ty),
                (Value::Num(_), ColumnType::Numeric)
                    | (Value::Cat(_), ColumnType::Categorical)
                    | (Value::Str(_), ColumnType::Categorical)
            );
            if !ok {
                return Err(StorageError::TypeError(format!(
                    "value {v} does not fit column {}",
                    def.name
                )));
            }
        }
        for (v, col) in row.into_iter().zip(self.columns.iter_mut()) {
            col.push(v)?;
        }
        self.rows += 1;
        self.invalidate_stats();
        Ok(())
    }

    /// Appends a batch of rows atomically: every row is validated against
    /// the schema *before* any value is stored, so a bad row in the middle
    /// of a batch can never leave a partial append behind. This is the
    /// ingest path's entry point into the storage layer.
    pub fn push_rows(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.schema.len() {
                return Err(StorageError::SchemaMismatch(format!(
                    "batch row {i} has {} values, schema has {} columns",
                    row.len(),
                    self.schema.len()
                )));
            }
            for (v, def) in row.iter().zip(self.schema.columns()) {
                let ok = matches!(
                    (v, def.ty),
                    (Value::Num(_), ColumnType::Numeric)
                        | (Value::Cat(_), ColumnType::Categorical)
                        | (Value::Str(_), ColumnType::Categorical)
                );
                if !ok {
                    return Err(StorageError::TypeError(format!(
                        "batch row {i}: value {v} does not fit column {}",
                        def.name
                    )));
                }
            }
        }
        for row in rows {
            for (v, col) in row.iter().zip(self.columns.iter_mut()) {
                col.push(v.clone())?;
            }
            self.rows += 1;
        }
        self.invalidate_stats();
        Ok(())
    }

    /// Drops every cached per-column statistic; the next
    /// [`Table::column_bounds`] / [`Table::column_cardinality`] call
    /// recomputes from the (now larger) data.
    fn invalidate_stats(&mut self) {
        self.stats = fresh_stats(self.columns.len());
    }

    /// The cached stats slot for column `i`, computing it on first use.
    fn stats_of(&self, i: usize) -> &ColumnStats {
        self.stats[i].get_or_init(|| ColumnStats {
            numeric_range: self.columns[i].numeric_range(),
            cardinality: self.columns[i].cardinality(),
        })
    }

    /// Column accessor by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let i = self.schema.index_of(name)?;
        Ok(&self.columns[i])
    }

    /// Column accessor by index.
    pub fn column_at(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Reads one full row (mostly for tests and debugging).
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Reads one row, decoding categorical codes back to their string
    /// labels when a label exists. Joins use this so output tables rebuild
    /// consistent dictionaries.
    pub fn row_decoded(&self, row: usize) -> Vec<Value> {
        self.columns
            .iter()
            .map(|c| match c.get(row) {
                Value::Cat(code) => match c.label_of(code) {
                    Some(label) => Value::Str(label.to_owned()),
                    None => Value::Cat(code),
                },
                v => v,
            })
            .collect()
    }

    /// Materializes a new table containing only `rows` (in the given order).
    pub fn gather(&self, rows: &[usize]) -> Result<Table> {
        let mut out = Table::new(self.schema.clone());
        for (dst, src) in out.columns.iter_mut().zip(self.columns.iter()) {
            dst.gather_from(src, rows)?;
        }
        out.rows = rows.len();
        Ok(out)
    }

    /// Appends all rows of `other` (schemas must be identical).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(StorageError::SchemaMismatch(
                "append requires identical schemas".into(),
            ));
        }
        let rows: Vec<usize> = (0..other.rows).collect();
        for (dst, src) in self.columns.iter_mut().zip(other.columns.iter()) {
            dst.gather_from(src, &rows)?;
        }
        self.rows += other.rows;
        self.invalidate_stats();
        Ok(())
    }

    /// Observed min/max of a numeric column, used to default unconstrained
    /// predicate ranges to `(min(Ak), max(Ak))` per the paper §4.1.
    /// Cached; appends invalidate the cache.
    pub fn column_bounds(&self, name: &str) -> Result<(f64, f64)> {
        let i = self.schema.index_of(name)?;
        self.stats_of(i)
            .numeric_range
            .ok_or_else(|| StorageError::TypeError(format!("column {name} has no numeric range")))
    }

    /// Adopts `other`'s categorical dictionaries column by column (see
    /// [`Column::sync_dictionary_from`]); schemas must be identical.
    pub fn sync_dictionaries_from(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(StorageError::SchemaMismatch(
                "dictionary sync requires identical schemas".into(),
            ));
        }
        for (dst, src) in self.columns.iter_mut().zip(other.columns.iter()) {
            dst.sync_dictionary_from(src)?;
        }
        self.invalidate_stats();
        Ok(())
    }

    /// A typed view of chunk `index` ([`crate::chunk::CHUNK_ROWS`] rows,
    /// the last chunk possibly short).
    pub fn chunk(&self, index: usize) -> crate::chunk::Chunk<'_> {
        let start = index * crate::chunk::CHUNK_ROWS;
        let end = (start + crate::chunk::CHUNK_ROWS).min(self.rows);
        crate::chunk::Chunk::new(index, start..end, &self.columns)
    }

    /// Iterates every chunk of the table in order.
    pub fn chunks(&self) -> impl Iterator<Item = crate::chunk::Chunk<'_>> {
        (0..self.rows.div_ceil(crate::chunk::CHUNK_ROWS)).map(|i| self.chunk(i))
    }

    /// Per-chunk zone maps covering every current row.
    ///
    /// Built on first use; subsequent calls after an append extend the
    /// cached maps by scanning only the rows past the last fully-covered
    /// chunk — whole-column bound recomputation never happens on the
    /// ingest path, and stale bounds can never be served (coverage is
    /// checked against `num_rows` on every access).
    pub fn zone_maps(&self) -> Arc<ZoneMaps> {
        // Fast path: a warm, fully-covering cache is served under the
        // shared read lock — parallel workers never contend.
        {
            let slot = self.zones.read().expect("zone cache poisoned");
            if let Some(zm) = slot.as_ref() {
                if zm.rows_covered() == self.rows {
                    return Arc::clone(zm);
                }
            }
        }
        let mut slot = self.zones.write().expect("zone cache poisoned");
        match slot.as_ref() {
            // Another writer may have filled the cache between our read
            // and write acquisitions.
            Some(zm) if zm.rows_covered() == self.rows => Arc::clone(zm),
            Some(zm) => {
                let next = Arc::new(zm.extended(&self.columns, self.rows));
                *slot = Some(Arc::clone(&next));
                next
            }
            None => {
                let fresh = Arc::new(ZoneMaps::build(&self.columns, self.rows));
                *slot = Some(Arc::clone(&fresh));
                fresh
            }
        }
    }

    /// Approximate heap footprint of the row data in bytes (column
    /// payloads plus dictionary labels) — the unit the out-of-core
    /// partition cache budgets in. Schema and cached statistics are not
    /// counted; they are negligible next to the columns.
    pub fn heap_bytes(&self) -> u64 {
        self.columns.iter().map(Column::heap_bytes).sum()
    }

    /// Distinct-code count of a categorical column. Cached; appends
    /// invalidate the cache.
    pub fn column_cardinality(&self, name: &str) -> Result<usize> {
        let i = self.schema.index_of(name)?;
        self.stats_of(i)
            .cardinality
            .ok_or_else(|| StorageError::TypeError(format!("column {name} is not categorical")))
    }
}

/// A fresh (empty) stats slot per column.
fn fresh_stats(n: usize) -> Vec<OnceLock<ColumnStats>> {
    (0..n).map(|_| OnceLock::new()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnDef;

    fn sales_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("revenue"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec![1.0.into(), "us".into(), 100.0.into()])
            .unwrap();
        t.push_row(vec![2.0.into(), "eu".into(), 150.0.into()])
            .unwrap();
        t.push_row(vec![3.0.into(), "us".into(), 120.0.into()])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read_rows() {
        let t = sales_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(
            t.row(1),
            vec![Value::Num(2.0), Value::Cat(1), Value::Num(150.0)]
        );
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut t = sales_table();
        assert!(t.push_row(vec![1.0.into()]).is_err());
        // A failed push must not corrupt row count.
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn rejects_type_mismatch_atomically() {
        let mut t = sales_table();
        let r = t.push_row(vec![1.0.into(), "us".into(), Value::Cat(1)]);
        assert!(r.is_err());
        assert_eq!(t.num_rows(), 3);
        // Columns stay rectangular.
        assert_eq!(t.column("week").unwrap().len(), 3);
        assert_eq!(t.column("revenue").unwrap().len(), 3);
    }

    #[test]
    fn gather_preserves_order() {
        let t = sales_table();
        let g = t.gather(&[2, 0]).unwrap();
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.row(0)[0], Value::Num(3.0));
        assert_eq!(g.row(1)[0], Value::Num(1.0));
    }

    #[test]
    fn append_concatenates() {
        let mut a = sales_table();
        let b = sales_table();
        a.append(&b).unwrap();
        assert_eq!(a.num_rows(), 6);
    }

    #[test]
    fn column_bounds_reports_min_max() {
        let t = sales_table();
        assert_eq!(t.column_bounds("week").unwrap(), (1.0, 3.0));
        assert!(t.column_bounds("region").is_err());
    }

    #[test]
    fn push_rows_appends_batch() {
        let mut t = sales_table();
        t.push_rows(&[
            vec![4.0.into(), "jp".into(), 90.0.into()],
            vec![5.0.into(), "us".into(), 95.0.into()],
        ])
        .unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.row(4)[0], Value::Num(5.0));
    }

    #[test]
    fn push_rows_is_atomic() {
        let mut t = sales_table();
        // Second row is malformed: nothing from the batch may land.
        let err = t.push_rows(&[
            vec![4.0.into(), "jp".into(), 90.0.into()],
            vec![5.0.into(), 1.0.into(), 95.0.into()],
        ]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column("week").unwrap().len(), 3);
    }

    #[test]
    fn cached_stats_invalidate_on_append() {
        let mut t = sales_table();
        assert_eq!(t.column_bounds("week").unwrap(), (1.0, 3.0));
        assert_eq!(t.column_cardinality("region").unwrap(), 2);
        assert!(t.column_cardinality("week").is_err());
        t.push_rows(&[vec![9.0.into(), "jp".into(), 1.0.into()]])
            .unwrap();
        assert_eq!(t.column_bounds("week").unwrap(), (1.0, 9.0));
        assert_eq!(t.column_cardinality("region").unwrap(), 3);
        // Single-row pushes invalidate too.
        t.push_row(vec![0.5.into(), "us".into(), 1.0.into()])
            .unwrap();
        assert_eq!(t.column_bounds("week").unwrap(), (0.5, 9.0));
    }

    /// Regression: the cached zone maps must never serve stale bounds
    /// after an ingest. Rows appended into the partially-filled last
    /// chunk (and beyond it) carry values outside the old bounds; a
    /// predicate selecting only those values must still classify the
    /// extended chunks as matchable — a stale cache would prune them and
    /// silently drop the appended rows from every scan.
    #[test]
    fn zone_maps_extend_after_ingest_instead_of_pruning_stale_bounds() {
        use crate::chunk::CHUNK_ROWS;
        use crate::{ChunkMatch, Predicate};
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("x"),
            ColumnDef::measure("v"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        // 1.5 chunks of x ∈ [0, 10): the last chunk is half full.
        let initial = CHUNK_ROWS + CHUNK_ROWS / 2;
        for i in 0..initial {
            t.push_row(vec![((i % 10) as f64).into(), 1.0.into()])
                .unwrap();
        }
        let old = t.zone_maps();
        assert_eq!(old.rows_covered(), initial);
        // Straddling append: fills the rest of chunk 1 and spills into
        // chunk 2, all with x = 100 — far outside the cached bounds.
        let batch: Vec<Vec<Value>> = (0..CHUNK_ROWS)
            .map(|_| vec![100.0.into(), 2.0.into()])
            .collect();
        t.push_rows(&batch).unwrap();
        let fresh = t.zone_maps();
        assert_eq!(fresh.rows_covered(), t.num_rows());
        assert_eq!(fresh.num_chunks(), 3);
        // Chunk 0 predates the append: its bounds are untouched.
        assert_eq!(fresh.num_zone(0, 0).unwrap().max, 9.0);
        // Chunks 1 and 2 absorbed the new rows: a predicate matching
        // only appended values must not be pruned there.
        let pred = Predicate::between("x", 50.0, 150.0).compile(&t).unwrap();
        assert_eq!(pred.classify_chunk(&fresh, 0), ChunkMatch::NoRows);
        for c in 1..3 {
            assert_ne!(
                pred.classify_chunk(&fresh, c),
                ChunkMatch::NoRows,
                "stale bounds pruned extended chunk {c}"
            );
        }
    }
}
