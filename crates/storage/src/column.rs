//! Columnar storage with dictionary encoding for categorical data.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{Result, StorageError, Value};

/// One column of data.
#[derive(Debug, Clone)]
pub enum Column {
    /// Plain numeric storage.
    Numeric(Vec<f64>),
    /// Dictionary-encoded categorical storage: codes plus the dictionary
    /// mapping codes to labels (codes without a label are valid — generated
    /// datasets often use raw integer categories).
    ///
    /// Labels are `Arc<str>` shared between the forward dictionary and the
    /// reverse index, so building the index — on bulk load, warm start, or
    /// clone — bumps refcounts instead of copying every string.
    Categorical {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Code → label dictionary (may be sparse).
        labels: Vec<Arc<str>>,
        /// Label → code reverse index (shares storage with `labels`).
        index: HashMap<Arc<str>, u32>,
    },
}

impl Column {
    /// Empty numeric column.
    pub fn new_numeric() -> Self {
        Column::Numeric(Vec::new())
    }

    /// Empty categorical column.
    pub fn new_categorical() -> Self {
        Column::Categorical {
            codes: Vec::new(),
            labels: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Numeric column over the given data (bulk load / persistence).
    pub fn from_numeric(data: Vec<f64>) -> Self {
        Column::Numeric(data)
    }

    /// Categorical column from codes and an optional dictionary (bulk load
    /// / persistence). The reverse index *shares* label storage with the
    /// dictionary — each entry is an `Arc` refcount bump, not a `String`
    /// copy, so warm starts stop re-allocating dictionaries.
    pub fn from_categorical(codes: Vec<u32>, labels: Vec<String>) -> Self {
        let labels: Vec<Arc<str>> = labels.into_iter().map(Arc::from).collect();
        let index = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (Arc::clone(l), i as u32))
            .collect();
        Column::Categorical {
            codes,
            labels,
            index,
        }
    }

    /// The dictionary labels of a categorical column (`None` for numeric
    /// columns). Codes without a label are valid and simply not covered.
    pub fn labels(&self) -> Option<&[Arc<str>]> {
        match self {
            Column::Categorical { labels, .. } => Some(labels),
            Column::Numeric(_) => None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes: row payloads plus dictionary
    /// label storage (the reverse index shares the labels' `Arc`s, so it
    /// contributes only its table slots).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Column::Numeric(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
            Column::Categorical { codes, labels, .. } => {
                let label_bytes: usize = labels.iter().map(|l| l.len()).sum();
                (codes.len() * std::mem::size_of::<u32>()
                    + label_bytes
                    // Two pointers-worth of bookkeeping per label: the
                    // forward Arc slot and the reverse-index entry.
                    + labels.len() * 2 * std::mem::size_of::<usize>()) as u64
            }
        }
    }

    /// Appends a value, dictionary-encoding strings.
    pub fn push(&mut self, v: Value) -> Result<()> {
        match (self, v) {
            (Column::Numeric(data), Value::Num(x)) => {
                data.push(x);
                Ok(())
            }
            (Column::Categorical { codes, .. }, Value::Cat(c)) => {
                codes.push(c);
                Ok(())
            }
            (
                Column::Categorical {
                    codes,
                    labels,
                    index,
                },
                Value::Str(s),
            ) => {
                let code = match index.get(s.as_str()) {
                    Some(&c) => c,
                    None => {
                        let c = labels.len() as u32;
                        let shared: Arc<str> = Arc::from(s);
                        labels.push(Arc::clone(&shared));
                        index.insert(shared, c);
                        c
                    }
                };
                codes.push(code);
                Ok(())
            }
            (Column::Numeric(_), other) => Err(StorageError::TypeError(format!(
                "cannot store {other} in numeric column"
            ))),
            (Column::Categorical { .. }, other) => Err(StorageError::TypeError(format!(
                "cannot store {other} in categorical column"
            ))),
        }
    }

    /// Value at `row`.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Numeric(v) => Value::Num(v[row]),
            Column::Categorical { codes, .. } => Value::Cat(codes[row]),
        }
    }

    /// Numeric slice view; error for categorical columns.
    pub fn numeric(&self) -> Result<&[f64]> {
        match self {
            Column::Numeric(v) => Ok(v),
            Column::Categorical { .. } => Err(StorageError::TypeError(
                "expected numeric column, found categorical".into(),
            )),
        }
    }

    /// Categorical-code slice view; error for numeric columns.
    pub fn categorical(&self) -> Result<&[u32]> {
        match self {
            Column::Categorical { codes, .. } => Ok(codes),
            Column::Numeric(_) => Err(StorageError::TypeError(
                "expected categorical column, found numeric".into(),
            )),
        }
    }

    /// Resolves a categorical label to its dictionary code, if present.
    pub fn code_of(&self, label: &str) -> Option<u32> {
        match self {
            Column::Categorical { index, .. } => index.get(label).copied(),
            Column::Numeric(_) => None,
        }
    }

    /// Resolves a dictionary code to its label, if one was recorded.
    pub fn label_of(&self, code: u32) -> Option<&str> {
        match self {
            Column::Categorical { labels, .. } => labels.get(code as usize).map(|s| &**s),
            Column::Numeric(_) => None,
        }
    }

    /// Adopts `other`'s categorical dictionary, which must be an
    /// append-only extension of this column's (same labels in the same
    /// order, possibly with new ones at the end). No-op for numeric
    /// columns.
    ///
    /// This is how a maintained sample keeps *one* dictionary with its
    /// base table: the base encodes an ingested batch first (assigning
    /// any new codes), the sample adopts the grown dictionary, and
    /// admitted rows are then pushed as raw codes — so a sample code
    /// always means the same label as the base-table code, regardless of
    /// which rows happened to be admitted.
    pub fn sync_dictionary_from(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Numeric(_), Column::Numeric(_)) => Ok(()),
            (
                Column::Categorical {
                    labels: dst_labels,
                    index: dst_index,
                    ..
                },
                Column::Categorical {
                    labels: src_labels,
                    index: src_index,
                    ..
                },
            ) => {
                if dst_labels.len() > src_labels.len()
                    || dst_labels
                        .iter()
                        .zip(src_labels.iter())
                        .any(|(a, b)| a != b)
                {
                    return Err(StorageError::SchemaMismatch(
                        "cannot sync dictionaries: the source is not an append-only \
                         extension of this column's dictionary"
                            .into(),
                    ));
                }
                dst_labels.clone_from(src_labels);
                dst_index.clone_from(src_index);
                Ok(())
            }
            _ => Err(StorageError::TypeError(
                "dictionary sync between mismatched column types".into(),
            )),
        }
    }

    /// Appends the rows of `other` selected by `rows` (gather).
    pub fn gather_from(&mut self, other: &Column, rows: &[usize]) -> Result<()> {
        match (self, other) {
            (Column::Numeric(dst), Column::Numeric(src)) => {
                dst.reserve(rows.len());
                for &r in rows {
                    dst.push(src[r]);
                }
                Ok(())
            }
            (
                Column::Categorical {
                    codes: dst,
                    labels: dst_labels,
                    index: dst_index,
                },
                Column::Categorical {
                    codes: src,
                    labels: src_labels,
                    index: src_index,
                },
            ) => {
                // Inherit the source dictionary so label lookups keep
                // working on gathered tables (samples, join outputs).
                if dst_labels.is_empty() && !src_labels.is_empty() {
                    dst_labels.clone_from(src_labels);
                    dst_index.clone_from(src_index);
                }
                dst.reserve(rows.len());
                for &r in rows {
                    dst.push(src[r]);
                }
                Ok(())
            }
            _ => Err(StorageError::TypeError(
                "gather between mismatched column types".into(),
            )),
        }
    }

    /// Min and max of a numeric column; `None` when empty or categorical.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        match self {
            Column::Numeric(v) if !v.is_empty() => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &x in v {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                Some((lo, hi))
            }
            _ => None,
        }
    }

    /// Number of distinct categorical codes; `None` for numeric columns.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Column::Categorical { codes, .. } => {
                let mut seen: Vec<u32> = codes.clone();
                seen.sort_unstable();
                seen.dedup();
                Some(seen.len())
            }
            Column::Numeric(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_push_and_get() {
        let mut c = Column::new_numeric();
        c.push(Value::Num(1.5)).unwrap();
        c.push(Value::Num(-2.0)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Value::Num(-2.0));
        assert_eq!(c.numeric().unwrap(), &[1.5, -2.0]);
    }

    #[test]
    fn categorical_dictionary_encoding() {
        let mut c = Column::new_categorical();
        c.push(Value::Str("us".into())).unwrap();
        c.push(Value::Str("eu".into())).unwrap();
        c.push(Value::Str("us".into())).unwrap();
        assert_eq!(c.categorical().unwrap(), &[0, 1, 0]);
        assert_eq!(c.code_of("eu"), Some(1));
        assert_eq!(c.label_of(0), Some("us"));
        assert_eq!(c.code_of("jp"), None);
    }

    #[test]
    fn raw_codes_accepted() {
        let mut c = Column::new_categorical();
        c.push(Value::Cat(42)).unwrap();
        assert_eq!(c.get(0), Value::Cat(42));
        assert_eq!(c.label_of(42), None);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut n = Column::new_numeric();
        assert!(n.push(Value::Cat(1)).is_err());
        let mut c = Column::new_categorical();
        assert!(c.push(Value::Num(1.0)).is_err());
        assert!(n.categorical().is_err());
        assert!(c.numeric().is_err());
    }

    #[test]
    fn gather_selects_rows() {
        let mut src = Column::new_numeric();
        for x in [10.0, 20.0, 30.0, 40.0] {
            src.push(Value::Num(x)).unwrap();
        }
        let mut dst = Column::new_numeric();
        dst.gather_from(&src, &[3, 1]).unwrap();
        assert_eq!(dst.numeric().unwrap(), &[40.0, 20.0]);
    }

    #[test]
    fn numeric_range_and_cardinality() {
        let mut n = Column::new_numeric();
        assert_eq!(n.numeric_range(), None);
        for x in [3.0, -1.0, 7.0] {
            n.push(Value::Num(x)).unwrap();
        }
        assert_eq!(n.numeric_range(), Some((-1.0, 7.0)));
        assert_eq!(n.cardinality(), None);

        let mut c = Column::new_categorical();
        for code in [1u32, 1, 2, 5] {
            c.push(Value::Cat(code)).unwrap();
        }
        assert_eq!(c.cardinality(), Some(3));
    }
}
