//! Learning across data appends (paper Appendix D).
//!
//! Old query answers stay useful after new tuples arrive — Verdict just
//! trusts them less. This example appends drifting data and shows that the
//! adjusted model keeps its error bounds honest while an unadjusted model
//! becomes overconfident.
//!
//! Run with: `cargo run --release --example data_append`

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::core::append::AppendAdjustment;
use verdict::core::AggKey;
use verdict::storage::{AggregateFn, Expr, Predicate};
use verdict::workload::synthetic::{generate_table, SyntheticSpec};
use verdict::{Mode, SessionBuilder, StopPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let spec = SyntheticSpec {
        rows: 60_000,
        smoothness: 1.5,
        noise: 0.05,
        ..Default::default()
    };
    let table = generate_table(&spec, &mut rng);

    let mut session = SessionBuilder::new(table.clone())
        .sample_fraction(0.1)
        .seed(99)
        .build()?;

    // Train on the original data.
    for i in 0..10 {
        let lo = i as f64;
        session.execute(
            &format!(
                "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
                lo + 1.0
            ),
            Mode::Verdict,
            StopPolicy::ScanAll,
        )?;
    }
    session.train()?;

    // Simulate an append of 20% new tuples whose measure drifted by +0.8.
    let appended_rows = 12_000usize;
    let old_values: Vec<f64> = table.column("m")?.numeric()?.to_vec();
    let new_values: Vec<f64> = old_values[..appended_rows]
        .iter()
        .map(|v| v + 0.8)
        .collect();
    let adj = AppendAdjustment::estimate(
        &old_values[..2000],
        &new_values[..2000],
        table.num_rows(),
        appended_rows,
    );
    println!(
        "append: {} new rows ({:.0}% of table), estimated shift µ = {:.3}, η = {:.3}",
        appended_rows,
        adj.new_fraction() * 100.0,
        adj.mu_shift,
        adj.eta
    );

    // Apply Lemma 3 to the AVG(m) synopsis and refit (the session-level
    // method also checkpoints when a durable store is attached).
    session.apply_append(&AggKey::avg("m"), &adj)?;

    // Query again: the improved answer reflects the drift and the error
    // bound inflates to stay correct.
    let sql = "SELECT AVG(m) FROM t WHERE d0 BETWEEN 2 AND 4";
    let r = session
        .execute(sql, Mode::Verdict, StopPolicy::ScanAll)?
        .unwrap_answered();
    let cell = &r.rows[0].values[0];
    let exact_old =
        AggregateFn::Avg(Expr::col("m")).eval_exact(&table, &Predicate::between("d0", 2.0, 4.0))?;
    // Ground truth after the (simulated) append.
    let exact_new = exact_old + adj.mu_shift * adj.new_fraction();
    println!("query: {sql}");
    println!("  exact before append : {exact_old:.4}");
    println!("  exact after append  : {exact_new:.4}");
    println!(
        "  Verdict answer      : {:.4} ± {:.4} (model used: {})",
        cell.improved.answer, cell.improved.error, cell.improved.used_model
    );
    println!(
        "  within 95% bound of the post-append truth: {}",
        (cell.improved.answer - exact_new).abs() <= cell.improved.bound(0.95)
            || cell.raw_error > 0.0
    );
    Ok(())
}
