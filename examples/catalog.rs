//! The `Database` catalog: one handle, many tables, each learning
//! independently — and the whole catalog warm-starting from one
//! directory.
//!
//! 1. two fact tables with different schemas (`orders`: day/region/amount;
//!    `events`: hour/latency) register under one persistent `Database`;
//! 2. each table warms up on its own workload and trains — `FROM` picks
//!    the table, and `orders.AVG(amount)` / `events.AVG(latency)` are
//!    disjoint learned state (training one moves nothing in the other);
//! 3. a prepared statement serves the hot query shape with the SQL layer
//!    paid once — bit-identical answers to ad-hoc queries;
//! 4. the process "restarts"; `Database::open` recovers *both* tables
//!    from the one directory, and the first query after reopen already
//!    has the trained bounds.
//!
//! Run with: `cargo run --release --example catalog`

use verdict::workload::multi::{orders_events, TwoTableSpec};
use verdict::{Database, QueryOptions};

const ORDERS_SQL: &str = "SELECT AVG(amount) FROM orders WHERE day BETWEEN 25 AND 45";
const EVENTS_SQL: &str = "SELECT AVG(latency) FROM events WHERE hour BETWEEN 6 AND 12";

fn bound(db: &Database, sql: &str) -> (f64, f64, bool) {
    let r = db
        .query(sql, &QueryOptions::new())
        .expect("query")
        .unwrap_answered();
    let cell = &r.rows[0].values[0];
    (
        cell.improved.answer,
        cell.improved.error,
        cell.improved.used_model,
    )
}

fn main() {
    let dir = std::env::temp_dir().join(format!("verdict-catalog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (orders, events) = orders_events(&TwoTableSpec::default());
    println!(
        "registering 2 tables (orders: {} rows, events: {} rows) under {}",
        orders.num_rows(),
        events.num_rows(),
        dir.display()
    );
    let db = Database::builder()
        .register_table("orders", orders)
        .register_table("events", events)
        .persist_to(&dir)
        .build()
        .expect("build database");

    // ---- Independent learning. ------------------------------------------
    let events_before = db.snapshot("events").expect("snapshot").state_bytes();
    let opts = QueryOptions::new();
    for lo in (0..90).step_by(10) {
        db.query(
            &format!(
                "SELECT AVG(amount) FROM orders WHERE day BETWEEN {lo} AND {}",
                lo + 10
            ),
            &opts,
        )
        .expect("warm orders");
    }
    db.train("orders").expect("train orders");
    let events_after = db.snapshot("events").expect("snapshot").state_bytes();
    assert_eq!(
        events_before, events_after,
        "training orders must not move a bit of events state"
    );
    println!(
        "trained orders ({} learned keys, all orders-qualified); events state untouched",
        db.learned_keys().len()
    );

    for lo in (0..21).step_by(3) {
        db.query(
            &format!(
                "SELECT AVG(latency) FROM events WHERE hour BETWEEN {lo} AND {}",
                lo + 3
            ),
            &opts,
        )
        .expect("warm events");
    }
    db.train("events").expect("train events");

    let (o_ans, o_err, o_model) = bound(&db, ORDERS_SQL);
    let (e_ans, e_err, e_model) = bound(&db, EVENTS_SQL);
    assert!(o_model && e_model);
    println!("orders: AVG(amount) ≈ {o_ans:.3} ± {o_err:.4} (model engaged)");
    println!("events: AVG(latency) ≈ {e_ans:.3} ± {e_err:.4} (model engaged)");

    // ---- Prepared serving path. -----------------------------------------
    let stmt = db
        .prepare("SELECT AVG(amount) FROM orders WHERE day BETWEEN ? AND ?")
        .expect("prepare");
    let prepared = stmt
        .bind(&[25.0.into(), 45.0.into()])
        .expect("bind")
        .run(&opts)
        .expect("run")
        .unwrap_answered();
    let ad_hoc = db
        .query(ORDERS_SQL, &opts)
        .expect("query")
        .unwrap_answered();
    assert_eq!(
        prepared.rows[0].values[0].improved.answer.to_bits(),
        ad_hoc.rows[0].values[0].improved.answer.to_bits(),
        "prepared path must answer bit-identically"
    );
    println!(
        "prepared statement ({} placeholders) answers bit-identically to ad-hoc SQL",
        stmt.placeholder_count()
    );

    // ---- Restart: the whole catalog recovers from one directory. --------
    let (o_before, e_before) = (bound(&db, ORDERS_SQL), bound(&db, EVENTS_SQL));
    drop(stmt);
    drop(db);
    println!("\n-- restart --\n");
    let db = Database::open(&dir).expect("open catalog");
    println!(
        "reopened {:?}: tables {:?}",
        dir.file_name().unwrap(),
        db.table_names()
    );
    let (o_after, e_after) = (bound(&db, ORDERS_SQL), bound(&db, EVENTS_SQL));
    assert_eq!(o_before.1.to_bits(), o_after.1.to_bits());
    assert_eq!(e_before.1.to_bits(), e_after.1.to_bits());
    assert!(o_after.2 && e_after.2, "models survive the restart");
    println!(
        "warm start: orders ± {:.4} and events ± {:.4} — identical to pre-restart bounds",
        o_after.1, e_after.1
    );

    let _ = std::fs::remove_dir_all(&dir);
}
