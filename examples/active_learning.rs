//! Active database learning (paper §10 future work, CIDR'17 follow-on):
//! the engine proactively picks the queries that most improve its model.
//!
//! We give the planner a grid of candidate ranges and let it choose five
//! proactive queries; compare the model's average uncertainty against
//! five randomly chosen queries.
//!
//! Run with: `cargo run --release --example active_learning`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verdict::core::active::{plan_batch, rank_candidates};
use verdict::core::covariance::AggMode;
use verdict::core::inference::TrainedModel;
use verdict::core::learning::PriorMean;
use verdict::core::{KernelParams, Observation, Region, SchemaInfo};
use verdict::storage::Predicate;
use verdict::workload::synthetic::SmoothField;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(61);
    let schema = SchemaInfo::new(vec![verdict::core::DimensionSpec::numeric("t", 0.0, 100.0)])?;
    let field = SmoothField::sample(1.5, &mut rng);
    let truth = |lo: f64, hi: f64| -> f64 {
        let steps = 40;
        (0..steps)
            .map(|i| field.at((lo + (i as f64 + 0.5) / steps as f64 * (hi - lo)) / 10.0))
            .sum::<f64>()
            / steps as f64
    };
    let region = |lo: f64, hi: f64| -> Region {
        Region::from_predicate(&schema, &Predicate::between("t", lo, hi)).expect("region")
    };

    // Start with a lopsided synopsis: only the left third observed.
    let entries: Vec<(Region, Observation)> = (0..6)
        .map(|i| {
            let lo = i as f64 * 5.0;
            (
                region(lo, lo + 5.0),
                Observation::new(truth(lo, lo + 5.0), 0.05),
            )
        })
        .collect();
    let base = TrainedModel::fit(
        &schema,
        AggMode::Avg,
        &entries,
        KernelParams::constant(1, 20.0, 1.0),
        PriorMean::Constant(0.0),
        1e-9,
    )?;

    // Candidates: 20 ranges tiling the domain. Targets: a fine grid (what
    // future users might ask).
    let candidates: Vec<Region> = (0..20)
        .map(|i| region(i as f64 * 5.0, i as f64 * 5.0 + 5.0))
        .collect();
    let targets: Vec<Region> = (0..50)
        .map(|i| region(i as f64 * 2.0, i as f64 * 2.0 + 2.0))
        .collect();

    let ranked = rank_candidates(&base, &schema, &candidates, &targets, 0.05);
    println!("top-5 candidate ranges by expected variance reduction:");
    for c in ranked.iter().take(5) {
        let (lo, hi) = candidates[c.index].range(0).unwrap();
        println!("  [{lo:>5.1}, {hi:>5.1}]  score {:.4}", c.score);
    }

    // Plan a batch of 5 and "execute" them (observe the truth ± noise).
    let picks = plan_batch(&base, &schema, &candidates, &targets, 0.05, 5);
    let mut active = base.clone();
    for &i in &picks {
        let (lo, hi) = candidates[i].range(0).unwrap();
        active.absorb(
            &schema,
            &candidates[i],
            Observation::new(truth(lo, hi), 0.05),
        );
    }

    // Baseline: 5 random candidates.
    let mut random = base.clone();
    for _ in 0..5 {
        let i = rng.gen_range(0..candidates.len());
        let (lo, hi) = candidates[i].range(0).unwrap();
        random.absorb(
            &schema,
            &candidates[i],
            Observation::new(truth(lo, hi), 0.05),
        );
    }

    let avg_gamma = |m: &TrainedModel| -> f64 {
        targets
            .iter()
            .map(|t| m.posterior_cov(&schema, t, t).max(0.0).sqrt())
            .sum::<f64>()
            / targets.len() as f64
    };
    println!("\nmean posterior std over the target grid:");
    println!("  before proactive queries : {:.4}", avg_gamma(&base));
    println!("  after 5 random queries   : {:.4}", avg_gamma(&random));
    println!("  after 5 planned queries  : {:.4}", avg_gamma(&active));
    assert!(avg_gamma(&active) <= avg_gamma(&random) + 1e-9);
    println!("\nactively chosen queries teach the model more than random ones.");
    Ok(())
}
