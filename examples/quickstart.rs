//! Quickstart: ask the same kind of question twice — the second time is
//! both faster and tighter.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::workload::synthetic::{generate_table, SyntheticSpec};
use verdict::{Mode, SessionBuilder, StopPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A table with one numeric dimension `d0` in [0, 10] and a measure
    //    `m` that varies smoothly with `d0` (like sales over time).
    let mut rng = StdRng::seed_from_u64(42);
    let spec = SyntheticSpec {
        rows: 200_000,
        smoothness: 1.5,
        ..Default::default()
    };
    let table = generate_table(&spec, &mut rng);

    // 2. A session: 10% uniform sample, online aggregation underneath.
    let mut session = SessionBuilder::new(table)
        .sample_fraction(0.10)
        .batch_size(500)
        .seed(42)
        .build()?;

    // 3. Warm up the synopsis with a few range queries, then train.
    println!("— warm-up: 10 range queries —");
    for i in 0..10 {
        let lo = i as f64;
        let sql = format!(
            "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
            lo + 1.0
        );
        session.execute(&sql, Mode::Verdict, StopPolicy::ScanAll)?;
    }
    session.train()?;

    // 4. A new query over a range that overlaps what we have seen.
    let sql = "SELECT AVG(m) FROM t WHERE d0 BETWEEN 2.5 AND 4.5";
    let policy = StopPolicy::ScanAll;

    let baseline = session
        .execute(sql, Mode::NoLearn, policy)?
        .unwrap_answered();
    let improved = session
        .execute(sql, Mode::Verdict, policy)?
        .unwrap_answered();

    let b = &baseline.rows[0].values[0];
    let v = &improved.rows[0].values[0];
    println!("query: {sql}");
    println!(
        "  NoLearn : answer {:>8.4}  ± {:.4} (95% bound {:.4})",
        b.raw_answer,
        b.raw_error,
        b.improved.bound(0.95)
    );
    println!(
        "  Verdict : answer {:>8.4}  ± {:.4} (95% bound {:.4}, model used: {})",
        v.improved.answer,
        v.improved.error,
        v.improved.bound(0.95),
        v.improved.used_model
    );
    assert!(v.improved.error <= b.raw_error, "Theorem 1");
    println!(
        "\nerror reduced by {:.1}% — never worse, by Theorem 1.",
        (1.0 - v.improved.error / b.raw_error) * 100.0
    );

    // 5. Speed: stop both engines at the same 1% error target.
    let target = StopPolicy::RelativeErrorBound {
        target: 0.01,
        delta: 0.95,
    };
    let nl = session
        .execute(sql, Mode::NoLearn, target)?
        .unwrap_answered();
    let vd = session
        .execute(sql, Mode::Verdict, target)?
        .unwrap_answered();
    println!(
        "to reach a 1% error bound: NoLearn scanned {} tuples ({:.1} ms simulated), \
         Verdict scanned {} ({:.1} ms) — {:.1}x speedup",
        nl.tuples_scanned,
        nl.simulated_ns / 1e6,
        vd.tuples_scanned,
        vd.simulated_ns / 1e6,
        nl.simulated_ns / vd.simulated_ns
    );
    Ok(())
}
