//! Serving a database over the wire: start a `verdict-server` on an
//! ephemeral port, connect a `verdict-client`, and walk the protocol —
//! handshake, prepare → bind → run loop, an ingest that invalidates the
//! answer cache, and a cache-hit demonstration with latency numbers.
//!
//! ```text
//! cargo run --release --example server
//! ```

use std::sync::Arc;

use verdict::workload::multi::{orders_table, TwoTableSpec};
use verdict::{Database, TableOptions};
use verdict_client::Client;
use verdict_server::wire::{WireOptions, WireOutcome};
use verdict_server::{serve, ServerConfig};

fn main() {
    // ── A database worth serving ─────────────────────────────────────
    let table = orders_table(&TwoTableSpec {
        orders_rows: 20_000,
        events_rows: 1,
        seed: 7,
    });
    let db = Arc::new(
        Database::builder()
            .register_table_with(
                "orders",
                table,
                TableOptions {
                    sample_fraction: 0.2,
                    batch_size: 500,
                    seed: 7,
                    ..Default::default()
                },
            )
            .build()
            .expect("database"),
    );

    // ── Serve it on an ephemeral loopback port ───────────────────────
    let server =
        serve(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).expect("bind server");
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("connect");

    // ── Handshake: the catalog travels in `hello` ────────────────────
    let hello = client.hello().expect("hello");
    let t = &hello.tables[0];
    println!(
        "hello: protocol v{}, table `{}` ({} rows, {} columns)",
        hello.protocol,
        t.name,
        t.rows,
        t.columns.len()
    );
    assert_eq!(t.name, "orders");
    assert_eq!(t.rows, 20_000);

    // ── Prepare once, bind + run many times ──────────────────────────
    let stmt = client
        .prepare("SELECT AVG(amount) FROM orders WHERE day BETWEEN ? AND ?")
        .expect("prepare");
    println!(
        "prepared stmt #{} on `{}` (fingerprint {:#018x})",
        stmt.stmt, stmt.table, stmt.fingerprint
    );
    for lo in [5.0_f64, 25.0, 45.0, 65.0] {
        let bound = client
            .bind(stmt.stmt, &[lo.into(), (lo + 15.0).into()])
            .expect("bind");
        let answer = client.run(bound, WireOptions::default()).expect("run");
        let WireOutcome::Answered(result) = &answer.outcome else {
            panic!("expected an answer");
        };
        let cell = &result.rows[0].values[0];
        println!(
            "  day in [{lo:>4.1}, {:>4.1}]  avg = {:>7.2} ± {:>5.2}  ({} tuples, {} µs)",
            lo + 15.0,
            cell.answer,
            cell.error,
            result.tuples_scanned,
            answer.elapsed_ns / 1_000,
        );
        assert!(!answer.cached);
    }

    // ── The answer cache: an identical rerun skips the scan ──────────
    let sql = "SELECT AVG(amount) FROM orders WHERE day BETWEEN 10 AND 40";
    let miss = client.query(sql, WireOptions::default()).expect("miss");
    let hit = client.query(sql, WireOptions::default()).expect("hit");
    assert!(!miss.cached && hit.cached);
    assert_eq!(miss.outcome_bytes, hit.outcome_bytes);
    println!(
        "cache: miss {} µs → hit {} µs (identical bytes, no scan)",
        miss.elapsed_ns / 1_000,
        hit.elapsed_ns / 1_000,
    );
    assert!(
        hit.elapsed_ns < miss.elapsed_ns,
        "a cache hit must be cheaper than its miss"
    );

    // ── Ingest moves the data epoch and voids the cache ──────────────
    let report = client
        .ingest(
            "orders",
            &[
                vec![12.0.into(), "east".into(), 180.0.into()],
                vec![33.0.into(), "west".into(), 175.0.into()],
            ],
        )
        .expect("ingest");
    println!(
        "ingest: +{} rows (data epoch → {})",
        report.appended_rows, report.data_epoch
    );
    let after = client.query(sql, WireOptions::default()).expect("rerun");
    assert!(
        !after.cached,
        "ingest must invalidate the cached answer for the table"
    );
    println!("rerun after ingest: cached = {} (fresh scan)", after.cached);

    // ── Server-side metrics, over the wire ───────────────────────────
    let metrics = client.metrics_json().expect("metrics");
    for series in [
        "verdict_server_requests_total",
        "verdict_server_cache_hits_total",
    ] {
        assert!(metrics.contains(series), "metrics must report {series}");
    }
    println!(
        "metrics: {} bytes of JSON, serving counters included",
        metrics.len()
    );

    client.close().expect("close");
    server.shutdown();
    println!("server drained and shut down cleanly");
}
