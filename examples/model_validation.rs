//! The Figure 8 scenario (Appendix B): a model that fits the observed
//! queries but misjudges the unobserved region produces overly optimistic
//! confidence intervals — until validation catches it, and until more
//! queries fix it.
//!
//! Run with: `cargo run --release --example model_validation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::core::covariance::AggMode;
use verdict::core::inference::TrainedModel;
use verdict::core::learning::PriorMean;
use verdict::core::validation::validate;
use verdict::core::{KernelParams, Observation, Region, SchemaInfo};
use verdict::storage::Predicate;
use verdict::workload::synthetic::SmoothField;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(88);
    let schema = SchemaInfo::new(vec![verdict::core::DimensionSpec::numeric("a1", 0.0, 1.0)])?;
    // A wiggly truth on [0, 1] (the paper's ν_g(t) curve in Fig. 8).
    let field = SmoothField::sample(0.4, &mut rng);
    let truth = |lo: f64, hi: f64| -> f64 {
        let steps = 50;
        (0..steps)
            .map(|i| {
                2.5 + 1.5 * field.at((lo + (i as f64 + 0.5) / steps as f64 * (hi - lo)) * 10.0)
            })
            .sum::<f64>()
            / steps as f64
    };
    let region = |lo: f64, hi: f64| -> Region {
        Region::from_predicate(&schema, &Predicate::between("a1", lo, hi)).expect("region")
    };

    // Figure 8(a): after only 3 observations on the left, the most likely
    // model is deliberately over-smooth (long lengthscale) and extrapolates
    // flat — and wrongly — to the right. Figure 8(b): with 10 observations
    // covering the domain, *learned* parameters fit the data.
    let entries_of = |ranges: &[(f64, f64)]| -> Vec<(Region, Observation)> {
        ranges
            .iter()
            .map(|&(lo, hi)| (region(lo, hi), Observation::new(truth(lo, hi), 0.02)))
            .collect()
    };
    let three_entries = entries_of(&[(0.0, 0.1), (0.15, 0.25), (0.3, 0.4)]);
    let three = TrainedModel::fit(
        &schema,
        AggMode::Avg,
        &three_entries,
        KernelParams::constant(1, 2.0, 6.0), // lengthscale 2x the domain!
        PriorMean::Constant(7.0),            // and a wrong prior mean
        1e-9,
    )
    .expect("fit");

    let ten_entries = entries_of(&[
        (0.0, 0.1),
        (0.15, 0.25),
        (0.3, 0.4),
        (0.45, 0.55),
        (0.5, 0.6),
        (0.6, 0.7),
        (0.7, 0.8),
        (0.75, 0.85),
        (0.85, 0.95),
        (0.9, 1.0),
    ]);
    let regions: Vec<&Region> = ten_entries.iter().map(|(r, _)| r).collect();
    let answers: Vec<f64> = ten_entries.iter().map(|(_, o)| o.answer).collect();
    let errors: Vec<f64> = ten_entries.iter().map(|(_, o)| o.error).collect();
    let learned = verdict::core::learning::learn_params(
        &schema,
        AggMode::Avg,
        &regions,
        &answers,
        &errors,
        &verdict::core::VerdictConfig::default(),
    );
    let ten = TrainedModel::fit(
        &schema,
        AggMode::Avg,
        &ten_entries,
        learned.params,
        learned.prior,
        1e-9,
    )
    .expect("fit");

    for (label, model) in [("after 3 queries", &three), ("after 10 queries", &ten)] {
        println!("\n=== {label} ===");
        println!(
            "{:>12} {:>9} {:>9} {:>9} {:>11} {:>10}",
            "range", "truth", "model", "±95%", "raw answer", "validation"
        );
        let mut rejected = 0;
        for i in 0..5 {
            let lo = 0.5 + i as f64 * 0.1;
            let hi = lo + 0.08;
            let t = truth(lo, hi);
            // The AQP engine's raw answer is honest (near the truth).
            let raw = Observation::new(t + 0.01, 0.03);
            let inf = model.infer(&schema, &region(lo, hi), raw);
            let decision = validate(&inf, raw, false, 0.99);
            if !decision.accepted() {
                rejected += 1;
            }
            println!(
                "[{lo:.2},{hi:.2}] {t:>9.3} {:>9.3} {:>9.3} {:>11.3} {:>10}",
                inf.prior_answer,
                1.96 * inf.gamma,
                raw.answer,
                if decision.accepted() {
                    "accept"
                } else {
                    "REJECT"
                }
            );
        }
        println!("validation rejected {rejected}/5 model answers");
    }
    println!("\nWith 3 queries the over-smooth model extrapolates wrongly and the");
    println!("raw answers fall outside its likely region — validation rejects, so");
    println!("users still get correct (raw) error bounds. With 10 queries the model");
    println!("matches the data and the rejections mostly disappear (Figure 8(b)).");
    Ok(())
}
