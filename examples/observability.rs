//! The engine with its instruments on: a metrics hub and query log
//! watch a small serve → train → ingest → serve lifecycle, then the
//! collected telemetry is printed in both exposition formats.
//!
//! Shows the three observability surfaces:
//! - per-query traces (stage timings + engine facts) from the query log,
//! - the metrics registry rendered Prometheus-style and as JSON,
//! - the timing satellites every caller gets for free
//!   (`QueryResult::elapsed`, `IngestReport`, `CheckpointReport`).
//!
//! Run with: `cargo run --release --example observability`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::obs::MetricsHub;
use verdict::workload::synthetic::{generate_table, SyntheticSpec};
use verdict::{Database, QueryOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = SyntheticSpec {
        rows: 60_000,
        ..Default::default()
    };
    let orders = generate_table(&spec, &mut rng);
    let events = generate_table(&spec, &mut rng);

    let hub = Arc::new(MetricsHub::new());
    let db = Database::builder()
        .register_table("orders", orders)
        .register_table("events", events)
        .metrics(Arc::clone(&hub))
        .query_log(256)
        .build()?;

    // A small serving day: ad-hoc warmup on both tables, training, an
    // ingest, then a prepared statement served repeatedly.
    let opts = QueryOptions::new();
    for lo in [0.0_f64, 2.0, 4.0, 6.0] {
        for table in ["orders", "events"] {
            db.query(
                &format!(
                    "SELECT AVG(m) FROM {table} WHERE d0 BETWEEN {lo} AND {}",
                    lo + 2.0
                ),
                &opts,
            )?;
        }
    }
    db.train("orders")?;

    let mut batch_rng = StdRng::seed_from_u64(99);
    let tail = generate_table(
        &SyntheticSpec {
            rows: 2_000,
            ..Default::default()
        },
        &mut batch_rng,
    );
    let rows: Vec<_> = (0..tail.num_rows()).map(|i| tail.row(i)).collect();
    let ingest = db.ingest("orders", &rows)?;
    println!(
        "ingest: {} rows in {:?} ({:?} refitting, {} WAL bytes, widening {:.3})",
        ingest.appended_rows,
        ingest.elapsed,
        ingest.refit_elapsed,
        ingest.wal_bytes,
        ingest.widening_magnitude,
    );

    // The paper's promise, watched live: the same query's error bound
    // shrinks as the synopsis grows and the model refits — each run both
    // benefits from and feeds the learned state.
    println!("\n=== bounds shrinking on a repeated query ===");
    let mut ratios = Vec::new();
    for run in 1..=5 {
        let result = db
            .query(
                "SELECT AVG(m) FROM orders WHERE d0 BETWEEN 1.5 AND 4.5",
                &opts,
            )?
            .unwrap_answered();
        db.train("orders")?;
        let cell = &result.rows[0].values[0];
        let ratio = cell.improved.error / cell.raw_error;
        ratios.push(ratio);
        println!(
            "run {run}: raw ±{:.4} → improved ±{:.4} ({:.0}% of raw) in {:?}",
            cell.raw_error,
            cell.improved.error,
            ratio * 100.0,
            result.elapsed,
        );
    }
    assert!(
        ratios.last().unwrap() <= ratios.first().unwrap(),
        "bounds must not loosen as the synopsis grows"
    );

    let stmt = db.prepare("SELECT AVG(m) FROM orders WHERE d0 BETWEEN ? AND ?")?;
    for lo in [1.0_f64, 3.0, 5.0] {
        let result = stmt
            .bind(&[lo.into(), (lo + 2.0).into()])?
            .run(&opts)?
            .unwrap_answered();
        println!(
            "prepared [{lo}, {}): answer {:.3} ± {:.3} in {:?}",
            lo + 2.0,
            result.rows[0].values[0].improved.answer,
            result.rows[0].values[0].improved.error,
            result.elapsed,
        );
    }

    // Surface 1: the query log — newest traces first, stage by stage.
    println!(
        "\n=== query log (5 most recent of {}) ===",
        db.query_log().unwrap().total_pushed()
    );
    for t in db.recent_queries(5) {
        println!(
            "#{:<3} {:<7} {:<8} epoch {}/{} | {} tuples, {} cells ({} frozen early), {} snippets",
            t.seq,
            t.table,
            if t.prepared { "prepared" } else { "ad-hoc" },
            t.epoch,
            t.data_epoch,
            t.tuples_scanned,
            t.cells,
            t.cells_frozen_early,
            t.snippets_observed,
        );
        let s = &t.stages;
        println!(
            "      parse {:>8}ns | plan {:>8}ns | scan {:>8}ns | infer {:>8}ns | absorb {:>8}ns | total {}ns",
            s.parse_ns, s.plan_ns, s.scan_ns, s.infer_ns, s.absorb_ns, t.elapsed_ns,
        );
    }

    // Surface 2: the metrics registry, Prometheus-style.
    let snapshot = db.metrics_snapshot().unwrap();
    println!("\n=== metrics (text exposition, orders series only) ===");
    for line in snapshot.to_text().lines() {
        if line.contains("table=\"orders\"") {
            println!("{line}");
        }
    }

    // Surface 3: the same tree as JSON, for dashboards.
    let json = snapshot.to_json();
    println!(
        "\n=== metrics (JSON, first 200 chars of {} total) ===",
        json.len()
    );
    println!("{}…", &json[..200.min(json.len())]);

    Ok(())
}
