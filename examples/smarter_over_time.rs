//! The Figure 1 scenario: a database that becomes smarter every time.
//!
//! Weekly counts (like n-gram occurrences in tweets) are queried with
//! `SUM(count)` over week ranges. After 2, 4, and 8 past queries the model
//! is asked to *extrapolate* over the whole timeline — watch the model-only
//! uncertainty shrink as the synopsis grows, exactly like the shaded bands
//! in the paper's Figure 1.
//!
//! Run with: `cargo run --release --example smarter_over_time`

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::core::covariance::AggMode;
use verdict::core::inference::TrainedModel;
use verdict::core::learning::{estimate_prior_mean, estimate_sigma2, learn_params};
use verdict::core::{Observation, Region, SchemaInfo, VerdictConfig};
use verdict::storage::Predicate;
use verdict::workload::timeseries::{self, TimeSeries, WEEKS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2017);
    let ts = timeseries::generate(30e6, 20, &mut rng);
    let schema = SchemaInfo::from_table(&ts.table)?;

    // The eight past queries of Figure 1: AVG(count) over week ranges
    // (SUM = AVG × COUNT; the shape lives in the AVG component).
    let ranges: [(usize, usize); 8] = [
        (10, 20),
        (55, 65),
        (30, 40),
        (80, 90),
        (1, 10),
        (45, 55),
        (68, 78),
        (90, 100),
    ];

    for &n_queries in &[2usize, 4, 8] {
        let entries: Vec<(Region, Observation)> = ranges[..n_queries]
            .iter()
            .map(|&(lo, hi)| {
                let pred = TimeSeries::range_predicate(lo, hi);
                let region = Region::from_predicate(&schema, &pred).expect("region");
                // Exact weekly means as (nearly) noise-free observations.
                let truth = ts.true_range_sum(lo, hi) / (hi - lo + 1) as f64 / 20.0;
                (region, Observation::new(truth, truth * 0.01))
            })
            .collect();

        // Learn parameters and fit the model on these observations.
        let regions: Vec<&Region> = entries.iter().map(|(r, _)| r).collect();
        let answers: Vec<f64> = entries.iter().map(|(_, o)| o.answer).collect();
        let errors: Vec<f64> = entries.iter().map(|(_, o)| o.error).collect();
        let config = VerdictConfig::default();
        let learned = learn_params(&schema, AggMode::Avg, &regions, &answers, &errors, &config);
        let prior = estimate_prior_mean(AggMode::Avg, &schema, &regions, &answers);
        let sigma2 = estimate_sigma2(AggMode::Avg, &schema, &regions, &answers);
        let mut params = learned.params.clone();
        params.sigma2 = sigma2;
        let model = TrainedModel::fit(&schema, AggMode::Avg, &entries, params, prior, 1e-9)?;

        // Sweep the timeline: model-only estimate ± 95% CI per week.
        println!(
            "\n=== after {n_queries} queries (lengthscale {:.1} weeks) ===",
            learned.params.lengthscales[0]
        );
        println!(
            "{:>5} {:>14} {:>14} {:>14}",
            "week", "truth(SUM)", "model(SUM)", "95% CI ±"
        );
        let mut covered = 0usize;
        let mut width_sum = 0.0;
        for week in (5..=WEEKS).step_by(10) {
            let pred = Predicate::between("week", week as f64, week as f64);
            let region = Region::from_predicate(&schema, &pred)?;
            // Model-only: infinite raw error = no new scan at all.
            let inf = model.infer(&schema, &region, Observation::new(0.0, f64::INFINITY));
            let scale = 20.0; // rows per week
            let truth = ts.weekly_totals[week - 1];
            let estimate = inf.model_answer * scale;
            let ci = 1.96 * inf.model_error * scale;
            let hit = (truth - estimate).abs() <= ci;
            covered += hit as usize;
            width_sum += ci;
            println!(
                "{week:>5} {truth:>14.3e} {estimate:>14.3e} {ci:>14.3e}  {}",
                if hit { "✓" } else { "✗" }
            );
        }
        println!(
            "coverage {covered}/10, mean CI half-width {:.3e}",
            width_sum / 10.0
        );
    }
    println!("\nThe confidence band tightens as more queries are observed —");
    println!("the engine got smarter without reading any additional data.");
    Ok(())
}
