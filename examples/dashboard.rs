//! A Customer1-style analytics dashboard session (paper §8.1–8.3).
//!
//! Replays a timestamped trace of analytic queries against an events
//! table: the first half trains the model (as in §8.3), the second half
//! measures how much less data Verdict needs to hit the same error target.
//!
//! Run with: `cargo run --release --example dashboard`

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::workload::customer;
use verdict::{Mode, SessionBuilder, StopPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let trace = customer::generate_trace(150_000, 200, &mut rng);
    println!(
        "events table: {} rows; trace: {} timestamped queries",
        trace.table.num_rows(),
        trace.queries.len()
    );

    let mut session = SessionBuilder::new(trace.table)
        .sample_fraction(0.1)
        .batch_size(500)
        .seed(11)
        .build()?;

    // First half: process queries, learn from every supported one.
    let half = trace.queries.len() / 2;
    let mut supported = 0usize;
    let mut unsupported = 0usize;
    for q in &trace.queries[..half] {
        match session.execute(&q.sql, Mode::Verdict, StopPolicy::ScanAll)? {
            verdict::QueryOutcome::Answered(_) => supported += 1,
            verdict::QueryOutcome::Unsupported(_) => unsupported += 1,
        }
    }
    println!(
        "first half: {supported} supported / {unsupported} unsupported \
         ({:.1}% supported — paper reports 73.7%)",
        supported as f64 / (supported + unsupported) as f64 * 100.0
    );
    session.train()?;

    // Second half: same queries under both modes at a 2.5% error target.
    let policy = StopPolicy::RelativeErrorBound {
        target: 0.025,
        delta: 0.95,
    };
    let mut nl_ns = 0.0;
    let mut vd_ns = 0.0;
    let mut answered = 0usize;
    let mut improved_count = 0usize;
    for q in &trace.queries[half..] {
        let verdict::QueryOutcome::Answered(nl) = session.execute(&q.sql, Mode::NoLearn, policy)?
        else {
            continue;
        };
        let verdict::QueryOutcome::Answered(vd) = session.execute(&q.sql, Mode::Verdict, policy)?
        else {
            continue;
        };
        nl_ns += nl.simulated_ns;
        vd_ns += vd.simulated_ns;
        answered += 1;
        if vd
            .rows
            .iter()
            .any(|r| r.values.iter().any(|c| c.improved.used_model))
        {
            improved_count += 1;
        }
    }
    println!("second half: {answered} supported queries answered under both modes");
    println!(
        "model engaged on {improved_count}/{answered} queries \
         ({:.0}%)",
        improved_count as f64 / answered.max(1) as f64 * 100.0
    );
    println!(
        "total simulated time to 2.5% bounds — NoLearn {:.2}s, Verdict {:.2}s ({:.1}x speedup)",
        nl_ns / 1e9,
        vd_ns / 1e9,
        nl_ns / vd_ns.max(1.0)
    );
    let stats = session.verdict().stats();
    println!(
        "engine stats: improved {}, validation-rejected {}, passed-through {}, observed {}",
        stats.improved, stats.rejected, stats.passed_through, stats.observed
    );
    Ok(())
}
