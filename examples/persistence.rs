//! Persistence: the database stays smarter across restarts.
//!
//! The paper's thesis is that a database *becomes smarter every time* as
//! past answers accumulate. Without durability, that intelligence dies
//! with the process. This example runs the full lifecycle:
//!
//! 1. a fresh session, persisted to disk, warms up on range queries and
//!    trains its model — every observed snippet goes to the write-ahead
//!    snippet log, and training checkpoints a snapshot;
//! 2. the process "restarts" (the session is dropped);
//! 3. a new session opens the store and answers its *first* query with
//!    the same tightened error bound the old session had earned — no
//!    warm-up, no retraining, no extra scans;
//! 4. for contrast, a cold session (no store) answers the same query with
//!    only the raw AQP bound;
//! 5. a torn log tail (simulated crash mid-append) is truncated away on
//!    the next open, and the valid prefix still warm-starts.
//!
//! Run with: `cargo run --release --example persistence`

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::workload::synthetic::{generate_table, SyntheticSpec};
use verdict::{Mode, SessionBuilder, StopPolicy};

const SQL: &str = "SELECT AVG(m) FROM t WHERE d0 BETWEEN 2.5 AND 5.5";

fn main() {
    let dir = std::env::temp_dir().join(format!("verdict-persistence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut rng = StdRng::seed_from_u64(7);
    let spec = SyntheticSpec {
        rows: 40_000,
        ..Default::default()
    };
    let table = generate_table(&spec, &mut rng);

    // ---- Session 1: learn, persist, train. -------------------------------
    println!("session 1: fresh store at {}", dir.display());
    let mut first = SessionBuilder::new(table.clone())
        .sample_fraction(0.1)
        .batch_size(500)
        .seed(7)
        .persist_to(&dir)
        .build()
        .expect("create persistent session");
    for i in 0..16 {
        let lo = i as f64 * 0.625;
        first
            .execute(
                &format!(
                    "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
                    lo + 0.625
                ),
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .expect("warm-up query");
    }
    first.train().expect("train + checkpoint");
    let r = first
        .execute(SQL, Mode::Verdict, StopPolicy::ScanAll)
        .expect("query")
        .unwrap_answered();
    let before = r.rows[0].values[0];
    println!(
        "  improved ±{:.6} vs raw ±{:.6} (model used: {})",
        before.improved.error, before.raw_error, before.improved.used_model
    );
    drop(first); // ---- the process "restarts" ----------------------------

    // ---- Session 2: warm start from disk. --------------------------------
    let mut second = SessionBuilder::open(&dir)
        .expect("open store")
        .build()
        .expect("warm-start session");
    let report = second.recovery_report().expect("recovered").clone();
    println!(
        "session 2: warm start from snapshot gen {} (+{} log records replayed)",
        report.snapshot_gen, report.records_replayed
    );
    let r = second
        .execute(SQL, Mode::Verdict, StopPolicy::ScanAll)
        .expect("first query after reopen")
        .unwrap_answered();
    let after = r.rows[0].values[0];
    println!(
        "  first query: improved ±{:.6} vs raw ±{:.6} (model used: {})",
        after.improved.error, after.raw_error, after.improved.used_model
    );

    // ---- Cold session for contrast. --------------------------------------
    let mut cold = SessionBuilder::new(table)
        .sample_fraction(0.1)
        .batch_size(500)
        .seed(7)
        .build()
        .expect("cold session");
    let r = cold
        .execute(SQL, Mode::Verdict, StopPolicy::ScanAll)
        .expect("cold query")
        .unwrap_answered();
    let coldcell = r.rows[0].values[0];
    println!(
        "cold session (no store): improved ±{:.6} (model used: {})",
        coldcell.improved.error, coldcell.improved.used_model
    );

    // The acceptance criteria, asserted.
    assert!(
        after.improved.error <= after.raw_error,
        "improved bound must never exceed the raw AQP bound (Theorem 1)"
    );
    assert_eq!(
        after.improved.error.to_bits(),
        before.improved.error.to_bits(),
        "warm-started bound must match the pre-restart bound bit-exactly"
    );
    assert!(
        after.improved.used_model,
        "the trained model survived the restart"
    );
    assert!(
        !coldcell.improved.used_model,
        "the cold session has no model"
    );

    // ---- Crash simulation: torn tail on the snippet log. -----------------
    second
        .execute(
            "SELECT AVG(m) FROM t WHERE d0 BETWEEN 7 AND 9",
            Mode::Verdict,
            StopPolicy::ScanAll,
        )
        .expect("post-restart query (logged, not yet snapshotted)");
    drop(second);
    let wal = dir.join("wal.vlog");
    let bytes = std::fs::read(&wal).expect("read log");
    let torn = bytes.len() - 5; // chop mid-record
    std::fs::write(&wal, &bytes[..torn]).expect("tear log tail");
    println!(
        "simulated crash: log torn at byte {torn} of {}",
        bytes.len()
    );

    let third = SessionBuilder::open(&dir)
        .expect("open survives the torn tail")
        .build()
        .expect("recovered session");
    let report = third.recovery_report().expect("recovered").clone();
    println!(
        "session 3: recovered (gen {}, {} records replayed, {} torn bytes truncated)",
        report.snapshot_gen, report.records_replayed, report.torn_bytes
    );
    assert!(report.torn_bytes > 0, "the torn tail was detected");

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nthe model the first session learned kept working after two restarts —");
    println!("the database got smarter, and stayed smarter.");
}
