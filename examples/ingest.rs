//! Live data ingestion: the evolving-table lifecycle (Appendix D).
//!
//! 1. Learn on the original table and train — queries get tight,
//!    model-improved error bounds.
//! 2. `ingest` a drifted batch: the table grows, every maintained sample
//!    admits the new rows, and Lemma 3 widens every stored snippet —
//!    the *same* query now reports a larger (honest) error bound.
//! 3. Re-observe and retrain on the evolved table: bounds tighten again.
//!
//! Run with: `cargo run --release --example ingest`

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::workload::DriftingMeanStream;
use verdict::{Mode, QueryOutcome, SessionBuilder, StopPolicy, VerdictSession};

const SQL: &str = "SELECT AVG(m) FROM t WHERE d0 BETWEEN 2 AND 5";

fn bound(session: &mut VerdictSession, sql: &str) -> Result<(f64, f64, bool), verdict::Error> {
    let r = match session.execute(sql, Mode::Verdict, StopPolicy::ScanAll)? {
        QueryOutcome::Answered(r) => r,
        QueryOutcome::Unsupported(r) => panic!("unsupported: {r:?}"),
    };
    let cell = &r.rows[0].values[0];
    Ok((
        cell.improved.answer,
        cell.improved.error,
        cell.improved.used_model,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut stream = DriftingMeanStream::new(8_000, 0.6, 0.05, 1.5, &mut rng);
    let table = stream.base_table(60_000, &mut rng);

    let mut session = SessionBuilder::new(table)
        .sample_fraction(0.1)
        .batch_size(500)
        .seed(42)
        .build()?;

    // Phase 1: learn the original distribution.
    for lo in 0..9 {
        session.execute(
            &format!("SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}", lo + 1),
            Mode::Verdict,
            StopPolicy::ScanAll,
        )?;
    }
    session.train()?;
    let (a0, e0, m0) = bound(&mut session, SQL)?;
    println!("trained on the original table:");
    println!("  {SQL}");
    println!("  answer {a0:.4} ± {e0:.4} (model used: {m0})\n");

    // Phase 2: the data evolves — ingest a drifted batch.
    let batch = stream.next_batch(&mut rng);
    let report = session.ingest(&batch)?;
    println!(
        "ingested {} rows (mean drifted by {:.2}): {} synopses / {} snippets widened, \
         {} of {} sample(s) rows admitted, data epoch {}",
        report.appended_rows,
        stream.drift_per_batch,
        report.adjusted_keys,
        report.adjusted_snippets,
        report.admitted_rows[0],
        report.admitted_rows.len(),
        report.data_epoch,
    );
    let (a1, e1, m1) = bound(&mut session, SQL)?;
    println!("  stale query: answer {a1:.4} ± {e1:.4} (model used: {m1})");
    println!(
        "  Lemma 3 at work: the bound widened {:.4} → {:.4} (old answers are \
         trusted less, never silently wrong)\n",
        e0, e1
    );
    assert!(
        e1 >= e0,
        "ingest must never tighten a stale bound ({e1} < {e0})"
    );

    // Phase 3: re-learn on the evolved table and retrain.
    for lo in 0..9 {
        session.execute(
            &format!("SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}", lo + 1),
            Mode::Verdict,
            StopPolicy::ScanAll,
        )?;
    }
    session.train()?;
    let (a2, e2, m2) = bound(&mut session, SQL)?;
    println!("re-observed + retrained on the evolved table:");
    println!("  fresh query: answer {a2:.4} ± {e2:.4} (model used: {m2})");
    println!("  bound re-tightened {e1:.4} → {e2:.4}");
    assert!(e2 <= e1, "retraining must re-tighten ({e2} > {e1})");
    Ok(())
}
