//! Out-of-core (demand-paged) parity and durability guarantees through
//! the public session API.
//!
//! The partition cache is a pure performance lever: answers, error
//! bounds, stop points, and learned state must be **bit-identical** at
//! any memory budget (from "one partition barely fits" to "everything
//! resident") and at any thread count — the budget may only change how
//! often segments fault in, never what a query computes. Warm restarts
//! rebuild the identical partition map and sample geometry from the
//! manifest, and torn partition-file tails (a crash mid-append) heal
//! from the WAL on open without changing a single answer.

use std::path::PathBuf;

use proptest::prelude::*;
use verdict::{Mode, QueryResult, SessionBuilder, StopPolicy, VerdictSession};
use verdict_storage::{AggregateFn, Expr, PartitionSpec, Predicate, Table, Value};

const REGIONS: [&str; 10] = ["r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"];

/// A deterministic table: numeric `week` dimension (1..=25), categorical
/// `region` dimension (10 labels), `rev` measure.
fn base_table(rows: usize) -> Table {
    let schema = verdict_storage::Schema::new(vec![
        verdict_storage::ColumnDef::numeric_dimension("week"),
        verdict_storage::ColumnDef::categorical_dimension("region"),
        verdict_storage::ColumnDef::measure("rev"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let week = 1.0 + (i % 25) as f64;
        let region = REGIONS[i % REGIONS.len()];
        let rev = 50.0 + 10.0 * (week / 4.0).sin() + 8.0 * (u - 0.5);
        t.push_row(vec![week.into(), region.into(), rev.into()])
            .unwrap();
    }
    t
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("verdict-ooc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An out-of-core session: range-partitioned on `week` (4 partitions),
/// persisted to `dir`, partition cache bounded to `budget` bytes.
fn paged_session(dir: &PathBuf, rows: usize, budget: u64, threads: usize) -> VerdictSession {
    let s = SessionBuilder::new(base_table(rows))
        .sample_fraction(0.25)
        .batch_size(150)
        .seed(17)
        .parallelism(threads)
        .partition_by(PartitionSpec::range("week", vec![6.0, 12.0, 18.0]))
        .persist_to(dir)
        .memory_budget(budget)
        .query_log(16)
        .build()
        .unwrap();
    assert!(
        s.is_paged(),
        "partition_by + persist_to must go out-of-core"
    );
    s
}

const POLICIES: [StopPolicy; 4] = [
    StopPolicy::ScanAll,
    StopPolicy::TupleBudget(700),
    StopPolicy::TimeBudgetNs(12_000_000.0),
    StopPolicy::RelativeErrorBound {
        target: 0.05,
        delta: 0.95,
    },
];

const QUERIES: [&str; 6] = [
    "SELECT AVG(rev) FROM t WHERE week BETWEEN 2 AND 9",
    "SELECT SUM(rev), COUNT(*) FROM t WHERE week BETWEEN 7 AND 20",
    "SELECT region, AVG(rev) FROM t WHERE week BETWEEN 1 AND 25 GROUP BY region",
    "SELECT week, COUNT(*) FROM t WHERE region IN ('r1', 'r4', 'r7') GROUP BY week",
    "SELECT AVG(rev), SUM(rev) FROM t WHERE week = 13",
    "SELECT COUNT(*) FROM t WHERE week BETWEEN 19 AND 25",
];

/// A bit-exact fingerprint of a query result: group keys, raw and
/// improved answers/errors (as IEEE bits), per-cell scan positions.
fn fingerprint(r: &QueryResult) -> String {
    use std::fmt::Write;
    let mut out = format!("truncated={} tuples={}\n", r.truncated, r.tuples_scanned);
    for row in &r.rows {
        match &row.group {
            None => out.push_str("<all>"),
            Some(key) => {
                for v in key.iter() {
                    match v {
                        Value::Num(x) => write!(out, "n{:016x}|", x.to_bits()).unwrap(),
                        other => write!(out, "{other}|").unwrap(),
                    }
                }
            }
        }
        for c in &row.values {
            write!(
                out,
                " [{:016x} {:016x} {:016x} {:016x} {} {}]",
                c.raw_answer.to_bits(),
                c.raw_error.to_bits(),
                c.improved.answer.to_bits(),
                c.improved.error.to_bits(),
                c.improved.used_model,
                c.tuples_scanned,
            )
            .unwrap();
        }
        out.push('\n');
    }
    out
}

fn run(session: &mut VerdictSession, sql: &str, policy: StopPolicy) -> String {
    let r = session
        .execute(sql, Mode::Verdict, policy)
        .expect("query")
        .unwrap_answered();
    fingerprint(&r)
}

/// The whole (query × policy) grid on one session, in one fixed order —
/// learning is on, so the sequence exercises evolving state too.
fn run_grid(session: &mut VerdictSession) -> Vec<String> {
    let mut out = Vec::new();
    for sql in QUERIES {
        for policy in POLICIES {
            out.push(run(session, sql, policy));
        }
    }
    out
}

/// Answers, error bounds, and stop points are bit-identical at every
/// cache budget (1 byte / a-couple-of-segments / unbounded) and every
/// thread count. Only the cache counters may differ.
#[test]
fn budget_never_changes_answers() {
    for threads in [1usize, 2, 4] {
        let mut reference: Option<Vec<String>> = None;
        for (tag, budget) in [(0u32, 1u64), (1, 20_000), (2, u64::MAX)] {
            let dir = temp_store(&format!("budget-{threads}-{tag}"));
            let mut s = paged_session(&dir, 6_000, budget, threads);
            let got = run_grid(&mut s);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(
                        want, &got,
                        "answers diverged at budget {budget}, {threads} threads"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The acceptance shape: a sampled table ~4x larger than the budget
/// answers bit-identically to the fully-resident configuration, while
/// the cache demonstrably thrashes (evictions happen and residency is
/// held near the budget, not near the full sample size).
#[test]
fn four_x_larger_than_budget_matches_fully_resident() {
    let dir_small = temp_store("fourx-small");
    let dir_big = temp_store("fourx-big");
    // 20k rows, 25% sample: four ~1250-row segments of 3 columns.
    let mut small = paged_session(&dir_small, 20_000, 32_000, 2);
    let mut big = paged_session(&dir_big, 20_000, u64::MAX, 2);
    let a = run_grid(&mut small);
    let b = run_grid(&mut big);
    assert_eq!(a, b, "budgeted answers must match fully-resident answers");
    let c = small.partition_cache().expect("paged session has a cache");
    assert!(c.evictions > 0, "a 4x-over-budget scan must evict: {c:?}");
    assert!(
        c.misses >= c.evictions,
        "an eviction can only follow a fault: {c:?}"
    );
    assert!(
        c.misses > 4,
        "4 partitions re-faulting across the grid must miss repeatedly: {c:?}"
    );
    let full = big.partition_cache().expect("paged session has a cache");
    assert!(
        c.resident_bytes < full.resident_bytes,
        "budgeted residency ({}) must stay below everything-fits residency ({})",
        c.resident_bytes,
        full.resident_bytes
    );
    assert_eq!(full.evictions, 0, "unbounded cache must never evict");
    let _ = std::fs::remove_dir_all(&dir_small);
    let _ = std::fs::remove_dir_all(&dir_big);
}

/// A predicate band provably disjoint from every partition summary is
/// answered without touching a single partition file; a band inside one
/// partition faults exactly that partition's segment.
#[test]
fn pruned_band_reads_zero_partition_files() {
    let dir = temp_store("prune");
    let mut s = paged_session(&dir, 6_000, u64::MAX, 1);
    let before = s.partition_cache().unwrap();
    let r = s
        .execute(
            "SELECT COUNT(*) FROM t WHERE week BETWEEN 100 AND 200",
            Mode::Verdict,
            StopPolicy::ScanAll,
        )
        .unwrap()
        .unwrap_answered();
    let after = s.partition_cache().unwrap();
    assert_eq!(r.rows[0].values[0].raw_answer, 0.0);
    let delta = after.since(&before);
    assert_eq!(
        (delta.misses, delta.hits, delta.bytes_faulted),
        (0, 0, 0),
        "a fully-pruned query must do zero partition I/O: {delta:?}"
    );
    // The trace agrees: all four partitions pruned, nothing faulted.
    let t = &s.recent_queries(1)[0];
    assert_eq!(t.partitions, 4);
    assert_eq!(t.partitions_pruned, 4);
    assert_eq!(t.partition_cache_misses, 0);
    assert_eq!(t.partition_bytes_faulted, 0);

    // Weeks 1..=5 live in partition 0 only: exactly one segment faults.
    let before = s.partition_cache().unwrap();
    s.execute(
        "SELECT AVG(rev) FROM t WHERE week BETWEEN 1 AND 5",
        Mode::Verdict,
        StopPolicy::ScanAll,
    )
    .unwrap()
    .unwrap_answered();
    let delta = s.partition_cache().unwrap().since(&before);
    assert_eq!(
        delta.misses, 1,
        "one in-band partition, one fault: {delta:?}"
    );
    assert!(delta.bytes_faulted > 0);
    let t = &s.recent_queries(1)[0];
    assert_eq!(t.partitions_pruned, 3);
    assert_eq!(t.partition_cache_misses, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm restart: `partition_by` composes with `persist_to`/`open` — a
/// reopened out-of-core session rebuilds the identical partition map and
/// sample geometry from the manifest and keeps answering bit-identically
/// to a twin session that never shut down, across further ingests, at a
/// different (tiny) reopen budget.
#[test]
fn warm_restart_is_bit_identical_to_uninterrupted_twin() {
    let dir = temp_store("warm");
    let dir_twin = temp_store("warm-twin");
    let ingest_batch = |k: u64| -> Vec<Vec<Value>> {
        (0..40u64)
            .map(|i| {
                let week = 1.0 + ((i + 3 * k) % 25) as f64;
                let region = REGIONS[((i + k) % 10) as usize];
                let rev = 40.0 + (i as f64) * 0.25 + k as f64;
                vec![week.into(), region.into(), rev.into()]
            })
            .collect()
    };
    let mut twin = paged_session(&dir_twin, 6_000, u64::MAX, 2);
    {
        let mut s = paged_session(&dir, 6_000, u64::MAX, 2);
        for session in [&mut s, &mut twin] {
            run(session, QUERIES[0], StopPolicy::ScanAll);
            session.ingest(&ingest_batch(0)).expect("ingest");
            run(session, QUERIES[2], StopPolicy::TupleBudget(700));
            session.ingest(&ingest_batch(1)).expect("ingest");
        }
        // `s` drops here: the WAL holds both ingests, the partition
        // files hold their routed rows.
    }
    let mut reopened = SessionBuilder::open(&dir)
        .expect("open")
        .memory_budget(25_000)
        .build()
        .expect("warm session");
    assert!(reopened.is_paged(), "paged-ness must survive reopen");
    // Identical answers on the full grid, a further identical ingest, and
    // identical ground truth from the partition files.
    assert_eq!(run_grid(&mut reopened), run_grid(&mut twin));
    reopened.ingest(&ingest_batch(2)).expect("ingest");
    twin.ingest(&ingest_batch(2)).expect("ingest");
    assert_eq!(run_grid(&mut reopened), run_grid(&mut twin));
    let agg = AggregateFn::Avg(Expr::col("rev"));
    let p = Predicate::between("week", 3.0, 21.0);
    assert_eq!(
        reopened.exact(&agg, &p).unwrap().to_bits(),
        twin.exact(&agg, &p).unwrap().to_bits(),
        "exact() must stream identical partition files"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_twin);
}

/// Crash-fuzz of torn partition-file appends: truncating the tail of
/// every `part-*.vcol` (a crash mid-append after the WAL landed) must
/// heal on open — the WAL re-appends the lost fragments — leaving
/// answers and ground truth bit-identical to an untorn reopen.
#[test]
fn torn_partition_file_tails_heal_from_the_wal() {
    let dir = temp_store("torn");
    {
        let mut s = paged_session(&dir, 4_000, u64::MAX, 1);
        run(&mut s, QUERIES[1], StopPolicy::ScanAll);
        // One row per week: every partition receives an ingest append.
        let rows: Vec<Vec<Value>> = (0..50u64)
            .map(|i| {
                let week = 1.0 + (i % 25) as f64;
                vec![
                    week.into(),
                    REGIONS[(i % 10) as usize].into(),
                    (60.0 + i as f64).into(),
                ]
            })
            .collect();
        s.ingest(&rows).expect("ingest");
        run(&mut s, QUERIES[0], StopPolicy::ScanAll);
    }
    // The untorn oracle: copy the store, reopen, record the grid.
    let copy_store = |src: &PathBuf, dst: &PathBuf| {
        std::fs::create_dir_all(dst).unwrap();
        for entry in std::fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_file() {
                std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
            }
        }
    };
    let clean_dir = temp_store("torn-clean");
    copy_store(&dir, &clean_dir);
    // The store's lock file must not leak into copies as a held lock;
    // opening below re-acquires per directory, so copies are fine.
    let mut clean = SessionBuilder::open(&clean_dir).unwrap().build().unwrap();
    let want = run_grid(&mut clean);
    let agg = AggregateFn::Sum(Expr::col("rev"));
    let want_exact = clean.exact(&agg, &Predicate::True).unwrap().to_bits();
    drop(clean);

    for torn in [1u64, 9, 33, 57] {
        let torn_dir = temp_store(&format!("torn-{torn}"));
        copy_store(&dir, &torn_dir);
        for entry in std::fs::read_dir(&torn_dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("part-") && name.ends_with(".vcol") {
                let len = std::fs::metadata(&path).unwrap().len();
                let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                file.set_len(len.saturating_sub(torn)).unwrap();
            }
        }
        let mut s = SessionBuilder::open(&torn_dir)
            .unwrap_or_else(|e| panic!("open after {torn} torn bytes: {e}"))
            .build()
            .unwrap_or_else(|e| panic!("build after {torn} torn bytes: {e}"));
        assert!(s.is_paged());
        assert_eq!(
            run_grid(&mut s),
            want,
            "answers diverged after tearing {torn} bytes off every partition file"
        );
        assert_eq!(
            s.exact(&agg, &Predicate::True).unwrap().to_bits(),
            want_exact,
            "ground truth diverged after tearing {torn} bytes"
        );
        let _ = std::fs::remove_dir_all(&torn_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

/// Turns one generated tuple into a supported SQL statement + policy.
fn random_query(spec: (u32, u32, u32, u32, usize)) -> (String, StopPolicy) {
    let (lo, width, agg_mask, group, policy) = spec;
    let mut aggs: Vec<&str> = Vec::new();
    if agg_mask & 1 != 0 {
        aggs.push("AVG(rev)");
    }
    if agg_mask & 2 != 0 {
        aggs.push("SUM(rev)");
    }
    if agg_mask & 4 != 0 {
        aggs.push("COUNT(*)");
    }
    let (prefix, group_by) = match group {
        1 => ("region, ", " GROUP BY region"),
        2 => ("week, ", " GROUP BY week"),
        _ => ("", ""),
    };
    let sql = format!(
        "SELECT {prefix}{} FROM t WHERE week BETWEEN {lo} AND {}{group_by}",
        aggs.join(", "),
        lo + width
    );
    (sql, POLICIES[policy])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Property: for arbitrary supported query sequences (learning on,
    /// so state evolves query to query), a one-byte-budget session and
    /// an unbounded one return bit-identical results at 2 worker
    /// threads.
    #[test]
    fn prop_random_queries_identical_across_budgets(
        specs in prop::collection::vec((0u32..20, 1u32..=25, 1u32..8, 0u32..3, 0usize..4), 3..6),
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CASE: AtomicU32 = AtomicU32::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir_a = temp_store(&format!("prop-a-{case}"));
        let dir_b = temp_store(&format!("prop-b-{case}"));
        let mut tight = paged_session(&dir_a, 6_000, 1, 2);
        let mut loose = paged_session(&dir_b, 6_000, u64::MAX, 2);
        for spec in specs {
            let (sql, policy) = random_query(spec);
            let a = run(&mut tight, &sql, policy);
            let b = run(&mut loose, &sql, policy);
            prop_assert_eq!(a, b);
        }
        drop(tight);
        drop(loose);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
