//! Parallel-scan and partition parity: the morsel-driven parallel shared
//! scan must be **bit-identical** to the serial scan — answers, errors,
//! improved bounds, scan accounting, and the synopsis the learned state
//! absorbs — at every thread count, under every stop policy, and for
//! every partition layout (unpartitioned, range, hash). Threads and
//! partitions may change only *how fast* a query scans (and the
//! morsel/prune counters it reports), never *what* it answers or learns.
//!
//! Partition pruning gets its own consistency check: a pruned partition's
//! rows still count toward `tuples_scanned` (the scan position is a
//! property of the sample prefix, not of how much work the executor
//! skipped), so a partitioned session reports the same scan accounting
//! as an unpartitioned one, bit for bit.

use proptest::prelude::*;
use verdict::{Mode, QueryOutcome, QueryResult, SessionBuilder, StopPolicy, VerdictSession};
use verdict_storage::{ColumnDef, PartitionSpec, Schema, Table, Value};

const REGIONS: [&str; 10] = ["r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"];

/// A deterministic table: numeric `week` dimension (1..=25), categorical
/// `region` dimension (10 labels), `rev` measure.
fn base_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::numeric_dimension("week"),
        ColumnDef::categorical_dimension("region"),
        ColumnDef::measure("rev"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let week = 1.0 + (i % 25) as f64;
        let region = REGIONS[i % REGIONS.len()];
        let rev = 50.0 + 10.0 * (week / 4.0).sin() + 8.0 * (u - 0.5);
        t.push_row(vec![week.into(), region.into(), rev.into()])
            .unwrap();
    }
    t
}

/// The partition layouts under test. `None` is the unpartitioned
/// baseline; the range layout cuts the `week` dimension, the hash layout
/// scatters the `region` dimension.
fn layouts() -> [Option<PartitionSpec>; 3] {
    [
        None,
        Some(PartitionSpec::range("week", vec![6.0, 12.0, 18.0])),
        Some(PartitionSpec::hash("region", 5)),
    ]
}

fn session(rows: usize, layout: Option<PartitionSpec>, threads: usize) -> VerdictSession {
    let mut b = SessionBuilder::new(base_table(rows))
        .sample_fraction(0.25)
        .batch_size(150)
        .seed(17)
        .parallelism(threads)
        .query_log(16);
    if let Some(spec) = layout {
        b = b.partition_by(spec);
    }
    b.build().unwrap()
}

#[derive(Debug, Clone)]
struct QuerySpec {
    sql: String,
    policy: StopPolicy,
}

/// Random supported queries: 1–3 aggregates, optional GROUP BY on either
/// dimension, random week range (sometimes an IN-set on region), and a
/// random draw over all four stop policies.
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (0u32..20, 1u32..=25, 1u32..8, 0u32..3, 0u32..4, 0u32..3).prop_map(
        |(lo, width, agg_mask, group, policy, shape)| {
            let mut aggs: Vec<&str> = Vec::new();
            if agg_mask & 1 != 0 {
                aggs.push("AVG(rev)");
            }
            if agg_mask & 2 != 0 {
                aggs.push("SUM(rev)");
            }
            if agg_mask & 4 != 0 {
                aggs.push("COUNT(*)");
            }
            let (select_prefix, group_clause) = match group {
                1 => ("region, ", " GROUP BY region"),
                2 => ("week, ", " GROUP BY week"),
                _ => ("", ""),
            };
            let hi = lo + width;
            let filter = match shape {
                1 => format!("region IN ('r1', 'r4', 'r7') AND week BETWEEN {lo} AND {hi}"),
                2 => format!("week = {}", 1 + lo % 25),
                _ => format!("week BETWEEN {lo} AND {hi}"),
            };
            let sql = format!(
                "SELECT {select_prefix}{} FROM t WHERE {filter}{group_clause}",
                aggs.join(", "),
            );
            let policy = match policy {
                0 => StopPolicy::ScanAll,
                1 => StopPolicy::TupleBudget(700),
                2 => StopPolicy::TimeBudgetNs(12_000_000.0),
                _ => StopPolicy::RelativeErrorBound {
                    target: 0.05,
                    delta: 0.95,
                },
            };
            QuerySpec { sql, policy }
        },
    )
}

/// Group-key equality by bit identity (a NaN key equals itself).
fn groups_identical(
    a: &Option<verdict_storage::GroupKey>,
    b: &Option<verdict_storage::GroupKey>,
) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(ka), Some(kb)) => {
            ka.len() == kb.len()
                && ka.iter().zip(kb.iter()).all(|(x, y)| match (x, y) {
                    (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
                    _ => x == y,
                })
        }
        _ => false,
    }
}

/// Bitwise comparison of two query results, cell for cell.
fn assert_results_match(parallel: &QueryResult, serial: &QueryResult, sql: &str) {
    assert_eq!(parallel.rows.len(), serial.rows.len(), "{sql}");
    assert_eq!(parallel.truncated, serial.truncated, "{sql}");
    assert_eq!(parallel.tuples_scanned, serial.tuples_scanned, "{sql}");
    for (rp, rs) in parallel.rows.iter().zip(serial.rows.iter()) {
        assert!(
            groups_identical(&rp.group, &rs.group),
            "{sql}: {:?} vs {:?}",
            rp.group,
            rs.group
        );
        assert_eq!(rp.values.len(), rs.values.len(), "{sql}");
        for (cp, cs) in rp.values.iter().zip(rs.values.iter()) {
            assert_eq!(
                cp.raw_answer.to_bits(),
                cs.raw_answer.to_bits(),
                "raw answer diverged: {} vs {} for {sql}",
                cp.raw_answer,
                cs.raw_answer
            );
            assert_eq!(
                cp.raw_error.to_bits(),
                cs.raw_error.to_bits(),
                "raw error diverged for {sql}"
            );
            assert_eq!(
                cp.improved.answer.to_bits(),
                cs.improved.answer.to_bits(),
                "improved answer diverged for {sql}"
            );
            assert_eq!(
                cp.improved.error.to_bits(),
                cs.improved.error.to_bits(),
                "improved error diverged for {sql}"
            );
            assert_eq!(cp.improved.used_model, cs.improved.used_model, "{sql}");
            assert_eq!(cp.tuples_scanned, cs.tuples_scanned, "{sql}");
        }
    }
}

/// The recorded synopses must be identical: a parallel scan feeds the
/// learned state exactly what the serial scan did, bit for bit.
fn assert_synopses_match(parallel: &VerdictSession, serial: &VerdictSession) {
    let a = parallel.verdict().export_state();
    let b = serial.verdict().export_state();
    assert_eq!(a.synopses.len(), b.synopses.len(), "synopsis key sets");
    for ((ka, sa), (kb, sb)) in a.synopses.iter().zip(b.synopses.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(sa.len(), sb.len(), "synopsis length for {ka}");
        for (ea, eb) in sa.entries().iter().zip(sb.entries().iter()) {
            assert_eq!(ea.region, eb.region, "region for {ka}");
            assert_eq!(
                ea.observation.answer.to_bits(),
                eb.observation.answer.to_bits(),
                "recorded answer for {ka}"
            );
            assert_eq!(
                ea.observation.error.to_bits(),
                eb.observation.error.to_bits(),
                "recorded error for {ka}"
            );
        }
    }
}

fn run_all(sessions: &mut [VerdictSession], sql: &str, mode: Mode, policy: StopPolicy) {
    let outcomes: Vec<QueryOutcome> = sessions
        .iter_mut()
        .map(|s| s.execute(sql, mode, policy).unwrap())
        .collect();
    let mut it = outcomes.into_iter();
    let reference = it.next().unwrap();
    for outcome in it {
        match (&reference, &outcome) {
            (QueryOutcome::Answered(rs), QueryOutcome::Answered(rp)) => {
                assert_results_match(rp, rs, sql)
            }
            (QueryOutcome::Unsupported(_), QueryOutcome::Unsupported(_)) => {}
            _ => panic!("support classification diverged for {sql}"),
        }
    }
}

/// An ingest batch that deliberately splits across partitions: week
/// values walk the full 1..=25 range (every range partition) and the
/// region labels cycle (every hash bucket), plus a tail past week 25 so
/// numeric bounds must widen.
fn cross_partition_batch(rows: usize, tag: usize) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| {
            let week = if i % 7 == 0 {
                26.0 + ((tag + i) % 5) as f64
            } else {
                1.0 + ((tag + i) % 25) as f64
            };
            vec![
                week.into(),
                REGIONS[(tag + i) % REGIONS.len()].into(),
                (40.0 + (i % 13) as f64).into(),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The headline property: for every partition layout, sessions at 2,
    /// 4, and 8 threads answer a random Verdict-mode query sequence
    /// bit-identically to the single-threaded session — per query and in
    /// the synopsis left behind — with cross-partition ingest batches
    /// interleaved so parity also covers the evolving-table path.
    #[test]
    fn parallel_matches_serial_at_every_thread_count(
        specs in prop::collection::vec(query_spec(), 8..=8),
    ) {
        for layout in layouts() {
            let mut sessions: Vec<VerdictSession> = [1usize, 2, 4, 8]
                .iter()
                .map(|&t| session(6_000, layout.clone(), t))
                .collect();
            for (i, spec) in specs.iter().enumerate() {
                run_all(&mut sessions, &spec.sql, Mode::Verdict, spec.policy);
                if i == 3 {
                    // Mid-sequence ingest hitting every partition: the
                    // partitioned samples and maps must evolve in
                    // lock-step across thread counts.
                    let b = cross_partition_batch(900, i * 31);
                    let reports: Vec<_> =
                        sessions.iter_mut().map(|s| s.ingest(&b).unwrap()).collect();
                    for r in &reports[1..] {
                        prop_assert_eq!(r.appended_rows, reports[0].appended_rows);
                        prop_assert_eq!(&r.admitted_rows, &reports[0].admitted_rows);
                        prop_assert_eq!(r.adjusted_snippets, reports[0].adjusted_snippets);
                    }
                }
            }
            let (serial, parallel) = sessions.split_at(1);
            for p in parallel {
                assert_synopses_match(p, &serial[0]);
            }
        }
    }
}

/// Partition pruning must be invisible in the scan accounting: a pruned
/// partition's rows count toward `tuples_scanned` exactly as if they had
/// been scanned — the scan position is a property of the sample prefix,
/// not of how much work the executor skipped. Two `ScanAll` queries on
/// the same partitioned session, one pruning 24 of 25 partitions and one
/// pruning none, must report the same `tuples_scanned`.
#[test]
fn pruned_partitions_count_toward_tuples_scanned() {
    let mut parted = session(
        8_000,
        Some(PartitionSpec::range(
            "week",
            (1..25).map(|w| w as f64 + 0.5).collect(),
        )),
        2,
    );
    let full = "SELECT COUNT(*), AVG(rev) FROM t WHERE week BETWEEN 1 AND 25";
    let narrow = "SELECT COUNT(*), AVG(rev) FROM t WHERE week = 3";
    let rf = parted
        .execute(full, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let tf = parted.recent_queries(1)[0].clone();
    let rn = parted
        .execute(narrow, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let tn = parted.recent_queries(1)[0].clone();

    assert!(tn.partitions > 0, "partitioned session reports its layout");
    assert!(
        tn.partitions_pruned as f64 >= 0.9 * tn.partitions as f64,
        "an equality predicate on the partition column must prune \
         nearly everything: {} of {}",
        tn.partitions_pruned,
        tn.partitions
    );
    assert_eq!(tf.partitions_pruned, 0, "the full range prunes nothing");
    assert!(
        rn.rows[0].values[0].raw_answer > 0.0,
        "the surviving partition must still answer"
    );
    assert_eq!(
        rn.tuples_scanned, rf.tuples_scanned,
        "pruning must not change the reported scan position"
    );
}

/// Regression (stale partition summaries): sample rows admitted by an
/// ingest land in stride batches past the partition-clustered prefix.
/// Those batches carry no partition tag and must never be pruned — a
/// query selecting *only* appended-row values would otherwise return a
/// silent zero.
#[test]
fn appended_rows_survive_partition_pruning() {
    let mut parted = session(
        4_000,
        Some(PartitionSpec::range("week", vec![6.0, 12.0, 18.0])),
        4,
    );
    let sql = "SELECT COUNT(*) FROM t WHERE week BETWEEN 26 AND 30";
    let pre = parted
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert_eq!(pre.rows[0].values[0].raw_answer, 0.0, "no such weeks yet");
    // Weeks 26..=30 route past every range cut into the last partition,
    // widening its summary beyond the original table's bounds.
    let batch: Vec<Vec<Value>> = (0..2_000)
        .map(|i| {
            vec![
                (26.0 + (i % 5) as f64).into(),
                REGIONS[i % REGIONS.len()].into(),
                (40.0 + (i % 13) as f64).into(),
            ]
        })
        .collect();
    parted.ingest(&batch).unwrap();
    let post = parted
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert!(
        post.rows[0].values[0].raw_answer > 0.0,
        "appended rows invisible to the partitioned scan: {}",
        post.rows[0].values[0].raw_answer
    );
}

/// The morsel counters reach the query log: a multi-threaded scan
/// reports the morsels its workers claimed (steals are a subset), and a
/// single-threaded session reports none — the serial path never pays
/// for the scheduler.
#[test]
fn morsel_counters_reach_the_query_log() {
    let mut parallel = session(6_000, None, 4);
    let mut serial = session(6_000, None, 1);
    let sql = "SELECT AVG(rev) FROM t WHERE week BETWEEN 1 AND 25";
    parallel
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap();
    serial
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap();
    let tp = &parallel.recent_queries(1)[0];
    let ts = &serial.recent_queries(1)[0];
    assert!(tp.morsels > 0, "parallel scan reports its morsels");
    assert!(tp.morsels_stolen <= tp.morsels);
    assert_eq!(ts.morsels, 0, "serial scan never builds morsels");
    assert_eq!(ts.morsels_stolen, 0);
}
