//! Integration tests: the full SQL → snippets → AQP → inference pipeline
//! across crates, on the TPC-H-style workload.

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::{Mode, QueryOutcome, SessionBuilder, StopPolicy};
use verdict_workload::tpch;

fn tpch_session(rows: usize, seed: u64) -> verdict::VerdictSession {
    let mut rng = StdRng::seed_from_u64(seed);
    let table = tpch::generate_denormalized(rows, &mut rng);
    SessionBuilder::new(table)
        .sample_fraction(0.1)
        .batch_size(500)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn all_supported_tpch_templates_execute() {
    let mut session = tpch_session(20_000, 1);
    let mut rng = StdRng::seed_from_u64(2);
    for t in tpch::templates().into_iter().filter(|t| t.supported) {
        let sql = tpch::instantiate(&t, &mut rng);
        let out = session
            .execute(&sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap_or_else(|e| panic!("Q{} failed: {e}\n{sql}", t.id));
        assert!(out.is_answered(), "Q{} classified unsupported: {sql}", t.id);
    }
}

#[test]
fn all_unsupported_tpch_templates_classified() {
    let mut session = tpch_session(5_000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    for t in tpch::templates().into_iter().filter(|t| !t.supported) {
        let sql = tpch::instantiate(&t, &mut rng);
        let out = session
            .execute(&sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap();
        assert!(!out.is_answered(), "Q{} should be unsupported: {sql}", t.id);
    }
}

#[test]
fn theorem1_holds_across_tpch_workload() {
    let mut session = tpch_session(30_000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    // Train on 30 queries.
    for sql in tpch::generate_supported_queries(30, &mut rng) {
        session
            .execute(&sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap();
    }
    session.train().unwrap();
    // Every cell of every subsequent query obeys β̂ ≤ β.
    for sql in tpch::generate_supported_queries(20, &mut rng) {
        let QueryOutcome::Answered(result) = session
            .execute(&sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
        else {
            continue;
        };
        for row in &result.rows {
            for cell in &row.values {
                if cell.raw_error.is_finite() {
                    assert!(
                        cell.improved.error <= cell.raw_error * (1.0 + 1e-9),
                        "β̂ {} > β {} for {sql}",
                        cell.improved.error,
                        cell.raw_error
                    );
                }
            }
        }
    }
}

#[test]
fn group_by_query_returns_group_rows_with_improvements() {
    let mut session = tpch_session(30_000, 7);
    let mut rng = StdRng::seed_from_u64(8);
    for sql in tpch::generate_supported_queries(30, &mut rng) {
        session
            .execute(&sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap();
    }
    session.train().unwrap();
    let result = session
        .execute(
            "SELECT returnflag, SUM(price), COUNT(*) FROM lineitem WHERE ship_week <= 60 GROUP BY returnflag",
            Mode::Verdict,
            StopPolicy::ScanAll,
        )
        .unwrap()
        .unwrap_answered();
    assert_eq!(result.rows.len(), 3, "three return flags");
    for row in &result.rows {
        assert!(row.group.is_some());
        assert_eq!(row.values.len(), 2, "two aggregates per group");
    }
}

#[test]
fn answers_track_exact_values() {
    let mut session = tpch_session(40_000, 9);
    let sql = "SELECT AVG(price) FROM lineitem WHERE ship_week BETWEEN 20 AND 60";
    let result = session
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let cell = &result.rows[0].values[0];
    let q = verdict_sql::parse_query(sql).unwrap();
    let d = verdict_sql::decompose(&q, session.table(), &[], 1).unwrap();
    let exact = session
        .exact(&d.snippets[0].agg, &d.snippets[0].predicate)
        .unwrap();
    let rel = (cell.raw_answer - exact).abs() / exact.abs();
    assert!(rel < 0.05, "relative error {rel}");
    // The 99.7% bound should cover the actual deviation.
    assert!((cell.raw_answer - exact).abs() <= 3.5 * cell.raw_error + 1e-9);
}

#[test]
fn nmax_caps_group_snippets() {
    let mut rng = StdRng::seed_from_u64(10);
    let table = tpch::generate_denormalized(10_000, &mut rng);
    let config = verdict_core::VerdictConfig {
        nmax: 2,
        ..Default::default()
    };
    let mut session = SessionBuilder::new(table)
        .sample_fraction(0.2)
        .seed(10)
        .verdict_config(config)
        .build()
        .unwrap();
    let result = session
        .execute(
            "SELECT brand, COUNT(*) FROM lineitem GROUP BY brand",
            Mode::Verdict,
            StopPolicy::ScanAll,
        )
        .unwrap()
        .unwrap_answered();
    assert!(result.truncated, "10 brands but nmax = 2");
    assert_eq!(result.rows.len(), 2);
}
