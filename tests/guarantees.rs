//! Integration tests for the paper's statistical guarantees across the
//! full stack (storage → AQP → inference).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verdict::{Mode, QueryOutcome, SessionBuilder, StopPolicy};
use verdict_workload::synthetic::{generate_table, SyntheticSpec};

fn synthetic_session(rows: usize, seed: u64) -> verdict::VerdictSession {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = SyntheticSpec {
        rows,
        numeric_dims: 1,
        categorical_dims: 1,
        smoothness: 1.5,
        noise: 0.1,
        ..Default::default()
    };
    let table = generate_table(&spec, &mut rng);
    SessionBuilder::new(table)
        .sample_fraction(0.1)
        .batch_size(500)
        .seed(seed)
        .build()
        .unwrap()
}

/// Warm up with overlapping range queries and train.
fn warmed(rows: usize, seed: u64) -> verdict::VerdictSession {
    let mut s = synthetic_session(rows, seed);
    for i in 0..20 {
        let lo = (i % 10) as f64;
        let sql = format!(
            "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
            lo + 1.0
        );
        s.execute(&sql, Mode::Verdict, StopPolicy::ScanAll).unwrap();
    }
    s.train().unwrap();
    s
}

#[test]
fn error_bounds_cover_truth_at_95pct() {
    // Verdict's 95% bounds must cover the exact answer in at least ~95% of
    // queries (Figure 5's claim). Allow slack for the finite query count.
    let mut s = warmed(100_000, 21);
    let mut rng = StdRng::seed_from_u64(22);
    let mut covered = 0usize;
    let mut total = 0usize;
    for _ in 0..60 {
        let lo = rng.gen::<f64>() * 8.0;
        let hi = lo + 0.5 + rng.gen::<f64>() * 1.5;
        let sql = format!("SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {hi}");
        let QueryOutcome::Answered(r) = s
            .execute(&sql, Mode::Verdict, StopPolicy::TupleBudget(4000))
            .unwrap()
        else {
            continue;
        };
        let cell = &r.rows[0].values[0];
        let q = verdict_sql::parse_query(&sql).unwrap();
        let d = verdict_sql::decompose(&q, s.table(), &[], 1).unwrap();
        let exact = s
            .exact(&d.snippets[0].agg, &d.snippets[0].predicate)
            .unwrap();
        if !cell.improved.bound(0.95).is_finite() {
            continue;
        }
        total += 1;
        if (cell.improved.answer - exact).abs() <= cell.improved.bound(0.95) {
            covered += 1;
        }
    }
    assert!(total >= 40, "too few measurable queries: {total}");
    let rate = covered as f64 / total as f64;
    assert!(rate >= 0.85, "coverage {rate} ({covered}/{total})");
}

#[test]
fn improved_answers_reduce_actual_error_on_average() {
    // The headline claim: given the same scanned data, Verdict's answers
    // are closer to the truth on average than the raw AQP answers.
    let mut s = warmed(100_000, 31);
    let mut rng = StdRng::seed_from_u64(32);
    let mut raw_errs = Vec::new();
    let mut verdict_errs = Vec::new();
    for _ in 0..50 {
        let lo = rng.gen::<f64>() * 8.0;
        let hi = lo + 0.5 + rng.gen::<f64>() * 1.5;
        let sql = format!("SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {hi}");
        let QueryOutcome::Answered(r) = s
            .execute(&sql, Mode::Verdict, StopPolicy::TupleBudget(1500))
            .unwrap()
        else {
            continue;
        };
        let cell = &r.rows[0].values[0];
        let q = verdict_sql::parse_query(&sql).unwrap();
        let d = verdict_sql::decompose(&q, s.table(), &[], 1).unwrap();
        let exact = s
            .exact(&d.snippets[0].agg, &d.snippets[0].predicate)
            .unwrap();
        raw_errs.push((cell.raw_answer - exact).abs());
        verdict_errs.push((cell.improved.answer - exact).abs());
    }
    let raw_mean: f64 = raw_errs.iter().sum::<f64>() / raw_errs.len() as f64;
    let vd_mean: f64 = verdict_errs.iter().sum::<f64>() / verdict_errs.len() as f64;
    assert!(
        vd_mean <= raw_mean,
        "verdict mean actual error {vd_mean} > raw {raw_mean}"
    );
}

#[test]
fn unseen_ranges_still_get_valid_answers() {
    // Warm-up only covers d0 in [0, 10]; query a range the synopsis has
    // never seen (extrapolation) — the answer must stay near the raw one
    // or be validated away, never silently wrong.
    let mut s = synthetic_session(50_000, 41);
    for i in 0..8 {
        let lo = i as f64 * 0.5;
        let sql = format!(
            "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
            lo + 0.5
        );
        s.execute(&sql, Mode::Verdict, StopPolicy::ScanAll).unwrap();
    }
    s.train().unwrap();
    let sql = "SELECT AVG(m) FROM t WHERE d0 BETWEEN 8.5 AND 9.5";
    let r = s
        .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let cell = &r.rows[0].values[0];
    let q = verdict_sql::parse_query(sql).unwrap();
    let d = verdict_sql::decompose(&q, s.table(), &[], 1).unwrap();
    let exact = s
        .exact(&d.snippets[0].agg, &d.snippets[0].predicate)
        .unwrap();
    // 99.9%-ish sanity: answer within 5 bounds of truth.
    let bound = cell.improved.bound(0.95).max(cell.raw_error * 2.0);
    assert!(
        (cell.improved.answer - exact).abs() <= 5.0 * bound.max(0.05),
        "extrapolated answer {} vs exact {exact} (bound {bound})",
        cell.improved.answer
    );
}

#[test]
fn freq_counts_never_negative() {
    let mut s = warmed(50_000, 51);
    let mut rng = StdRng::seed_from_u64(52);
    for _ in 0..30 {
        let lo = rng.gen::<f64>() * 9.0;
        let sql = format!(
            "SELECT COUNT(*) FROM t WHERE d0 BETWEEN {lo} AND {}",
            lo + 0.2
        );
        let QueryOutcome::Answered(r) = s
            .execute(&sql, Mode::Verdict, StopPolicy::TupleBudget(1000))
            .unwrap()
        else {
            continue;
        };
        let cell = &r.rows[0].values[0];
        assert!(
            cell.improved.answer >= 0.0,
            "negative count {}",
            cell.improved.answer
        );
        let (lo_ci, _) = cell.improved.interval(0.95, true);
        assert!(lo_ci >= 0.0, "negative count CI {lo_ci}");
    }
}

#[test]
fn nolearn_and_verdict_agree_when_untrained() {
    let mut s = synthetic_session(20_000, 61);
    let sql = "SELECT AVG(m) FROM t WHERE d0 BETWEEN 1 AND 3";
    let a = s
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let b = s
        .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let ca = &a.rows[0].values[0];
    let cb = &b.rows[0].values[0];
    assert_eq!(ca.raw_answer, cb.raw_answer);
    assert_eq!(
        cb.improved.answer, cb.raw_answer,
        "untrained = pass-through"
    );
    assert!(!cb.improved.used_model);
}
