//! End-to-end persistence guarantees through the public session API:
//! reopened sessions answer identically, and crash-truncated stores
//! recover to a valid prefix of the learned state.

use rand::rngs::StdRng;
use rand::SeedableRng;
use verdict::workload::synthetic::{generate_table, SyntheticSpec};
use verdict::{Mode, SessionBuilder, StopPolicy};
use verdict_storage::Table;

fn test_table(rows: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(41);
    let spec = SyntheticSpec {
        rows,
        ..Default::default()
    };
    generate_table(&spec, &mut rng)
}

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("verdict-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn warm_up(session: &mut verdict::VerdictSession) {
    for i in 0..14 {
        let lo = i as f64 * 0.7;
        session
            .execute(
                &format!(
                    "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
                    lo + 0.7
                ),
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .expect("warm-up query");
    }
}

const TEST_QUERIES: &[&str] = &[
    "SELECT AVG(m) FROM t WHERE d0 BETWEEN 1 AND 3",
    "SELECT AVG(m) FROM t WHERE d0 BETWEEN 4.2 AND 6.9",
    "SELECT SUM(m) FROM t WHERE d0 <= 5",
    "SELECT COUNT(*) FROM t WHERE d0 BETWEEN 2 AND 8",
];

/// A reopened session returns bit-identical improved answers and error
/// bounds to the session that wrote the store.
#[test]
fn reopened_session_answers_identically() {
    let dir = temp_store("identical");
    let mut answers = Vec::new();
    {
        let mut s = SessionBuilder::new(test_table(30_000))
            .sample_fraction(0.1)
            .batch_size(400)
            .seed(3)
            .persist_to(&dir)
            .build()
            .expect("persistent session");
        warm_up(&mut s);
        s.train().expect("train");
        for sql in TEST_QUERIES {
            let r = s
                .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
                .expect("query")
                .unwrap_answered();
            let cell = r.rows[0].values[0];
            answers.push((cell.improved.answer, cell.improved.error, cell.raw_error));
        }
    }
    let mut s = SessionBuilder::open(&dir)
        .expect("open")
        .build()
        .expect("warm session");
    for (sql, (answer, error, raw_error)) in TEST_QUERIES.iter().zip(&answers) {
        let r = s
            .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
            .expect("query after reopen")
            .unwrap_answered();
        let cell = r.rows[0].values[0];
        assert_eq!(
            cell.improved.answer.to_bits(),
            answer.to_bits(),
            "answer drifted for {sql}"
        );
        assert_eq!(
            cell.improved.error.to_bits(),
            error.to_bits(),
            "bound drifted for {sql}"
        );
        assert_eq!(cell.raw_error.to_bits(), raw_error.to_bits());
        assert!(cell.improved.error <= cell.raw_error + 1e-12, "Theorem 1");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The warm-started session's first-query bound beats a cold session's,
/// and equals the raw bound at worst (the acceptance criterion).
#[test]
fn warm_start_beats_cold_start() {
    let dir = temp_store("beats-cold");
    let sql = "SELECT AVG(m) FROM t WHERE d0 BETWEEN 3 AND 6";
    {
        let mut s = SessionBuilder::new(test_table(30_000))
            .sample_fraction(0.1)
            .batch_size(400)
            .seed(3)
            .persist_to(&dir)
            .build()
            .expect("persistent session");
        warm_up(&mut s);
        s.train().expect("train");
    }
    let mut warm = SessionBuilder::open(&dir)
        .expect("open")
        .build()
        .expect("warm");
    let warm_cell = warm
        .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
        .expect("warm query")
        .unwrap_answered()
        .rows[0]
        .values[0];
    let mut cold = SessionBuilder::new(test_table(30_000))
        .sample_fraction(0.1)
        .batch_size(400)
        .seed(3)
        .build()
        .expect("cold");
    let cold_cell = cold
        .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
        .expect("cold query")
        .unwrap_answered()
        .rows[0]
        .values[0];
    assert!(warm_cell.improved.used_model, "warm session has the model");
    assert!(!cold_cell.improved.used_model, "cold session does not");
    assert!(
        warm_cell.improved.error < cold_cell.improved.error,
        "warm bound {} must beat cold bound {}",
        warm_cell.improved.error,
        cold_cell.improved.error
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-log crash safety end to end: whatever byte the "crash" cut the
/// log at, the store opens, the state is a valid prefix, and queries run.
#[test]
fn crash_truncation_always_recovers() {
    let dir = temp_store("crash");
    {
        let mut s = SessionBuilder::new(test_table(10_000))
            .sample_fraction(0.1)
            .batch_size(400)
            .seed(3)
            .persist_to(&dir)
            .build()
            .expect("persistent session");
        // Queries observed but never checkpointed: they live only in the
        // log.
        for i in 0..6 {
            let lo = i as f64 * 1.4;
            s.execute(
                &format!(
                    "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
                    lo + 1.4
                ),
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .expect("logged query");
        }
    }
    let wal = dir.join("wal.vlog");
    let full = std::fs::read(&wal).expect("log bytes");
    let mut prev_replayed = 0u64;
    // Sweep truncation points across the whole file, including inside the
    // header and mid-record.
    for cut in (0..full.len()).step_by(11).chain([full.len() - 1]) {
        std::fs::write(&wal, &full[..cut]).expect("truncate");
        let mut s = SessionBuilder::open(&dir)
            .expect("open after crash")
            .build()
            .expect("session after crash");
        let report = s.recovery_report().expect("report").clone();
        // The recovery is a valid prefix of what was logged: never more
        // records than were written, never fewer than a shorter cut
        // recovered, and the in-memory state mirrors the replay exactly.
        assert!(
            report.records_replayed <= 6,
            "phantom records at cut {cut}: {}",
            report.records_replayed
        );
        assert!(
            report.records_replayed >= prev_replayed,
            "cut {cut} recovered {} records, shorter cut recovered {prev_replayed}",
            report.records_replayed
        );
        prev_replayed = report.records_replayed;
        assert_eq!(
            s.verdict().stats().observed,
            report.records_replayed,
            "recovered state diverges from the replay count at cut {cut}"
        );
        // The recovered session still answers queries.
        let r = s
            .execute(
                "SELECT AVG(m) FROM t WHERE d0 BETWEEN 1 AND 2",
                Mode::Verdict,
                StopPolicy::TupleBudget(400),
            )
            .expect("query on recovered session");
        assert!(r.is_answered());
    }
    // The untruncated log recovers everything.
    std::fs::write(&wal, &full).expect("restore");
    let s = SessionBuilder::open(&dir)
        .expect("open intact")
        .build()
        .expect("session");
    assert_eq!(s.recovery_report().expect("report").records_replayed, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction under sustained load: the log is periodically folded into
/// snapshots, old generations are pruned, and nothing is lost.
#[test]
fn sustained_load_compacts_without_losing_state() {
    let dir = temp_store("compact");
    use verdict::store::StorePolicy;
    let policy = StorePolicy {
        compact_after_records: 8,
        ..Default::default()
    };
    let total_queries = 30usize;
    {
        let mut s = SessionBuilder::new(test_table(10_000))
            .sample_fraction(0.1)
            .batch_size(400)
            .seed(3)
            .persist_to(&dir)
            .store_policy(policy)
            .build()
            .expect("persistent session");
        for i in 0..total_queries {
            let lo = (i % 12) as f64 * 0.8;
            s.execute(
                &format!(
                    "SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}",
                    lo + 0.8
                ),
                Mode::Verdict,
                StopPolicy::TupleBudget(500),
            )
            .expect("query");
        }
        let observed_live = s.verdict().stats().observed;
        drop(s);
        let s = SessionBuilder::open(&dir)
            .expect("open")
            .build()
            .expect("reopen");
        assert_eq!(
            s.verdict().stats().observed,
            observed_live,
            "compaction must not lose or duplicate observations"
        );
        let report = s.recovery_report().unwrap();
        assert!(
            report.snapshot_gen >= 2,
            "sustained load produced snapshots (gen {})",
            report.snapshot_gen
        );
    }
    // Old generations pruned: at most keep_generations snapshot files.
    let snaps = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".vsnap")
        })
        .count();
    assert!(snaps <= 2, "generations pruned (found {snaps})");
    let _ = std::fs::remove_dir_all(&dir);
}
