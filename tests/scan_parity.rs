//! Kernel parity: the chunked scan kernel (typed columnar chunks,
//! branch-free predicate masks, zone-map pruning) must be **bit-identical**
//! to the row-wise reference kernel end to end — answers, errors, improved
//! bounds, scan accounting, and the synopsis the learned state absorbs —
//! for arbitrary supported queries at every stop policy. The kernels may
//! differ only in *how fast* they scan (and in the chunk counters they
//! report), never in *what* any query answers or learns.
//!
//! The suite also covers the evolving-table path: ingest batches sized to
//! straddle chunk boundaries force the incremental zone-map extension,
//! and post-ingest queries re-check parity — the regression surface for
//! stale zone bounds pruning freshly appended rows.

use proptest::prelude::*;
use std::sync::Arc;
use verdict::obs::MetricsHub;
use verdict::{
    Mode, QueryOutcome, QueryResult, ScanKernel, SessionBuilder, StopPolicy, VerdictSession,
};
use verdict_storage::{ColumnDef, Schema, Table, Value};

const REGIONS: [&str; 10] = ["r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"];

/// A deterministic table: numeric `week` dimension (1..=25), categorical
/// `region` dimension (10 labels), `rev` measure.
fn base_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::numeric_dimension("week"),
        ColumnDef::categorical_dimension("region"),
        ColumnDef::measure("rev"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let week = 1.0 + (i % 25) as f64;
        let region = REGIONS[i % REGIONS.len()];
        let rev = 50.0 + 10.0 * (week / 4.0).sin() + 8.0 * (u - 0.5);
        t.push_row(vec![week.into(), region.into(), rev.into()])
            .unwrap();
    }
    t
}

/// Two sessions over the identical table and sample, one per kernel.
/// `metrics` attaches a hub + query log to *one* of them, proving the
/// observability path cannot perturb answers.
fn session_pair(rows: usize, metrics: bool) -> (VerdictSession, VerdictSession) {
    let build = |kernel: ScanKernel, with_hub: bool| {
        let mut b = SessionBuilder::new(base_table(rows))
            .sample_fraction(0.25)
            .batch_size(150)
            .seed(17)
            .scan_kernel(kernel);
        if with_hub {
            b = b.metrics(Arc::new(MetricsHub::new())).query_log(32);
        }
        b.build().unwrap()
    };
    (
        build(ScanKernel::Chunked, metrics),
        build(ScanKernel::RowWise, false),
    )
}

#[derive(Debug, Clone)]
struct QuerySpec {
    sql: String,
    policy: StopPolicy,
}

/// Random supported queries: 1–3 aggregates, optional GROUP BY on either
/// dimension, random week range (sometimes empty / sometimes IN-set on
/// region), and a random draw over all four stop policies.
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (0u32..20, 1u32..=25, 1u32..8, 0u32..3, 0u32..4, 0u32..3).prop_map(
        |(lo, width, agg_mask, group, policy, shape)| {
            let mut aggs: Vec<&str> = Vec::new();
            if agg_mask & 1 != 0 {
                aggs.push("AVG(rev)");
            }
            if agg_mask & 2 != 0 {
                aggs.push("SUM(rev)");
            }
            if agg_mask & 4 != 0 {
                aggs.push("COUNT(*)");
            }
            let (select_prefix, group_clause) = match group {
                1 => ("region, ", " GROUP BY region"),
                2 => ("week, ", " GROUP BY week"),
                _ => ("", ""),
            };
            let hi = lo + width;
            let filter = match shape {
                // A categorical IN-set exercises the bitset kernel and
                // CatZone pruning; the narrow range exercises NumZone.
                1 => format!("region IN ('r1', 'r4', 'r7') AND week BETWEEN {lo} AND {hi}"),
                // Selective range: most chunks prunable on ordered weeks.
                2 => format!("week = {}", 1 + lo % 25),
                _ => format!("week BETWEEN {lo} AND {hi}"),
            };
            let sql = format!(
                "SELECT {select_prefix}{} FROM t WHERE {filter}{group_clause}",
                aggs.join(", "),
            );
            let policy = match policy {
                0 => StopPolicy::ScanAll,
                1 => StopPolicy::TupleBudget(700),
                2 => StopPolicy::TimeBudgetNs(12_000_000.0),
                _ => StopPolicy::RelativeErrorBound {
                    target: 0.05,
                    delta: 0.95,
                },
            };
            QuerySpec { sql, policy }
        },
    )
}

/// Group-key equality by bit identity (a NaN key equals itself).
fn groups_identical(
    a: &Option<verdict_storage::GroupKey>,
    b: &Option<verdict_storage::GroupKey>,
) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(ka), Some(kb)) => {
            ka.len() == kb.len()
                && ka.iter().zip(kb.iter()).all(|(x, y)| match (x, y) {
                    (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
                    _ => x == y,
                })
        }
        _ => false,
    }
}

/// Bitwise comparison of two query results, cell for cell.
fn assert_results_match(chunked: &QueryResult, rowwise: &QueryResult, sql: &str) {
    assert_eq!(chunked.rows.len(), rowwise.rows.len(), "{sql}");
    assert_eq!(chunked.truncated, rowwise.truncated, "{sql}");
    assert_eq!(chunked.tuples_scanned, rowwise.tuples_scanned, "{sql}");
    for (rc, rr) in chunked.rows.iter().zip(rowwise.rows.iter()) {
        assert!(
            groups_identical(&rc.group, &rr.group),
            "{sql}: {:?} vs {:?}",
            rc.group,
            rr.group
        );
        assert_eq!(rc.values.len(), rr.values.len(), "{sql}");
        for (cc, cr) in rc.values.iter().zip(rr.values.iter()) {
            assert_eq!(
                cc.raw_answer.to_bits(),
                cr.raw_answer.to_bits(),
                "raw answer diverged: {} vs {} for {sql}",
                cc.raw_answer,
                cr.raw_answer
            );
            assert_eq!(
                cc.raw_error.to_bits(),
                cr.raw_error.to_bits(),
                "raw error diverged: {} vs {} for {sql}",
                cc.raw_error,
                cr.raw_error
            );
            assert_eq!(
                cc.improved.answer.to_bits(),
                cr.improved.answer.to_bits(),
                "improved answer diverged for {sql}"
            );
            assert_eq!(
                cc.improved.error.to_bits(),
                cr.improved.error.to_bits(),
                "improved error diverged for {sql}"
            );
            assert_eq!(cc.improved.used_model, cr.improved.used_model, "{sql}");
            assert_eq!(cc.tuples_scanned, cr.tuples_scanned, "{sql}");
        }
    }
}

/// The recorded synopses must be identical: the chunked kernel feeds the
/// learned state exactly what the row-wise kernel did, bit for bit.
fn assert_synopses_match(chunked: &VerdictSession, rowwise: &VerdictSession) {
    let a = chunked.verdict().export_state();
    let b = rowwise.verdict().export_state();
    assert_eq!(a.synopses.len(), b.synopses.len(), "synopsis key sets");
    for ((ka, sa), (kb, sb)) in a.synopses.iter().zip(b.synopses.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(sa.len(), sb.len(), "synopsis length for {ka}");
        for (ea, eb) in sa.entries().iter().zip(sb.entries().iter()) {
            assert_eq!(ea.region, eb.region, "region for {ka}");
            assert_eq!(
                ea.observation.answer.to_bits(),
                eb.observation.answer.to_bits(),
                "recorded answer for {ka}"
            );
            assert_eq!(
                ea.observation.error.to_bits(),
                eb.observation.error.to_bits(),
                "recorded error for {ka}"
            );
        }
    }
}

fn run_pair(
    chunked: &mut VerdictSession,
    rowwise: &mut VerdictSession,
    sql: &str,
    mode: Mode,
    policy: StopPolicy,
) {
    let out_c = chunked.execute(sql, mode, policy).unwrap();
    let out_r = rowwise.execute(sql, mode, policy).unwrap();
    match (out_c, out_r) {
        (QueryOutcome::Answered(rc), QueryOutcome::Answered(rr)) => {
            assert_results_match(&rc, &rr, sql)
        }
        (QueryOutcome::Unsupported(_), QueryOutcome::Unsupported(_)) => {}
        _ => panic!("support classification diverged for {sql}"),
    }
}

/// An ingest batch whose row values extend the week range past the
/// original table's bounds (so zone maps must widen).
fn batch(rows: usize, tag: usize) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| {
            vec![
                (26.0 + ((tag + i) % 5) as f64).into(),
                REGIONS[(tag + i) % REGIONS.len()].into(),
                (40.0 + (i % 13) as f64).into(),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// NoLearn mode: raw pipeline parity over a random query sequence,
    /// with metrics attached to the chunked side only.
    #[test]
    fn chunked_matches_rowwise_nolearn(specs in prop::collection::vec(query_spec(), 18..=18)) {
        let (mut chunked, mut rowwise) = session_pair(6_000, true);
        for spec in &specs {
            run_pair(&mut chunked, &mut rowwise, &spec.sql, Mode::NoLearn, spec.policy);
        }
    }

    /// Verdict mode: inference + validation + synopsis recording parity,
    /// with models trained mid-sequence so later queries engage them.
    #[test]
    fn chunked_matches_rowwise_verdict(specs in prop::collection::vec(query_spec(), 12..=12)) {
        let (mut chunked, mut rowwise) = session_pair(6_000, false);
        for lo in (0..24).step_by(3) {
            let sql = format!(
                "SELECT AVG(rev), COUNT(*) FROM t WHERE week BETWEEN {lo} AND {}",
                lo + 4
            );
            run_pair(&mut chunked, &mut rowwise, &sql, Mode::Verdict, StopPolicy::ScanAll);
        }
        assert_synopses_match(&chunked, &rowwise);
        chunked.train().unwrap();
        rowwise.train().unwrap();
        // Guard against trivial parity: the trained model must engage.
        let probe = "SELECT AVG(rev) FROM t WHERE week BETWEEN 5 AND 15";
        let pc = chunked.execute(probe, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap().unwrap_answered();
        let pr = rowwise.execute(probe, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap().unwrap_answered();
        prop_assert!(pc.rows[0].values[0].improved.used_model, "model must engage");
        assert_results_match(&pc, &pr, probe);
        for spec in &specs {
            run_pair(&mut chunked, &mut rowwise, &spec.sql, Mode::Verdict, spec.policy);
        }
        assert_synopses_match(&chunked, &rowwise);
    }

    /// Evolving tables: interleave queries with ingest batches sized to
    /// straddle chunk boundaries (the sample grows through per-row
    /// admission, so the chunked kernel's zone maps extend incrementally
    /// mid-sequence). Parity must hold before and after every batch —
    /// stale zone bounds would silently unselect the appended rows.
    #[test]
    fn chunked_matches_rowwise_across_ingest(specs in prop::collection::vec(query_spec(), 8..=8)) {
        let (mut chunked, mut rowwise) = session_pair(5_000, false);
        // Batch sizes chosen to land sample appends on and around the
        // 1024-row chunk boundary of the growing sample table.
        for (i, rows) in [700usize, 1024, 1500, 37].into_iter().enumerate() {
            for spec in specs.iter().skip(i * 2).take(2) {
                run_pair(&mut chunked, &mut rowwise, &spec.sql, Mode::Verdict, spec.policy);
            }
            let b = batch(rows, i * 31);
            let rep_c = chunked.ingest(&b).unwrap();
            let rep_r = rowwise.ingest(&b).unwrap();
            prop_assert_eq!(rep_c.appended_rows, rep_r.appended_rows);
            prop_assert_eq!(&rep_c.admitted_rows, &rep_r.admitted_rows);
            // The appended weeks (26..=30) are outside every pre-ingest
            // zone: this query answers *only* from appended rows.
            run_pair(
                &mut chunked,
                &mut rowwise,
                "SELECT COUNT(*), AVG(rev) FROM t WHERE week BETWEEN 26 AND 30",
                Mode::Verdict,
                StopPolicy::ScanAll,
            );
        }
        assert_synopses_match(&chunked, &rowwise);
    }
}

/// Regression (stale zone bounds): after ingest, a chunked query whose
/// predicate selects *only* appended-row values must count them — a
/// stale cached zone map would classify every chunk NoRows and return a
/// silent zero. Bit-compared against the row-wise kernel, which never
/// consults zone maps.
#[test]
fn post_ingest_query_sees_appended_rows_through_zone_maps() {
    let (mut chunked, mut rowwise) = session_pair(4_000, false);
    // Warm the zone-map cache with a pre-ingest scan.
    let warm = "SELECT COUNT(*) FROM t WHERE week BETWEEN 1 AND 25";
    run_pair(
        &mut chunked,
        &mut rowwise,
        warm,
        Mode::NoLearn,
        StopPolicy::ScanAll,
    );
    let b = batch(2_000, 7);
    chunked.ingest(&b).unwrap();
    rowwise.ingest(&b).unwrap();
    let sql = "SELECT COUNT(*) FROM t WHERE week BETWEEN 26 AND 30";
    let rc = chunked
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let rr = rowwise
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert_results_match(&rc, &rr, sql);
    assert!(
        rc.rows[0].values[0].raw_answer > 0.0,
        "appended rows invisible to the chunked kernel: {}",
        rc.rows[0].values[0].raw_answer
    );
}

/// The session-level kernel knob actually reaches the driver: identical
/// queries on the two kernels report identical scan accounting, and the
/// chunked session's query log carries nonzero chunk counters while the
/// row-wise session's stays zero.
#[test]
fn query_log_reports_chunk_counters_per_kernel() {
    let build = |kernel: ScanKernel| {
        SessionBuilder::new(base_table(5_000))
            .sample_fraction(0.5)
            .batch_size(200)
            .seed(3)
            .scan_kernel(kernel)
            .query_log(8)
            .build()
            .unwrap()
    };
    let mut chunked = build(ScanKernel::Chunked);
    let mut rowwise = build(ScanKernel::RowWise);
    let sql = "SELECT region, AVG(rev) FROM t WHERE week BETWEEN 3 AND 9 GROUP BY region";
    run_pair(
        &mut chunked,
        &mut rowwise,
        sql,
        Mode::NoLearn,
        StopPolicy::ScanAll,
    );
    let tc = &chunked.recent_queries(1)[0];
    let tr = &rowwise.recent_queries(1)[0];
    assert!(tc.chunks > 0, "chunked kernel reports its chunk walk");
    assert_eq!(tr.chunks, 0, "row-wise kernel never touches chunks");
    assert_eq!(tr.chunks_pruned, 0);
    assert_eq!(tc.rows_matched, tr.rows_matched, "identical match counts");
    assert!(tc.rows_matched > 0);
}
