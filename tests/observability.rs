//! The observability layer end to end: metrics + query log on the
//! serial, concurrent, and prepared paths; counter coherence under
//! multi-threaded load; report timing satellites (`QueryResult::elapsed`,
//! `IngestReport` / `CheckpointReport` durations and WAL bytes); and the
//! core guarantee that metrics observe the pipeline without changing a
//! single answer bit.

use std::sync::Arc;
use std::time::Duration;

use verdict::obs::MetricsHub;
use verdict::storage::{ColumnDef, Schema, Table, Value};
use verdict::{
    Database, Mode, QueryOptions, QueryOutcome, SessionBuilder, StopPolicy, VerdictSession,
};

fn base_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::numeric_dimension("week"),
        ColumnDef::categorical_dimension("region"),
        ColumnDef::measure("rev"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    let mut state = 1u64;
    for i in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let week = 1.0 + (i % 100) as f64;
        let region = ["us", "eu", "jp"][i % 3];
        let rev = 100.0 + 20.0 * (week / 15.0).sin() + 5.0 * (u - 0.5);
        t.push_row(vec![week.into(), region.into(), rev.into()])
            .unwrap();
    }
    t
}

fn batch(n: usize, from: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            let week = 1.0 + ((from + i) % 100) as f64;
            vec![
                week.into(),
                ["us", "eu", "jp"][(from + i) % 3].into(),
                (100.0 + week / 10.0).into(),
            ]
        })
        .collect()
}

fn avg_sql(lo: usize) -> String {
    format!(
        "SELECT AVG(rev) FROM t WHERE week BETWEEN {lo} AND {}",
        lo + 10
    )
}

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("verdict-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serial session: counters, stage histograms, traces, and gauges all
/// move coherently through query / unsupported / ingest / train.
#[test]
fn serial_session_reports_metrics_and_traces() {
    let hub = Arc::new(MetricsHub::new());
    let mut session = SessionBuilder::new(base_table(8_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .metrics(Arc::clone(&hub))
        .query_log(64)
        .build()
        .unwrap();

    const ANSWERED: usize = 6;
    for k in 0..ANSWERED {
        let r = session
            .execute(&avg_sql(k * 10), Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered();
        assert!(r.elapsed > Duration::ZERO, "wall clock always populated");
    }
    // One statement outside the supported class.
    assert!(matches!(
        session
            .execute("SELECT MIN(rev) FROM t", Mode::Verdict, StopPolicy::ScanAll)
            .unwrap(),
        QueryOutcome::Unsupported(_)
    ));
    session.train().unwrap();
    let report = session.ingest(&batch(500, 0)).unwrap();
    assert!(report.elapsed > Duration::ZERO);
    assert!(report.refit_elapsed <= report.elapsed);
    assert_eq!(report.wal_bytes, 0, "no store attached");

    let snap = session.metrics_snapshot().expect("hub attached");
    let c = |name: &str| snap.counter(name, Some("t")).unwrap_or(0);
    assert_eq!(c("verdict_queries_started"), ANSWERED as u64 + 1);
    assert_eq!(c("verdict_queries_answered"), ANSWERED as u64);
    assert_eq!(c("verdict_queries_unsupported"), 1);
    assert_eq!(c("verdict_ingest_batches_total"), 1);
    assert_eq!(c("verdict_ingest_rows_total"), 500);
    assert_eq!(c("verdict_train_total"), 1);
    assert!(c("verdict_tuples_scanned_total") > 0);
    assert!(c("verdict_snippets_observed_total") >= ANSWERED as u64);
    // The default chunked kernel reports its chunk walk, and every
    // AVG-between query matched at least one sampled row.
    assert!(c("verdict_scan_chunks_total") > 0);
    assert!(c("verdict_rows_matched_total") > 0);
    assert!(c("verdict_rows_matched_total") <= c("verdict_tuples_scanned_total"));
    let sel = snap
        .histogram("verdict_scan_selectivity_pct", Some("t"))
        .unwrap();
    assert_eq!(sel.count, ANSWERED as u64);

    // Latency histogram counts exactly the answered queries.
    let lat = snap
        .histogram("verdict_query_latency_ns", Some("t"))
        .unwrap();
    assert_eq!(lat.count, ANSWERED as u64);
    assert!(lat.percentile(0.5).unwrap() > 0.0);
    let scan = snap.histogram("verdict_stage_scan_ns", Some("t")).unwrap();
    assert_eq!(scan.count, ANSWERED as u64);

    // Engine gauges reflect the post-ingest state.
    assert_eq!(snap.gauge("verdict_data_epoch", Some("t")), Some(1.0));
    assert!(snap.gauge("verdict_synopsis_snippets", Some("t")).unwrap() >= ANSWERED as f64);
    assert!(snap.gauge("verdict_sample_rows", Some("t")).unwrap() > 0.0);

    // The query log holds every answered query, newest first, and each
    // trace's stage clocks fit inside its wall clock.
    let traces = session.recent_queries(16);
    assert_eq!(traces.len(), ANSWERED);
    for pair in traces.windows(2) {
        assert!(pair[0].seq > pair[1].seq, "newest first");
    }
    for t in &traces {
        assert_eq!(t.table, "t");
        assert!(!t.prepared);
        assert!(t.sql.as_deref().unwrap().starts_with("SELECT AVG"));
        assert!(t.elapsed_ns > 0);
        assert!(t.stages.total_ns() <= t.elapsed_ns);
        assert!(t.tuples_scanned > 0);
        assert!(t.cells >= 1);
        assert!(t.chunks > 0, "chunked kernel walks chunk segments");
        assert!(t.rows_matched > 0 && t.rows_matched <= t.tuples_scanned);
    }
}

/// Database front-end: per-table series labels, the prepared path's
/// trace shape, and both exposition formats.
#[test]
fn database_labels_tables_and_flags_prepared_path() {
    let hub = Arc::new(MetricsHub::new());
    let db = Database::builder()
        .register_table("orders", base_table(6_000))
        .register_table("events", base_table(4_000))
        .metrics(Arc::clone(&hub))
        .query_log(32)
        .build()
        .unwrap();

    let opts = QueryOptions::new();
    db.query(
        "SELECT AVG(rev) FROM orders WHERE week BETWEEN 5 AND 15",
        &opts,
    )
    .unwrap()
    .unwrap_answered();
    db.query(
        "SELECT AVG(rev) FROM events WHERE week BETWEEN 5 AND 15",
        &opts,
    )
    .unwrap()
    .unwrap_answered();

    let stmt = db
        .prepare("SELECT AVG(rev) FROM orders WHERE week BETWEEN ? AND ?")
        .unwrap();
    for lo in [20.0_f64, 40.0] {
        let r = stmt
            .bind(&[lo.into(), (lo + 10.0).into()])
            .unwrap()
            .run(&opts)
            .unwrap()
            .unwrap_answered();
        assert!(r.elapsed > Duration::ZERO);
    }

    let snap = db.metrics_snapshot().unwrap();
    assert_eq!(
        snap.counter("verdict_queries_answered", Some("orders")),
        Some(3)
    );
    assert_eq!(
        snap.counter("verdict_queries_answered", Some("events")),
        Some(1)
    );

    // Prepared executions trace with the flag set, the template SQL
    // (placeholders, not bound literals — so logs stay attributable
    // without leaking parameters), and no parse stage.
    let traces = db.recent_queries(10);
    assert_eq!(traces.len(), 4);
    let prepared: Vec<_> = traces.iter().filter(|t| t.prepared).collect();
    assert_eq!(prepared.len(), 2);
    for t in &prepared {
        assert_eq!(t.table, "orders");
        assert_eq!(
            t.sql.as_deref(),
            Some("SELECT AVG(rev) FROM orders WHERE week BETWEEN ? AND ?")
        );
        assert_eq!(t.stages.parse_ns, 0);
        assert!(t.stages.plan_ns > 0);
    }

    // Prometheus-style text and JSON renderings carry the same series.
    let text = snap.to_text();
    assert!(text.contains("verdict_queries_answered{table=\"orders\"} 3"));
    assert!(text.contains("verdict_query_latency_ns_count{table=\"events\"} 1"));
    assert!(text.contains("verdict_query_latency_ns_p50{table=\"orders\"}"));
    let json = snap.to_json();
    assert!(json.contains("\"name\":\"verdict_queries_answered\""));
    assert!(json.contains("\"table\":\"events\""));
}

/// 4 reader threads + 1 ingester hammer one concurrent session; the
/// counters must balance exactly afterwards — no query lost or double
/// counted by the lock-free recording path.
#[test]
fn concurrent_stress_keeps_metrics_coherent() {
    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 25;
    const INGEST_BATCHES: usize = 6;
    const ROWS_PER_BATCH: usize = 200;

    let hub = Arc::new(MetricsHub::new());
    let session = SessionBuilder::new(base_table(10_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .metrics(Arc::clone(&hub))
        .query_log(1024)
        .build_concurrent()
        .unwrap();

    std::thread::scope(|scope| {
        for r in 0..READERS {
            let session = session.clone();
            scope.spawn(move || {
                for k in 0..QUERIES_PER_READER {
                    let lo = (r * QUERIES_PER_READER + k) % 90;
                    session
                        .execute(&avg_sql(lo), Mode::Verdict, StopPolicy::ScanAll)
                        .unwrap()
                        .unwrap_answered();
                }
            });
        }
        let ingester = session.clone();
        scope.spawn(move || {
            for b in 0..INGEST_BATCHES {
                let report = ingester
                    .ingest(&batch(ROWS_PER_BATCH, b * ROWS_PER_BATCH))
                    .unwrap();
                assert_eq!(report.appended_rows, ROWS_PER_BATCH);
            }
        });
    });

    let total = (READERS * QUERIES_PER_READER) as u64;
    let snap = session.metrics_snapshot().unwrap();
    let c = |name: &str| snap.counter(name, Some("t")).unwrap_or(0);
    assert_eq!(c("verdict_queries_started"), total);
    assert_eq!(c("verdict_queries_answered"), total);
    assert_eq!(c("verdict_queries_unsupported"), 0);
    assert_eq!(
        snap.histogram("verdict_query_latency_ns", Some("t"))
            .unwrap()
            .count,
        total,
        "histogram count == answered count"
    );
    assert_eq!(c("verdict_ingest_batches_total"), INGEST_BATCHES as u64);
    assert_eq!(
        c("verdict_ingest_rows_total"),
        (INGEST_BATCHES * ROWS_PER_BATCH) as u64
    );
    assert_eq!(
        snap.gauge("verdict_data_epoch", Some("t")),
        Some(INGEST_BATCHES as f64)
    );
    let log = session.query_log().unwrap();
    assert_eq!(log.total_pushed(), total);
}

/// The headline guarantee: attaching the full observability stack does
/// not change a single answer bit. Same table, same seed, same workload —
/// every estimate, error, and scan count must match exactly.
#[test]
fn metrics_never_change_answers() {
    let run = |observed: bool| -> Vec<(f64, f64, f64, f64, usize)> {
        let mut builder = SessionBuilder::new(base_table(8_000))
            .sample_fraction(0.2)
            .batch_size(200)
            .seed(5);
        if observed {
            builder = builder.metrics(Arc::new(MetricsHub::new())).query_log(128);
        }
        let mut session = builder.build().unwrap();
        let mut out = Vec::new();
        for phase in 0..2 {
            for k in 0..5 {
                let r = session
                    .execute(&avg_sql(k * 10), Mode::Verdict, StopPolicy::ScanAll)
                    .unwrap()
                    .unwrap_answered();
                let cell = &r.rows[0].values[0];
                out.push((
                    cell.improved.answer,
                    cell.improved.error,
                    cell.raw_answer,
                    cell.raw_error,
                    r.tuples_scanned,
                ));
            }
            if phase == 0 {
                session.train().unwrap();
                session.ingest(&batch(400, 0)).unwrap();
            }
        }
        out
    };

    let plain = run(false);
    let observed = run(true);
    for (a, b) in plain.iter().zip(&observed) {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "improved answer");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "improved error");
        assert_eq!(a.2.to_bits(), b.2.to_bits(), "raw answer");
        assert_eq!(a.3.to_bits(), b.3.to_bits(), "raw error");
        assert_eq!(a.4, b.4, "tuples scanned");
    }
}

/// The query-log ring evicts oldest-first at capacity while sequence
/// numbers keep counting every push.
#[test]
fn query_log_ring_bounds_retention() {
    let mut session = SessionBuilder::new(base_table(4_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .query_log(4)
        .build()
        .unwrap();
    for k in 0..10 {
        session
            .execute(&avg_sql(k * 9), Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered();
    }
    let log = session.query_log().unwrap();
    assert_eq!(log.len(), 4);
    assert_eq!(log.total_pushed(), 10);
    let seqs: Vec<u64> = session.recent_queries(10).iter().map(|t| t.seq).collect();
    assert_eq!(seqs, vec![9, 8, 7, 6]);
    // A session without a log reports nothing but still serves queries.
    assert!(session.metrics_snapshot().is_none());
}

/// Persistent sessions report real store work — WAL bytes on ingest,
/// snapshot bytes and durations on checkpoint — measured by the store
/// itself, and the same numbers flow into the gauges.
#[test]
fn reports_carry_store_work() {
    let dir = temp_store("reports");
    let hub = Arc::new(MetricsHub::new());
    let mut session = SessionBuilder::new(base_table(6_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .persist_to(&dir)
        .metrics(Arc::clone(&hub))
        .build()
        .unwrap();

    for k in 0..4 {
        session
            .execute(&avg_sql(k * 10), Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered();
    }
    let ingest = session.ingest(&batch(300, 0)).unwrap();
    assert!(ingest.wal_bytes > 0, "WAL-logged ingest reports its bytes");

    let ckpt = session.checkpoint().unwrap();
    assert!(ckpt.snapshots_written >= 1);
    assert!(ckpt.bytes_written > 0);
    assert!(ckpt.elapsed > Duration::ZERO);

    let snap = session.metrics_snapshot().unwrap();
    assert!(
        snap.counter("verdict_checkpoints_total", Some("t"))
            .unwrap()
            >= 1
    );
    assert!(
        snap.counter("verdict_checkpoint_bytes_total", Some("t"))
            .unwrap()
            >= ckpt.bytes_written
    );
    assert!(
        snap.gauge("verdict_store_snapshot_bytes", Some("t"))
            .unwrap()
            > 0.0
    );

    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A non-persistent checkpoint is a no-op and says so: the report is all
/// zeros on both the session and database fronts.
#[test]
fn in_memory_checkpoint_reports_zero_work() {
    let mut session: VerdictSession = SessionBuilder::new(base_table(2_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .build()
        .unwrap();
    let report = session.checkpoint().unwrap();
    assert_eq!(report.snapshots_written, 0);
    assert_eq!(report.bytes_written, 0);
    assert_eq!(report.elapsed, Duration::ZERO);

    let db = Database::builder()
        .register_table("orders", base_table(2_000))
        .build()
        .unwrap();
    let report = db.checkpoint().unwrap();
    assert_eq!(report.snapshots_written, 0);
    // No hub, no log: the observability accessors degrade to nothing.
    assert!(db.metrics_snapshot().is_none());
    assert!(db.recent_queries(5).is_empty());
}
