//! The `Database` catalog front-end: multi-table registration, per-table
//! independent learning, one-directory persistence with bit-identical
//! warm starts, typed name-resolution errors, and the prepared-statement
//! serving path's bit-parity with ad-hoc execution.

use verdict::sql::SqlError;
use verdict::storage::Value;
use verdict::workload::multi::{orders_events, TwoTableSpec};
use verdict::{
    CatalogError, Database, Error, Mode, QueryOptions, SessionBuilder, StopPolicy, TableOptions,
};

fn spec() -> TwoTableSpec {
    TwoTableSpec {
        orders_rows: 20_000,
        events_rows: 15_000,
        seed: 7,
    }
}

fn build_db() -> Database {
    let (orders, events) = orders_events(&spec());
    Database::builder()
        .register_table_with(
            "orders",
            orders,
            TableOptions {
                sample_fraction: 0.2,
                batch_size: 250,
                seed: 5,
                ..Default::default()
            },
        )
        .register_table_with(
            "events",
            events,
            TableOptions {
                sample_fraction: 0.15,
                batch_size: 200,
                seed: 11,
                ..Default::default()
            },
        )
        .build()
        .unwrap()
}

fn warm_orders(db: &Database) {
    let opts = QueryOptions::new();
    for lo in (0..90).step_by(10) {
        db.query(
            &format!(
                "SELECT AVG(amount) FROM orders WHERE day BETWEEN {lo} AND {}",
                lo + 10
            ),
            &opts,
        )
        .unwrap();
    }
}

fn warm_events(db: &Database) {
    let opts = QueryOptions::new();
    for lo in (0..21).step_by(3) {
        db.query(
            &format!(
                "SELECT AVG(latency) FROM events WHERE hour BETWEEN {lo} AND {}",
                lo + 3
            ),
            &opts,
        )
        .unwrap();
    }
}

fn probe_orders(db: &Database) -> (f64, f64) {
    let r = db
        .query(
            "SELECT AVG(amount) FROM orders WHERE day BETWEEN 25 AND 45",
            &QueryOptions::new(),
        )
        .unwrap()
        .unwrap_answered();
    let cell = &r.rows[0].values[0];
    (cell.improved.answer, cell.improved.error)
}

fn probe_events_nolearn(db: &Database) -> (f64, f64) {
    let r = db
        .query(
            "SELECT AVG(latency) FROM events WHERE hour BETWEEN 6 AND 12",
            &QueryOptions::no_learn(),
        )
        .unwrap()
        .unwrap_answered();
    let cell = &r.rows[0].values[0];
    (cell.raw_answer, cell.raw_error)
}

#[test]
fn tables_learn_independently() {
    let db = build_db();
    let events_state_before = db.snapshot("events").unwrap().state_bytes();
    let events_probe_before = probe_events_nolearn(&db);

    // Heavy learning + training on orders only.
    warm_orders(&db);
    db.train("orders").unwrap();
    let (_, improved_err) = probe_orders(&db);
    assert!(improved_err.is_finite());
    let orders_avg = verdict::core::QualifiedAggKey::avg("orders", "amount");
    assert!(db.has_model(&orders_avg).unwrap(), "orders learned");

    // Events: not a bit of state moved, answers identical.
    let events_state_after = db.snapshot("events").unwrap().state_bytes();
    assert_eq!(
        events_state_before, events_state_after,
        "training orders must not change events state"
    );
    let events_probe_after = probe_events_nolearn(&db);
    assert_eq!(
        events_probe_before.0.to_bits(),
        events_probe_after.0.to_bits()
    );
    assert_eq!(
        events_probe_before.1.to_bits(),
        events_probe_after.1.to_bits()
    );
    let events_avg = verdict::core::QualifiedAggKey::avg("events", "latency");
    assert!(!db.has_model(&events_avg).unwrap());

    // The learned-keys listing is table-qualified and orders-only so far.
    let keys = db.learned_keys();
    assert!(keys.iter().any(|k| k == &orders_avg));
    assert!(keys.iter().all(|k| k.table == "orders"));
}

#[test]
fn one_dir_persists_whole_catalog_and_warm_starts_bit_identically() {
    let dir = std::env::temp_dir().join(format!("verdict-db-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (orders_state, events_state, orders_probe, events_probe) = {
        let (orders, events) = orders_events(&spec());
        let db = Database::builder()
            .register_table("orders", orders)
            .register_table("events", events)
            .persist_to(&dir)
            .build()
            .unwrap();
        assert!(db.is_persistent());
        warm_orders(&db);
        warm_events(&db);
        db.train_all().unwrap();
        // Probes first (a Verdict-mode probe itself observes), then a
        // checkpoint: read-path counter deltas are observability, not
        // WAL records, so only a checkpointed state is the exact state a
        // recovery must reproduce.
        let orders_probe = probe_orders(&db);
        let events_probe = probe_events_nolearn(&db);
        db.checkpoint().unwrap();
        (
            db.snapshot("orders").unwrap().state_bytes(),
            db.snapshot("events").unwrap().state_bytes(),
            orders_probe,
            events_probe,
        )
    };

    // "Restart": recover the whole catalog from the one directory.
    let db = Database::open(&dir).unwrap();
    assert_eq!(
        db.table_names(),
        &["orders".to_owned(), "events".to_owned()]
    );
    for name in ["orders", "events"] {
        assert!(
            db.recovery_report(name).unwrap().is_some(),
            "{name} warm-started"
        );
    }
    assert_eq!(
        db.snapshot("orders").unwrap().state_bytes(),
        orders_state,
        "orders learned state must survive bit-for-bit"
    );
    assert_eq!(
        db.snapshot("events").unwrap().state_bytes(),
        events_state,
        "events learned state must survive bit-for-bit"
    );
    let orders_after = probe_orders(&db);
    assert_eq!(orders_probe.0.to_bits(), orders_after.0.to_bits());
    assert_eq!(orders_probe.1.to_bits(), orders_after.1.to_bits());
    let events_after = probe_events_nolearn(&db);
    assert_eq!(events_probe.0.to_bits(), events_after.0.to_bits());
    assert_eq!(events_probe.1.to_bits(), events_after.1.to_bits());

    // A second builder refuses to clobber the directory.
    let (orders, _) = orders_events(&spec());
    drop(db);
    let err = Database::builder()
        .register_table("orders", orders)
        .persist_to(&dir)
        .build();
    assert!(matches!(err, Err(Error::Store(_))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_from_is_typed_error() {
    let db = build_db();
    let err = db
        .query(
            "SELECT AVG(amount) FROM nope WHERE day > 1",
            &QueryOptions::new(),
        )
        .unwrap_err();
    match err {
        Error::Sql(SqlError::UnknownTable { name, known }) => {
            assert_eq!(name, "nope");
            assert_eq!(known, vec!["orders".to_owned(), "events".to_owned()]);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Case-insensitive resolution succeeds.
    assert!(db
        .query(
            "SELECT AVG(amount) FROM ORDERS WHERE day > 1",
            &QueryOptions::new()
        )
        .is_ok());
    // Catalog lookups are typed too.
    assert!(matches!(
        db.table("nope"),
        Err(Error::Sql(SqlError::UnknownTable { .. }))
    ));
}

#[test]
fn builder_registration_errors_are_typed() {
    let (orders, events) = orders_events(&spec());
    let err = Database::builder()
        .register_table("orders", orders)
        .register_table("Orders", events) // names are case-insensitive
        .build();
    match err {
        Err(Error::Catalog(CatalogError::DuplicateTable(name))) => assert_eq!(name, "Orders"),
        other => panic!("unexpected {other:?}"),
    }

    let (orders, _) = orders_events(&spec());
    let err = Database::builder()
        .register_table("not a name", orders)
        .build();
    assert!(matches!(
        err,
        Err(Error::Catalog(CatalogError::InvalidTableName(_)))
    ));

    assert!(matches!(
        Database::builder().build(),
        Err(Error::Catalog(CatalogError::NoTables))
    ));
}

#[test]
fn prepared_bind_errors_are_typed() {
    let db = build_db();
    let stmt = db
        .prepare("SELECT AVG(amount) FROM orders WHERE day BETWEEN ? AND ?")
        .unwrap();
    assert_eq!(stmt.placeholder_count(), 2);
    assert_eq!(stmt.table_name(), "orders");

    match stmt.bind(&[Value::Num(1.0)]).unwrap_err() {
        Error::Sql(SqlError::PlaceholderCount { expected, got }) => {
            assert_eq!((expected, got), (2, 1));
        }
        other => panic!("unexpected {other:?}"),
    }
    match stmt
        .bind(&[Value::Num(1.0), Value::Str("us".into())])
        .unwrap_err()
    {
        Error::Sql(SqlError::PlaceholderType { index, .. }) => assert_eq!(index, 1),
        other => panic!("unexpected {other:?}"),
    }

    // Ad-hoc execution of a placeholder-bearing statement is refused.
    assert!(db
        .query(
            "SELECT AVG(amount) FROM orders WHERE day BETWEEN ? AND ?",
            &QueryOptions::new()
        )
        .is_err());

    // Unsupported statements cannot be prepared.
    assert!(matches!(
        db.prepare("SELECT MIN(amount) FROM orders"),
        Err(Error::Unsupported(_))
    ));
}

/// The serving-path guarantee: prepare-once/bind-many answers must be
/// bit-identical to ad-hoc `query()` of the same statement with the
/// literals inlined — including the learning side effects, so after a
/// whole workload the two databases' learned states match byte for byte.
#[test]
fn prepared_runs_bit_identical_to_ad_hoc() {
    let ad_hoc = build_db();
    let prepared_db = build_db();

    let stmt = prepared_db
        .prepare("SELECT AVG(amount) FROM orders WHERE day BETWEEN ? AND ?")
        .unwrap();
    let opts = QueryOptions::new();
    for lo in [0.0_f64, 12.5, 25.0, 40.0, 62.5, 80.0] {
        let hi = lo + 15.0;
        let a = ad_hoc
            .query(
                &format!("SELECT AVG(amount) FROM orders WHERE day BETWEEN {lo} AND {hi}"),
                &opts,
            )
            .unwrap()
            .unwrap_answered();
        let p = stmt
            .bind(&[lo.into(), hi.into()])
            .unwrap()
            .run(&opts)
            .unwrap()
            .unwrap_answered();
        let (ca, cp) = (&a.rows[0].values[0], &p.rows[0].values[0]);
        assert_eq!(ca.improved.answer.to_bits(), cp.improved.answer.to_bits());
        assert_eq!(ca.improved.error.to_bits(), cp.improved.error.to_bits());
        assert_eq!(ca.raw_answer.to_bits(), cp.raw_answer.to_bits());
        assert_eq!(ca.raw_error.to_bits(), cp.raw_error.to_bits());
        assert_eq!(a.tuples_scanned, p.tuples_scanned);
        assert_eq!(a.epoch, p.epoch);
    }
    assert_eq!(
        ad_hoc.snapshot("orders").unwrap().state_bytes(),
        prepared_db.snapshot("orders").unwrap().state_bytes(),
        "identical workloads must leave identical learned state"
    );

    // Still bit-identical after training, with models engaged, and for a
    // grouped + categorical-placeholder statement.
    ad_hoc.train("orders").unwrap();
    prepared_db.train("orders").unwrap();
    let grouped = prepared_db
        .prepare("SELECT region, COUNT(*), AVG(amount) FROM orders WHERE day >= ? GROUP BY region")
        .unwrap();
    for lo in [10.0_f64, 30.0] {
        let a = ad_hoc
            .query(
                &format!(
                    "SELECT region, COUNT(*), AVG(amount) FROM orders WHERE day >= {lo} GROUP BY region"
                ),
                &opts,
            )
            .unwrap()
            .unwrap_answered();
        let p = grouped
            .bind(&[lo.into()])
            .unwrap()
            .run(&opts)
            .unwrap()
            .unwrap_answered();
        assert_eq!(a.rows.len(), p.rows.len());
        for (ra, rp) in a.rows.iter().zip(&p.rows) {
            assert_eq!(ra.group, rp.group);
            for (ca, cp) in ra.values.iter().zip(&rp.values) {
                assert_eq!(ca.improved.answer.to_bits(), cp.improved.answer.to_bits());
                assert_eq!(ca.improved.error.to_bits(), cp.improved.error.to_bits());
            }
        }
    }
}

#[test]
fn pinned_snapshot_must_match_table() {
    let db = build_db();
    let events_snapshot = db.snapshot("events").unwrap();
    let err = db
        .query(
            "SELECT AVG(amount) FROM orders WHERE day > 1",
            &QueryOptions::new().pinned(events_snapshot),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Catalog(CatalogError::SnapshotTableMismatch { .. })
    ));
}

#[test]
fn pinned_reads_are_pure_across_cross_table_ingest_and_learning() {
    let db = build_db();
    warm_orders(&db);
    db.train("orders").unwrap();

    let pinned = db.snapshot("orders").unwrap();
    let sql = "SELECT AVG(amount) FROM orders WHERE day BETWEEN 20 AND 60";
    let opts_pinned = QueryOptions::new().pinned(pinned.clone());
    let before = db.query(sql, &opts_pinned).unwrap().unwrap_answered();

    // Ingest into events and learn more on orders, from several threads.
    std::thread::scope(|s| {
        for t in 0..2 {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..4 {
                    let hour = (t * 4 + i) as f64;
                    db.ingest(
                        "events",
                        &[vec![Value::Num(hour % 24.0), Value::Num(50.0 + hour)]],
                    )
                    .unwrap();
                }
            });
        }
        {
            let db = db.clone();
            s.spawn(move || {
                for lo in [5.0_f64, 35.0, 65.0] {
                    db.query(
                        &format!(
                            "SELECT AVG(amount) FROM orders WHERE day BETWEEN {lo} AND {}",
                            lo + 7.0
                        ),
                        &QueryOptions::new(),
                    )
                    .unwrap();
                }
            });
        }
    });
    assert!(db.data_epoch("events").unwrap() >= 8);
    assert!(db.epoch("orders").unwrap() > pinned.epoch());

    // The pinned read is a pure function of the snapshot pair.
    let after = db.query(sql, &opts_pinned).unwrap().unwrap_answered();
    let (cb, ca) = (&before.rows[0].values[0], &after.rows[0].values[0]);
    assert_eq!(cb.improved.answer.to_bits(), ca.improved.answer.to_bits());
    assert_eq!(cb.improved.error.to_bits(), ca.improved.error.to_bits());
    assert_eq!(before.epoch, after.epoch);
}

/// The non-persisted knobs (here: sample rotation) can be re-applied on
/// warm start via `open_with`; a plain `open` reverts them to defaults.
#[test]
fn open_with_reapplies_non_persisted_options() {
    let dir = std::env::temp_dir().join(format!("verdict-db-openwith-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (orders, _) = orders_events(&spec());
        Database::builder()
            .register_table_with(
                "orders",
                orders,
                TableOptions {
                    sample_fraction: 0.1,
                    batch_size: 200,
                    seed: 5,
                    num_samples: 3,
                    ..Default::default()
                },
            )
            .persist_to(&dir)
            .build()
            .unwrap();
    }
    let sql = "SELECT AVG(amount) FROM orders WHERE day <= 50";
    let answers = |db: &Database| -> Vec<u64> {
        (0..3)
            .map(|_| {
                let r = db
                    .query(
                        sql,
                        &QueryOptions::no_learn().with_policy(StopPolicy::TupleBudget(400)),
                    )
                    .unwrap()
                    .unwrap_answered();
                r.rows[0].values[0].raw_answer.to_bits()
            })
            .collect()
    };
    {
        // Default open: rotation fixed → every query scans the same sample.
        let db = Database::open(&dir).unwrap();
        let a = answers(&db);
        assert!(a.iter().all(|&x| x == a[0]), "fixed rotation: {a:?}");
    }
    {
        // open_with round-robin: successive queries scan distinct samples.
        let db = Database::open_with(
            &dir,
            verdict::OpenOptions::new().with_rotation(verdict::SampleRotation::RoundRobin),
        )
        .unwrap();
        let a = answers(&db);
        assert!(
            a[0] != a[1] || a[1] != a[2],
            "round-robin must change the scanned sample: {a:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_v2_store_opens_as_single_table_database() {
    let dir = std::env::temp_dir().join(format!("verdict-db-v2compat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (orders, _) = orders_events(&spec());

    // A store written by the *session* API (v2 single-table layout).
    {
        let mut session = SessionBuilder::new(orders)
            .sample_fraction(0.2)
            .batch_size(250)
            .seed(5)
            .persist_to(&dir)
            .build()
            .unwrap();
        for lo in (0..90).step_by(10) {
            session
                .execute(
                    &format!(
                        "SELECT AVG(amount) FROM whatever WHERE day BETWEEN {lo} AND {}",
                        lo + 10
                    ),
                    Mode::Verdict,
                    StopPolicy::ScanAll,
                )
                .unwrap();
        }
        session.train().unwrap();
    }

    // The catalog API opens it: one table named "t", lenient FROM.
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.table_names(), &["t".to_owned()]);
    let r = db
        .query(
            "SELECT AVG(amount) FROM anything WHERE day BETWEEN 25 AND 45",
            &QueryOptions::new(),
        )
        .unwrap()
        .unwrap_answered();
    let cell = &r.rows[0].values[0];
    assert!(cell.improved.used_model, "recovered model must engage");
    assert!(cell.improved.error <= cell.raw_error);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_promotes_into_database() {
    let (orders, _) = orders_events(&spec());
    let session = SessionBuilder::new(orders)
        .sample_fraction(0.2)
        .batch_size(250)
        .seed(5)
        .build()
        .unwrap();
    let db = session.into_database("orders").unwrap();
    assert_eq!(db.table_names(), &["orders".to_owned()]);
    // Strict FROM resolution after promotion.
    assert!(matches!(
        db.query(
            "SELECT AVG(amount) FROM t WHERE day > 1",
            &QueryOptions::new()
        ),
        Err(Error::Sql(SqlError::UnknownTable { .. }))
    ));
    assert!(db
        .query(
            "SELECT AVG(amount) FROM orders WHERE day > 1",
            &QueryOptions::new()
        )
        .is_ok());
}

#[test]
fn database_is_clone_send_sync() {
    fn assert_clone_send_sync<T: Clone + Send + Sync>() {}
    assert_clone_send_sync::<Database>();
    assert_clone_send_sync::<verdict::Prepared>();
    assert_clone_send_sync::<verdict::SessionSnapshot>();
}
