//! Executor parity: the shared-scan path (`execute`) must return answers,
//! errors, scan accounting, and synopsis contents identical to the legacy
//! per-snippet path (`execute_legacy`) for arbitrary supported queries —
//! the refactor changes *how much work* a query costs, never *what it
//! answers*. Plus the regression tests for the shared-scan cost
//! semantics: a stop-policy budget bounds the one query-wide scan instead
//! of being spent per snippet. And since the concurrent engine drives the
//! *same* planner→scan→infer core against a published snapshot, the suite
//! also holds multithreaded reads at a fixed epoch to the serial path,
//! bit for bit.
//!
//! Requires the `legacy-executor` feature (the reference executor is off
//! by default). Workspace builds enable it through the bench crate, so
//! plain `cargo test` at the workspace root runs this suite; a
//! package-only `cargo test -p verdict` compiles it empty.
#![cfg(feature = "legacy-executor")]

use proptest::prelude::*;
use verdict::aqp::AqpEngine;
use verdict::{Mode, QueryOutcome, QueryResult, SessionBuilder, StopPolicy, VerdictSession};
use verdict_storage::{ColumnDef, Schema, Table};

const REGIONS: [&str; 10] = ["r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"];

/// A deterministic table: numeric `week` dimension (1..=25), categorical
/// `region` dimension (10 labels), `rev` measure.
fn base_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::numeric_dimension("week"),
        ColumnDef::categorical_dimension("region"),
        ColumnDef::measure("rev"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let week = 1.0 + (i % 25) as f64;
        let region = REGIONS[i % REGIONS.len()];
        let rev = 50.0 + 10.0 * (week / 4.0).sin() + 8.0 * (u - 0.5);
        t.push_row(vec![week.into(), region.into(), rev.into()])
            .unwrap();
    }
    t
}

/// Two sessions over the identical table and sample, one per executor.
fn session_pair(rows: usize) -> (VerdictSession, VerdictSession) {
    let build = || {
        SessionBuilder::new(base_table(rows))
            .sample_fraction(0.25)
            .batch_size(150)
            .seed(17)
            .build()
            .unwrap()
    };
    (build(), build())
}

#[derive(Debug, Clone)]
struct QuerySpec {
    sql: String,
    policy: StopPolicy,
}

/// Random supported queries: 1–3 aggregates (deduplication exercised by
/// AVG+SUM+COUNT combinations), optional GROUP BY on either dimension,
/// random week range, and a random stop policy.
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (0u32..20, 1u32..=25, 1u32..8, 0u32..3, 0u32..4).prop_map(
        |(lo, width, agg_mask, group, policy)| {
            let mut aggs: Vec<&str> = Vec::new();
            if agg_mask & 1 != 0 {
                aggs.push("AVG(rev)");
            }
            if agg_mask & 2 != 0 {
                aggs.push("SUM(rev)");
            }
            if agg_mask & 4 != 0 {
                aggs.push("COUNT(*)");
            }
            let (select_prefix, group_clause) = match group {
                1 => ("region, ", " GROUP BY region"),
                2 => ("week, ", " GROUP BY week"),
                _ => ("", ""),
            };
            let hi = lo + width;
            let sql = format!(
                "SELECT {select_prefix}{} FROM t WHERE week BETWEEN {lo} AND {hi}{group_clause}",
                aggs.join(", "),
            );
            let policy = match policy {
                0 => StopPolicy::ScanAll,
                1 => StopPolicy::TupleBudget(700),
                2 => StopPolicy::TimeBudgetNs(12_000_000.0),
                _ => StopPolicy::RelativeErrorBound {
                    target: 0.05,
                    delta: 0.95,
                },
            };
            QuerySpec { sql, policy }
        },
    )
}

/// Group-key equality by bit identity (a NaN key equals itself; the two
/// executors enumerate keys from the same pass, so bits match exactly).
fn groups_identical(
    a: &Option<verdict_storage::GroupKey>,
    b: &Option<verdict_storage::GroupKey>,
) -> bool {
    use verdict_storage::Value;
    match (a, b) {
        (None, None) => true,
        (Some(ka), Some(kb)) => {
            ka.len() == kb.len()
                && ka.iter().zip(kb.iter()).all(|(x, y)| match (x, y) {
                    (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
                    _ => x == y,
                })
        }
        _ => false,
    }
}

/// Bitwise comparison of two query results, cell for cell.
fn assert_results_match(shared: &QueryResult, legacy: &QueryResult, sql: &str) {
    assert_eq!(shared.rows.len(), legacy.rows.len(), "{sql}");
    assert_eq!(shared.truncated, legacy.truncated, "{sql}");
    assert_eq!(shared.tuples_scanned, legacy.tuples_scanned, "{sql}");
    for (rs, rl) in shared.rows.iter().zip(legacy.rows.iter()) {
        assert!(
            groups_identical(&rs.group, &rl.group),
            "{sql}: {:?} vs {:?}",
            rs.group,
            rl.group
        );
        assert_eq!(rs.values.len(), rl.values.len(), "{sql}");
        for (cs, cl) in rs.values.iter().zip(rl.values.iter()) {
            assert_eq!(
                cs.raw_answer.to_bits(),
                cl.raw_answer.to_bits(),
                "raw answer diverged: {} vs {} for {sql}",
                cs.raw_answer,
                cl.raw_answer
            );
            assert_eq!(
                cs.raw_error.to_bits(),
                cl.raw_error.to_bits(),
                "raw error diverged: {} vs {} for {sql}",
                cs.raw_error,
                cl.raw_error
            );
            assert_eq!(
                cs.improved.answer.to_bits(),
                cl.improved.answer.to_bits(),
                "improved answer diverged: {} vs {} for {sql}",
                cs.improved.answer,
                cl.improved.answer
            );
            assert_eq!(
                cs.improved.error.to_bits(),
                cl.improved.error.to_bits(),
                "improved error diverged for {sql}"
            );
            assert_eq!(cs.improved.used_model, cl.improved.used_model, "{sql}");
            assert_eq!(cs.tuples_scanned, cl.tuples_scanned, "{sql}");
        }
    }
}

/// The recorded synopses (raw observations, in recording order) must be
/// identical: the shared scan feeds the learned state exactly what the
/// per-snippet path did.
fn assert_synopses_match(shared: &VerdictSession, legacy: &VerdictSession) {
    let a = shared.verdict().export_state();
    let b = legacy.verdict().export_state();
    assert_eq!(a.synopses.len(), b.synopses.len(), "synopsis key sets");
    for ((ka, sa), (kb, sb)) in a.synopses.iter().zip(b.synopses.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(sa.len(), sb.len(), "synopsis length for {ka}");
        for (ea, eb) in sa.entries().iter().zip(sb.entries().iter()) {
            assert_eq!(ea.region, eb.region, "region for {ka}");
            assert_eq!(
                ea.observation.answer.to_bits(),
                eb.observation.answer.to_bits(),
                "recorded answer for {ka}"
            );
            assert_eq!(
                ea.observation.error.to_bits(),
                eb.observation.error.to_bits(),
                "recorded error for {ka}"
            );
        }
    }
}

fn run_pair(
    shared: &mut VerdictSession,
    legacy: &mut VerdictSession,
    sql: &str,
    mode: Mode,
    policy: StopPolicy,
) {
    let out_s = shared.execute(sql, mode, policy).unwrap();
    let out_l = legacy.execute_legacy(sql, mode, policy).unwrap();
    match (out_s, out_l) {
        (QueryOutcome::Answered(rs), QueryOutcome::Answered(rl)) => {
            assert_results_match(&rs, &rl, sql)
        }
        (QueryOutcome::Unsupported(_), QueryOutcome::Unsupported(_)) => {}
        _ => panic!("support classification diverged for {sql}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// NoLearn mode: raw pipeline parity over a random query sequence.
    #[test]
    fn shared_scan_matches_legacy_nolearn(specs in prop::collection::vec(query_spec(), 18..=18)) {
        let (mut shared, mut legacy) = session_pair(6_000);
        for spec in &specs {
            run_pair(&mut shared, &mut legacy, &spec.sql, Mode::NoLearn, spec.policy);
        }
    }

    /// Verdict mode: inference + validation + synopsis recording parity,
    /// with models trained mid-sequence so later queries engage them.
    #[test]
    fn shared_scan_matches_legacy_verdict(specs in prop::collection::vec(query_spec(), 12..=12)) {
        let (mut shared, mut legacy) = session_pair(6_000);
        // Warm-up: overlapping range queries populate the synopses
        // identically through both executors.
        for lo in (0..24).step_by(3) {
            let sql = format!(
                "SELECT AVG(rev), COUNT(*) FROM t WHERE week BETWEEN {lo} AND {}",
                lo + 4
            );
            run_pair(&mut shared, &mut legacy, &sql, Mode::Verdict, StopPolicy::ScanAll);
        }
        assert_synopses_match(&shared, &legacy);
        shared.train().unwrap();
        legacy.train().unwrap();
        // Guard against trivial parity: the trained model must actually
        // engage on an overlapping query, on both paths.
        let probe = "SELECT AVG(rev) FROM t WHERE week BETWEEN 5 AND 15";
        let ps = shared.execute(probe, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap().unwrap_answered();
        let pl = legacy.execute_legacy(probe, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap().unwrap_answered();
        prop_assert!(ps.rows[0].values[0].improved.used_model, "model must engage");
        assert_results_match(&ps, &pl, probe);
        for spec in &specs {
            run_pair(&mut shared, &mut legacy, &spec.sql, Mode::Verdict, spec.policy);
        }
        assert_synopses_match(&shared, &legacy);
    }
}

/// Acceptance: a query with ≥8 groups × 2 aggregates is answered from one
/// shared scan — `tuples_scanned` is at most the sample size (the
/// per-snippet path did G×A× that much real scan work) — and bit-matches
/// the legacy executor.
#[test]
fn eight_groups_two_aggregates_one_scan() {
    let (mut shared, mut legacy) = session_pair(8_000);
    let sql = "SELECT region, AVG(rev), SUM(rev) FROM t GROUP BY region";
    let rs = shared
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert!(rs.rows.len() >= 8, "{} groups", rs.rows.len());
    assert_eq!(rs.rows[0].values.len(), 2);
    assert!(
        rs.tuples_scanned <= shared.engine().sample().len(),
        "one scan: {} > sample {}",
        rs.tuples_scanned,
        shared.engine().sample().len()
    );
    let rl = legacy
        .execute_legacy(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert_results_match(&rs, &rl, sql);
}

/// Regression (stop-policy semantics): a time budget bounds the *single*
/// query-wide scan. Under the per-snippet executor every snippet derived
/// its own tuple cap, so a G×A query did G×A× the budgeted work; under
/// the shared scan the same budget buys the same sample prefix whether
/// the query has one cell or twenty.
#[test]
fn time_budget_bounds_the_single_query_wide_scan() {
    let (mut s, _) = session_pair(20_000);
    let budget = 12_000_000.0;
    let policy = StopPolicy::TimeBudgetNs(budget);
    let grouped = s
        .execute(
            "SELECT region, AVG(rev), SUM(rev) FROM t GROUP BY region",
            Mode::NoLearn,
            policy,
        )
        .unwrap()
        .unwrap_answered();
    assert!(grouped.rows.len() >= 8);
    let ungrouped = s
        .execute("SELECT AVG(rev) FROM t", Mode::NoLearn, policy)
        .unwrap()
        .unwrap_answered();
    // Scan work is independent of G×A: 10 groups × 2 aggregates buys
    // exactly the prefix a single-cell query buys.
    assert_eq!(grouped.tuples_scanned, ungrouped.tuples_scanned);
    // And that prefix is the budgeted cap, rounded up to a whole batch.
    let cap = s
        .engine()
        .cost_model()
        .tuples_within(budget, s.engine().tier());
    let batch = 150;
    assert!(
        grouped.tuples_scanned <= cap.div_ceil(batch) * batch,
        "scan {} exceeds budgeted cap {cap} (batch {batch})",
        grouped.tuples_scanned
    );
    assert!(grouped.tuples_scanned > 0);
    // The simulated clock charges that one scan, within one batch of the
    // budget.
    let one_batch_ns = s.engine().cost_model().scan_ns(batch, s.engine().tier());
    assert!(
        grouped.simulated_ns <= budget + one_batch_ns,
        "simulated {} vs budget {budget}",
        grouped.simulated_ns
    );
}

/// Regression: a tuple budget likewise caps the one shared scan, and
/// per-cell `tuples_scanned` reports the same stop point for every cell.
#[test]
fn tuple_budget_caps_shared_scan() {
    let (mut s, _) = session_pair(20_000);
    let r = s
        .execute(
            "SELECT region, AVG(rev), COUNT(*) FROM t GROUP BY region",
            Mode::NoLearn,
            StopPolicy::TupleBudget(600),
        )
        .unwrap()
        .unwrap_answered();
    assert!(
        r.tuples_scanned >= 600 && r.tuples_scanned <= 750,
        "{}",
        r.tuples_scanned
    );
    for row in &r.rows {
        for cell in &row.values {
            assert_eq!(cell.tuples_scanned, r.tuples_scanned);
        }
    }
}

/// Acceptance (snapshot-isolated concurrency): queries served from many
/// threads at one pinned snapshot epoch are bit-identical — answer,
/// error, and improved bound — to a serial session holding the same
/// learned state, across modes and stop policies. Learning is deferred
/// (the pinned reads absorb nothing), so every thread reads exactly the
/// published epoch it pinned.
#[test]
fn concurrent_reads_at_fixed_epoch_match_serial() {
    let build = || {
        SessionBuilder::new(base_table(6_000))
            .sample_fraction(0.25)
            .batch_size(150)
            .seed(17)
            .build()
            .unwrap()
    };
    let warm_up = |s: &mut VerdictSession| {
        for lo in (0..24).step_by(3) {
            let sql = format!(
                "SELECT AVG(rev), COUNT(*) FROM t WHERE week BETWEEN {lo} AND {}",
                lo + 4
            );
            s.execute(&sql, Mode::Verdict, StopPolicy::ScanAll).unwrap();
        }
        s.train().unwrap();
    };
    let mut serial = build();
    warm_up(&mut serial);
    let concurrent = {
        let mut s = build();
        warm_up(&mut s);
        s.into_concurrent()
    };
    let snapshot = concurrent.snapshot();

    // A mixed workload: grouped/ungrouped, every aggregate family, every
    // stop policy. The serial session observes between queries, but
    // answers depend only on the trained models, so the pinned snapshot
    // (same post-training state) must reproduce them exactly.
    let workload: Vec<(String, Mode, StopPolicy)> = (0..16)
        .map(|i| {
            let lo = (i * 5) % 20;
            let sql = match i % 4 {
                0 => format!(
                    "SELECT AVG(rev) FROM t WHERE week BETWEEN {lo} AND {}",
                    lo + 8
                ),
                1 => format!(
                    "SELECT region, AVG(rev), SUM(rev) FROM t WHERE week BETWEEN {lo} AND {} \
                     GROUP BY region",
                    lo + 10
                ),
                2 => format!("SELECT SUM(rev), COUNT(*) FROM t WHERE week <= {}", lo + 12),
                _ => "SELECT week, COUNT(*) FROM t GROUP BY week".to_owned(),
            };
            let mode = if i % 3 == 0 {
                Mode::NoLearn
            } else {
                Mode::Verdict
            };
            let policy = match i % 4 {
                0 => StopPolicy::ScanAll,
                1 => StopPolicy::TupleBudget(700),
                2 => StopPolicy::TimeBudgetNs(12_000_000.0),
                _ => StopPolicy::RelativeErrorBound {
                    target: 0.05,
                    delta: 0.95,
                },
            };
            (sql, mode, policy)
        })
        .collect();

    let serial_results: Vec<QueryResult> = workload
        .iter()
        .map(|(sql, mode, policy)| {
            serial
                .execute(sql, *mode, *policy)
                .unwrap()
                .unwrap_answered()
        })
        .collect();
    // Guard against trivial parity: the model must engage somewhere.
    assert!(
        serial_results
            .iter()
            .flat_map(|r| r.rows.iter())
            .flat_map(|row| row.values.iter())
            .any(|c| c.improved.used_model),
        "workload never engaged the trained model"
    );

    const THREADS: usize = 4;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let concurrent = &concurrent;
                let snapshot = &snapshot;
                let workload = &workload;
                scope.spawn(move || {
                    workload
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % THREADS == t)
                        .map(|(i, (sql, mode, policy))| {
                            let r = concurrent
                                .execute_at(snapshot, sql, *mode, *policy)
                                .unwrap()
                                .unwrap_answered();
                            (i, r)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, got) in handle.join().unwrap() {
                let (sql, _, _) = &workload[i];
                assert_eq!(got.epoch, snapshot.epoch(), "read a different epoch: {sql}");
                let want = &serial_results[i];
                assert_results_match(&got, want, sql);
                // The acceptance criterion names the improved *bound*
                // explicitly: same error at the same confidence.
                for (rg, rw) in got.rows.iter().zip(want.rows.iter()) {
                    for (cg, cw) in rg.values.iter().zip(rw.values.iter()) {
                        assert_eq!(
                            cg.improved.bound(0.95).to_bits(),
                            cw.improved.bound(0.95).to_bits(),
                            "improved bound diverged for {sql}"
                        );
                    }
                }
            }
        }
    });
    // Deferred learning: the pinned reads left the published state alone.
    assert_eq!(concurrent.epoch(), snapshot.epoch());
}

/// Parity on pathological numeric group keys: `-0.0` and `0.0` are equal
/// under the group-equality predicate (one group, not two), and a NaN
/// group key equals nothing (its row exists but all its cells are empty)
/// — both executors must agree.
#[test]
fn signed_zero_and_nan_group_keys_agree() {
    let build = || {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("k"),
            ColumnDef::measure("v"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..400 {
            let k = match i % 4 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::NAN,
                _ => 1.0,
            };
            t.push_row(vec![k.into(), ((i % 7) as f64).into()]).unwrap();
        }
        SessionBuilder::new(t)
            .sample_fraction(1.0)
            .batch_size(50)
            .seed(2)
            .build()
            .unwrap()
    };
    let (mut shared, mut legacy) = (build(), build());
    let sql = "SELECT k, COUNT(*), AVG(v) FROM t GROUP BY k";
    let rs = shared
        .execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let rl = legacy
        .execute_legacy(sql, Mode::NoLearn, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert_results_match(&rs, &rl, sql);
    // Three groups: {0.0 (both zeros), 1.0, NaN}; the zero group owns
    // half the table, the NaN group's cells are empty.
    assert_eq!(
        rs.rows.len(),
        3,
        "{:?}",
        rs.rows.iter().map(|r| &r.group).collect::<Vec<_>>()
    );
    let zero_row = &rs.rows[0];
    assert!((zero_row.values[0].raw_answer - 200.0).abs() < 1e-9);
    let nan_row = rs
        .rows
        .iter()
        .find(
            |r| matches!(r.group.as_deref(), Some([verdict_storage::Value::Num(v)]) if v.is_nan()),
        )
        .expect("NaN group row present");
    assert_eq!(nan_row.values[0].raw_answer, 0.0, "NaN key matches no row");
}
