//! End-to-end invariants of the ingest pipeline stage (Appendix D).
//!
//! - Lemma 3 bit-for-bit: after ingesting a shifted batch, every
//!   pre-existing snippet's stored answer equals the hand-computed
//!   `θ' = θ + µ·|r_a|/(|r|+|r_a|)` and its error is never smaller than
//!   before.
//! - Crash mid-ingest: a session killed with a torn ingest frame reopens
//!   to byte-identical state as of the last complete batch, on both the
//!   serial and concurrent paths, with the maintained sample rebuilt
//!   exactly.
//! - Pinned parity: `execute_at` against a pinned snapshot stays
//!   bit-identical across a concurrent ingest.

use proptest::prelude::*;

use verdict::core::append::AppendAdjustment;
use verdict::core::persist::Encoder;
use verdict::core::AggKey;
use verdict::store::tablecodec::encode_table;
use verdict::{Mode, QueryResult, SessionBuilder, StopPolicy, VerdictSession};
use verdict_storage::{ColumnDef, Schema, Table, Value};

/// Deterministic base table: numeric `week` (1..=20), categorical
/// `region`, measure `rev`.
fn base_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::numeric_dimension("week"),
        ColumnDef::categorical_dimension("region"),
        ColumnDef::measure("rev"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    let mut state = 0x2545F4914F6CDD1Du64;
    for i in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let week = 1.0 + (i % 20) as f64;
        let region = ["us", "eu", "jp"][i % 3];
        let rev = 80.0 + 12.0 * (week / 5.0).sin() + 6.0 * (u - 0.5);
        t.push_row(vec![week.into(), region.into(), rev.into()])
            .unwrap();
    }
    t
}

/// A batch of `rows` new rows whose `rev` sits `shift` above the base
/// distribution (and introduces a new region label).
fn shifted_batch(rows: usize, shift: f64) -> Vec<Vec<Value>> {
    let mut state = 0xA076_1D64_78BD_642Fu64;
    (0..rows)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let week = 1.0 + (i % 20) as f64;
            let region = ["us", "eu", "jp", "apac"][i % 4];
            let rev = 80.0 + shift + 12.0 * (week / 5.0).sin() + 6.0 * (u - 0.5);
            vec![week.into(), region.into(), rev.into()]
        })
        .collect()
}

fn warmed_session(rows: usize, seed: u64) -> VerdictSession {
    let mut s = SessionBuilder::new(base_table(rows))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(seed)
        .build()
        .unwrap();
    for lo in (1..20).step_by(3) {
        s.execute(
            &format!(
                "SELECT AVG(rev), COUNT(*) FROM t WHERE week BETWEEN {lo} AND {}",
                lo + 3
            ),
            Mode::Verdict,
            StopPolicy::ScanAll,
        )
        .unwrap();
    }
    s
}

fn first_cell(r: &QueryResult) -> (u64, u64) {
    let c = &r.rows[0].values[0];
    (c.improved.answer.to_bits(), c.improved.error.to_bits())
}

fn table_bytes(t: &Table) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_table(t, &mut enc);
    enc.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance invariant: after `ingest` of a shifted batch, every
    /// pre-existing snippet's stored error is ≥ its old error and its
    /// adjusted answer matches Lemma 3 bit for bit against the
    /// hand-computed formula (shift estimated from the pre-ingest sample
    /// vs the batch — independently recomputed here).
    #[test]
    fn ingest_adjusts_every_snippet_per_lemma3(
        shift in 1.0..10.0f64,
        batch_rows in 50usize..400,
        seed in 0u64..4,
    ) {
        let mut session = warmed_session(6_000, seed);
        let old_rows = session.table().num_rows();

        // Hand-compute the expected adjustments from the *current*
        // sample and the batch, before ingest mutates either.
        let batch = shifted_batch(batch_rows, shift);
        let old_values: Vec<f64> = {
            use verdict::aqp::AqpEngine;
            session.engine().sample().table().column("rev").unwrap().numeric().unwrap().to_vec()
        };
        let new_values: Vec<f64> = batch.iter().map(|r| r[2].as_num().unwrap()).collect();
        let want_avg = AppendAdjustment::estimate(&old_values, &new_values, old_rows, batch_rows);
        let want_freq = AppendAdjustment::freq_worst_case(old_rows, batch_rows);

        let before: Vec<(AggKey, Vec<verdict::core::Observation>)> = session
            .verdict()
            .synopsis_keys()
            .into_iter()
            .map(|k| {
                let obs = session
                    .verdict()
                    .synopsis(&k)
                    .unwrap()
                    .entries()
                    .iter()
                    .map(|e| e.observation)
                    .collect();
                (k, obs)
            })
            .collect();
        prop_assert!(!before.is_empty());
        let total_snippets: usize = before.iter().map(|(_, o)| o.len()).sum();

        let report = session.ingest(&batch).unwrap();
        prop_assert_eq!(report.appended_rows, batch_rows);
        prop_assert_eq!(report.adjusted_keys, before.len());
        prop_assert_eq!(report.adjusted_snippets, total_snippets);
        prop_assert!(report.skipped_keys.is_empty());
        prop_assert_eq!(report.data_epoch, 1);
        prop_assert_eq!(session.table().num_rows(), old_rows + batch_rows);
        // One dictionary: the maintained sample encodes categorical
        // labels with the base table's codes, including labels the batch
        // introduced ("apac"), whether or not their rows were admitted.
        {
            use verdict::aqp::AqpEngine;
            prop_assert_eq!(
                session
                    .engine()
                    .sample()
                    .table()
                    .column("region")
                    .unwrap()
                    .labels()
                    .unwrap(),
                session.table().column("region").unwrap().labels().unwrap()
            );
        }

        for (key, old_obs) in &before {
            let want = match key {
                AggKey::Freq => &want_freq,
                AggKey::Avg(_) => &want_avg,
            };
            let after = session.verdict().synopsis(key).unwrap();
            prop_assert_eq!(after.len(), old_obs.len());
            for (entry, old) in after.entries().iter().zip(old_obs.iter()) {
                let expect = want.adjust(*old);
                prop_assert_eq!(
                    entry.observation.answer.to_bits(),
                    expect.answer.to_bits()
                );
                prop_assert_eq!(entry.observation.error.to_bits(), expect.error.to_bits());
                prop_assert!(
                    entry.observation.error >= old.error,
                    "β' {} < β {}",
                    entry.observation.error,
                    old.error
                );
            }
        }
    }
}

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("verdict-ingest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persistent_warmed(dir: &std::path::Path) -> VerdictSession {
    let mut s = SessionBuilder::new(base_table(6_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(7)
        .persist_to(dir)
        .build()
        .unwrap();
    for lo in (1..20).step_by(3) {
        s.execute(
            &format!(
                "SELECT AVG(rev), COUNT(*) FROM t WHERE week BETWEEN {lo} AND {}",
                lo + 3
            ),
            Mode::Verdict,
            StopPolicy::ScanAll,
        )
        .unwrap();
    }
    s.train().unwrap();
    s
}

/// Acceptance: a session killed mid-ingest (torn last ingest frame)
/// reopens to byte-identical state as of the last complete batch — on
/// the serial path and on the concurrent path — including the maintained
/// sample (proven by a bit-identical raw answer).
#[test]
fn mid_ingest_crash_reopens_byte_identical() {
    let dir = temp_store("crash");
    let sql = "SELECT AVG(rev) FROM t WHERE week BETWEEN 5 AND 15";
    let wal = dir.join("wal.vlog");

    let (want_state, want_rows, want_answer, want_sample_bytes) = {
        let mut s = persistent_warmed(&dir);
        s.ingest(&shifted_batch(300, 4.0)).unwrap();
        // Everything after this point will be torn off.
        let wal_len_after_batch1 = std::fs::metadata(&wal).unwrap().len();
        let state = s.verdict().state_bytes();
        let rows = s.table().num_rows();
        let answer = first_cell(
            &s.execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
                .unwrap()
                .unwrap_answered(),
        );
        use verdict::aqp::AqpEngine;
        let sample_bytes = table_bytes(s.engine().sample().table());
        // NOTE: the NoLearn query above appended nothing to the WAL, so
        // batch 2's ingest record starts exactly at wal_len_after_batch1.
        s.ingest(&shifted_batch(200, 9.0)).unwrap();
        let wal_len_after_batch2 = std::fs::metadata(&wal).unwrap().len();
        drop(s);
        // The crash: tear the second ingest frame in half.
        let cut = (wal_len_after_batch1 + wal_len_after_batch2) / 2;
        assert!(cut > wal_len_after_batch1 && cut < wal_len_after_batch2);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..cut as usize]).unwrap();
        (state, rows, answer, sample_bytes)
    };

    // Serial reopen: byte-identical state, same table, same sample, same
    // raw answer bits.
    {
        let mut s = SessionBuilder::open(&dir).unwrap().build().unwrap();
        let report = s.recovery_report().unwrap();
        assert_eq!(report.ingests_replayed, 1, "only the complete batch");
        assert!(report.torn_bytes > 0, "the torn frame was truncated");
        assert_eq!(s.verdict().state_bytes(), want_state);
        assert_eq!(s.table().num_rows(), want_rows);
        use verdict::aqp::AqpEngine;
        assert_eq!(
            table_bytes(s.engine().sample().table()),
            want_sample_bytes,
            "maintained sample (rows, codes, AND dictionaries) must \
             rebuild bit-identically"
        );
        let got = first_cell(
            &s.execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
                .unwrap()
                .unwrap_answered(),
        );
        assert_eq!(got, want_answer, "raw answer must survive the crash");
    }

    // Concurrent reopen of the same store: identical published state.
    {
        let s = SessionBuilder::open(&dir)
            .unwrap()
            .build_concurrent()
            .unwrap();
        assert_eq!(s.snapshot().state_bytes(), want_state);
        assert_eq!(s.table().num_rows(), want_rows);
        assert_eq!(s.data_epoch(), 1);
        let got = first_cell(
            &s.execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
                .unwrap()
                .unwrap_answered(),
        );
        assert_eq!(got, want_answer);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint after ingest folds the batches into a fresh table
/// generation; reopening replays nothing and answers identically.
#[test]
fn checkpoint_after_ingest_folds_table_generation() {
    let dir = temp_store("fold");
    let sql = "SELECT AVG(rev) FROM t WHERE week BETWEEN 5 AND 15";
    let (want_state, want_rows, want_answer) = {
        let mut s = persistent_warmed(&dir);
        s.ingest(&shifted_batch(250, 3.0)).unwrap();
        s.checkpoint().unwrap();
        let answer = first_cell(
            &s.execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
                .unwrap()
                .unwrap_answered(),
        );
        (s.verdict().state_bytes(), s.table().num_rows(), answer)
    };
    let mut s = SessionBuilder::open(&dir).unwrap().build().unwrap();
    let report = s.recovery_report().unwrap();
    assert_eq!(report.records_replayed, 0, "checkpoint folded the log");
    assert_eq!(report.ingests_replayed, 0);
    assert_eq!(s.table().num_rows(), want_rows);
    assert_eq!(s.verdict().state_bytes(), want_state);
    assert_eq!(s.verdict().data_epoch(), 1, "data epoch survives the fold");
    let got = first_cell(
        &s.execute(sql, Mode::NoLearn, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered(),
    );
    assert_eq!(got, want_answer);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: `concurrent_reads_at_fixed_epoch` parity holds *across a
/// concurrent ingest* — a pinned snapshot pair keeps answering
/// bit-identically from its table/sample/model version while newer data
/// epochs are published, from multiple threads at once.
#[test]
fn pinned_snapshot_parity_across_concurrent_ingest() {
    let mut serial = warmed_session(6_000, 7);
    serial.train().unwrap();
    let concurrent = warmed_session(6_000, 7);
    let concurrent = {
        let mut c = concurrent;
        c.train().unwrap();
        c.into_concurrent()
    };

    let sqls: Vec<String> = (0..4)
        .map(|i| {
            format!(
                "SELECT AVG(rev) FROM t WHERE week BETWEEN {} AND {}",
                2 + i,
                9 + 2 * i
            )
        })
        .collect();
    let pinned = concurrent.snapshot();
    let pinned_data_epoch = pinned.data_epoch();

    // Reference: the identically-built serial session (bit-parity of the
    // concurrent read path against serial is the established invariant;
    // here we extend it across ingest).
    let want: Vec<(u64, u64)> = sqls
        .iter()
        .map(|sql| {
            first_cell(
                &serial
                    .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
                    .unwrap()
                    .unwrap_answered(),
            )
        })
        .collect();

    // Ingest a strongly shifted batch through the concurrent session.
    let report = concurrent.ingest(&shifted_batch(500, 15.0)).unwrap();
    assert_eq!(report.data_epoch, pinned_data_epoch + 1);
    assert!(report.adjusted_keys >= 1);
    assert_eq!(concurrent.data_epoch(), pinned_data_epoch + 1);

    // Pinned reads from many threads: still bit-identical to the serial
    // pre-ingest reference.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let concurrent = &concurrent;
            let pinned = &pinned;
            let sqls = &sqls;
            let want = &want;
            scope.spawn(move || {
                for (sql, want) in sqls.iter().zip(want.iter()) {
                    let got = first_cell(
                        &concurrent
                            .execute_at(pinned, sql, Mode::Verdict, StopPolicy::ScanAll)
                            .unwrap()
                            .unwrap_answered(),
                    );
                    assert_eq!(&got, want, "pinned read drifted after ingest: {sql}");
                }
            });
        }
    });

    // And the *current* snapshot really did move: the same query now
    // reports a wider (or equal) model error — Lemma 3 lowered
    // confidence in the old answers.
    let now = concurrent
        .execute(&sqls[0], Mode::Verdict, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    let pinned_again = concurrent
        .execute_at(&pinned, &sqls[0], Mode::Verdict, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert!(
        now.rows[0].values[0].improved.error >= pinned_again.rows[0].values[0].improved.error,
        "ingest must not tighten stale bounds: {} < {}",
        now.rows[0].values[0].improved.error,
        pinned_again.rows[0].values[0].improved.error
    );
}

/// Warm-started sessions keep ingesting: the rebuilt sample admits new
/// batches exactly as a never-restarted session would (bit-identical
/// state and answers after the same post-restart ingest).
#[test]
fn warm_start_then_ingest_matches_unrestarted_session() {
    let dir = temp_store("warmingest");
    let sql = "SELECT AVG(rev) FROM t WHERE week BETWEEN 3 AND 12";
    // Reference session: never restarted.
    let mut reference = warmed_session(6_000, 7);
    reference.train().unwrap();
    reference.ingest(&shifted_batch(300, 4.0)).unwrap();
    reference.ingest(&shifted_batch(150, 6.0)).unwrap();
    // Capture the state *before* the probe query (a `Mode::Verdict`
    // execute observes snippets, mutating the state being compared).
    let want_state = reference.verdict().state_bytes();
    let want = first_cell(
        &reference
            .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered(),
    );

    // Same history, but with a restart between the two ingests.
    {
        let mut s = SessionBuilder::new(base_table(6_000))
            .sample_fraction(0.2)
            .batch_size(200)
            .seed(7)
            .persist_to(&dir)
            .build()
            .unwrap();
        for lo in (1..20).step_by(3) {
            s.execute(
                &format!(
                    "SELECT AVG(rev), COUNT(*) FROM t WHERE week BETWEEN {lo} AND {}",
                    lo + 3
                ),
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
        }
        s.train().unwrap();
        s.ingest(&shifted_batch(300, 4.0)).unwrap();
    }
    let mut s = SessionBuilder::open(&dir).unwrap().build().unwrap();
    s.ingest(&shifted_batch(150, 6.0)).unwrap();
    assert_eq!(
        s.verdict().state_bytes(),
        want_state,
        "state after restart+ingest must match the unrestarted session"
    );
    let got = first_cell(
        &s.execute(sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered(),
    );
    assert_eq!(got, want);
    let _ = std::fs::remove_dir_all(&dir);
}
