//! Concurrency invariants of the snapshot-isolated engine: writers and
//! readers hammer one [`ConcurrentSession`] from many threads, and
//! afterwards (a) every snippet any writer produced is in the synopsis —
//! nothing lost to a race, (b) the epochs readers observed only ever
//! moved forward, and (c) a checkpoint + reopen recovers a learned state
//! bit-identical to the in-memory one (the WAL the serialized writer
//! produced is a valid serial history).

use std::sync::atomic::{AtomicU64, Ordering};

use verdict::core::{AggKey, EngineStats};
use verdict::{ConcurrentSession, Mode, SampleRotation, SessionBuilder, StopPolicy};
use verdict_storage::{ColumnDef, Schema, Table};

fn base_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::numeric_dimension("week"),
        ColumnDef::categorical_dimension("region"),
        ColumnDef::measure("rev"),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    let mut state = 1u64;
    for i in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let week = 1.0 + (i % 100) as f64;
        let region = ["us", "eu", "jp"][i % 3];
        let rev = 100.0 + 20.0 * (week / 15.0).sin() + 5.0 * (u - 0.5);
        t.push_row(vec![week.into(), region.into(), rev.into()])
            .unwrap();
    }
    t
}

fn temp_store(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("verdict-concurrent-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One writer's workload: `count` AVG queries over distinct week bands,
/// each of which records exactly one snippet (the AVG primitive) because
/// every band matches plenty of sample rows (finite error) and forms a
/// valid region.
fn writer_workload(session: &ConcurrentSession, writer: usize, count: usize) {
    for k in 0..count {
        let lo = (writer * count + k) % 90;
        let sql = format!(
            "SELECT AVG(rev) FROM t WHERE week BETWEEN {lo} AND {}",
            lo + 10
        );
        let r = session
            .execute(&sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered();
        assert_eq!(r.rows.len(), 1);
        assert!(r.rows[0].values[0].raw_error.is_finite());
    }
}

#[test]
fn stress_writers_and_readers_lose_nothing() {
    const WRITERS: usize = 3;
    const QUERIES_PER_WRITER: usize = 8;
    const READERS: usize = 2;
    const READS_PER_READER: usize = 30;

    let dir = temp_store("stress");
    let session = SessionBuilder::new(base_table(20_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .num_samples(2)
        .sample_rotation(SampleRotation::RoundRobin)
        .persist_to(&dir)
        .build_concurrent()
        .unwrap();
    assert!(session.is_persistent());

    let max_epoch_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let session = &session;
            scope.spawn(move || writer_workload(session, w, QUERIES_PER_WRITER));
        }
        for _ in 0..READERS {
            let session = &session;
            let max_epoch_seen = &max_epoch_seen;
            scope.spawn(move || {
                let mut last = 0u64;
                for _ in 0..READS_PER_READER {
                    // Epochs move forward only, whether observed via the
                    // cell directly or stamped into a query result.
                    let epoch = session.epoch();
                    assert!(epoch >= last, "epoch went backwards: {epoch} < {last}");
                    last = epoch;
                    let r = session
                        .execute(
                            "SELECT AVG(rev) FROM t WHERE week <= 50",
                            Mode::NoLearn,
                            StopPolicy::TupleBudget(400),
                        )
                        .unwrap()
                        .unwrap_answered();
                    assert!(r.epoch >= last, "result epoch predates loaded epoch");
                    last = r.epoch;
                }
                max_epoch_seen.fetch_max(last, Ordering::Relaxed);
            });
        }
    });

    // No lost snippets: every writer query recorded exactly one AVG
    // observation through the serialized learn path.
    let expected = (WRITERS * QUERIES_PER_WRITER) as u64;
    let snap = session.snapshot();
    assert_eq!(snap.stats().observed, expected, "lost snippets");
    assert_eq!(
        snap.synopsis_len(&AggKey::avg("rev")),
        expected as usize,
        "synopsis disagrees with the observation count"
    );
    // The final published epoch is at least what any reader saw.
    assert!(session.epoch() >= max_epoch_seen.load(Ordering::Relaxed));

    // Train (publishes models + checkpoints), then prove the durable
    // state is bit-identical to the in-memory one across a reopen.
    session.train().unwrap();
    session.checkpoint().unwrap();
    let expected_bytes = session.snapshot().state_bytes();
    drop(session); // releases the store's writer lock
    let reopened = SessionBuilder::open(&dir).unwrap().build().unwrap();
    assert_eq!(
        reopened.verdict().state_bytes(),
        expected_bytes,
        "recovered state diverged from the in-memory state"
    );
    assert!(reopened.verdict().has_model(&AggKey::avg("rev")));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writers, readers, **and an ingester** hammer one persistent session:
/// (a) no snippet is lost, (b) every ingested batch lands exactly once —
/// final table rows and data epoch account for all of them, (c) epochs
/// and data epochs only move forward for every reader, and (d) a
/// train + checkpoint + reopen recovers the evolved table *and* the
/// learned state bit-identically.
#[test]
fn stress_writers_readers_and_ingester() {
    const WRITERS: usize = 2;
    const QUERIES_PER_WRITER: usize = 6;
    const READERS: usize = 2;
    const READS_PER_READER: usize = 25;
    const INGESTS: usize = 5;
    const ROWS_PER_INGEST: usize = 40;
    const BASE_ROWS: usize = 20_000;

    let dir = temp_store("ingest-stress");
    let session = SessionBuilder::new(base_table(BASE_ROWS))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .persist_to(&dir)
        .build_concurrent()
        .unwrap();

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let session = &session;
            scope.spawn(move || writer_workload(session, w, QUERIES_PER_WRITER));
        }
        {
            let session = &session;
            scope.spawn(move || {
                for k in 0..INGESTS {
                    let rows: Vec<Vec<verdict_storage::Value>> = (0..ROWS_PER_INGEST)
                        .map(|i| {
                            let week = 1.0 + ((k * ROWS_PER_INGEST + i) % 100) as f64;
                            let region = ["us", "eu", "jp"][i % 3];
                            let rev = 110.0 + k as f64; // drifting upward
                            vec![week.into(), region.into(), rev.into()]
                        })
                        .collect();
                    let report = session.ingest(&rows).unwrap();
                    assert_eq!(report.appended_rows, ROWS_PER_INGEST);
                }
            });
        }
        for _ in 0..READERS {
            let session = &session;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut last_data = 0u64;
                for _ in 0..READS_PER_READER {
                    let snap = session.snapshot();
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    assert!(snap.data_epoch() >= last_data, "data epoch went backwards");
                    last_epoch = snap.epoch();
                    last_data = snap.data_epoch();
                    let r = session
                        .execute(
                            "SELECT AVG(rev) FROM t WHERE week <= 50",
                            Mode::NoLearn,
                            StopPolicy::TupleBudget(400),
                        )
                        .unwrap()
                        .unwrap_answered();
                    assert!(r.rows[0].values[0].raw_error.is_finite());
                }
            });
        }
    });

    // Every batch landed exactly once; every snippet survived.
    assert_eq!(session.data_epoch(), INGESTS as u64);
    assert_eq!(
        session.table().num_rows(),
        BASE_ROWS + INGESTS * ROWS_PER_INGEST
    );
    assert_eq!(
        session.snapshot().stats().observed,
        (WRITERS * QUERIES_PER_WRITER) as u64,
        "lost snippets"
    );

    // Durability: the evolved table and learned state reopen
    // bit-identically (train folds the WAL, including ingest records,
    // into a fresh snapshot + table generation).
    session.train().unwrap();
    let expected_bytes = session.snapshot().state_bytes();
    let expected_rows = session.table().num_rows();
    drop(session);
    let reopened = SessionBuilder::open(&dir).unwrap().build().unwrap();
    assert_eq!(reopened.table().num_rows(), expected_rows);
    assert_eq!(reopened.verdict().data_epoch(), INGESTS as u64);
    assert_eq!(
        reopened.verdict().state_bytes(),
        expected_bytes,
        "recovered state diverged from the in-memory state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Mode::NoLearn` queries are pure reads: no counter moves, no epoch
/// moves, no snippet recorded — the writer mutex is never taken.
#[test]
fn nolearn_queries_do_not_touch_the_learn_path() {
    let session = SessionBuilder::new(base_table(5_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .build_concurrent()
        .unwrap();
    let before = session.snapshot();
    for _ in 0..5 {
        session
            .execute(
                "SELECT AVG(rev), COUNT(*) FROM t WHERE week <= 40",
                Mode::NoLearn,
                StopPolicy::ScanAll,
            )
            .unwrap()
            .unwrap_answered();
    }
    let after = session.snapshot();
    assert_eq!(after.epoch(), before.epoch());
    assert_eq!(after.stats(), EngineStats::default());
}

/// Promotion preserves the serial session's active sample, and pinned
/// reads are a pure function of the snapshot: they always scan the fixed
/// sample, even on a round-robin session whose rotation counter is being
/// advanced by interleaved `execute` calls.
#[test]
fn promotion_keeps_active_sample_and_pinned_reads_ignore_rotation() {
    let sql = "SELECT AVG(rev) FROM t WHERE week <= 50";
    let policy = StopPolicy::TupleBudget(400);

    // Serial session scanning sample 2 of 3 — the answer must not shift
    // across into_concurrent().
    let mut serial = SessionBuilder::new(base_table(10_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(9)
        .num_samples(3)
        .build()
        .unwrap();
    serial.set_active_sample(2).unwrap();
    let want = serial
        .execute(sql, Mode::NoLearn, policy)
        .unwrap()
        .unwrap_answered();
    let promoted = serial.into_concurrent();
    let got = promoted
        .execute(sql, Mode::NoLearn, policy)
        .unwrap()
        .unwrap_answered();
    assert_eq!(
        got.rows[0].values[0].raw_answer.to_bits(),
        want.rows[0].values[0].raw_answer.to_bits(),
        "promotion changed which sample Fixed rotation scans"
    );

    // Round-robin session: execute() rotates, execute_at() must not —
    // same pinned answer before and after the rotation counter moves.
    let rotating = SessionBuilder::new(base_table(10_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(9)
        .num_samples(3)
        .sample_rotation(SampleRotation::RoundRobin)
        .build_concurrent()
        .unwrap();
    let snap = rotating.snapshot();
    let a = rotating
        .execute_at(&snap, sql, Mode::NoLearn, policy)
        .unwrap()
        .unwrap_answered();
    for _ in 0..2 {
        rotating.execute(sql, Mode::NoLearn, policy).unwrap();
    }
    let b = rotating
        .execute_at(&snap, sql, Mode::NoLearn, policy)
        .unwrap()
        .unwrap_answered();
    assert_eq!(
        a.rows[0].values[0].raw_answer.to_bits(),
        b.rows[0].values[0].raw_answer.to_bits(),
        "pinned reads must not depend on the shared rotation counter"
    );
}

/// A pinned snapshot keeps answering from its epoch even while writers
/// publish newer state: the isolation half of "snapshot isolation".
#[test]
fn pinned_snapshot_is_isolated_from_writers() {
    let session = SessionBuilder::new(base_table(10_000))
        .sample_fraction(0.2)
        .batch_size(200)
        .seed(5)
        .build_concurrent()
        .unwrap();
    let sql = "SELECT AVG(rev) FROM t WHERE week BETWEEN 20 AND 60";
    let pinned = session.snapshot();
    let before = session
        .execute_at(&pinned, sql, Mode::Verdict, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();

    // Writers move the engine: observations + training publish new epochs.
    writer_workload(&session, 0, 12);
    session.train().unwrap();
    assert!(session.epoch() > pinned.epoch());
    let live = session
        .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert!(
        live.rows[0].values[0].improved.used_model,
        "post-training reads must see the model"
    );

    // The pinned snapshot still answers from its own (model-free) epoch.
    let after = session
        .execute_at(&pinned, sql, Mode::Verdict, StopPolicy::ScanAll)
        .unwrap()
        .unwrap_answered();
    assert_eq!(after.epoch, pinned.epoch());
    assert!(!after.rows[0].values[0].improved.used_model);
    assert_eq!(
        after.rows[0].values[0].improved.answer.to_bits(),
        before.rows[0].values[0].improved.answer.to_bits()
    );
    assert_eq!(
        after.rows[0].values[0].improved.error.to_bits(),
        before.rows[0].values[0].improved.error.to_bits()
    );
}
