//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the benchmark surface it uses: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement is intentionally simple: each benchmark warms up briefly,
//! then runs timed batches until a time budget is spent, reporting the
//! mean, minimum, and maximum nanoseconds per iteration to stdout. There
//! is no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs closures and accumulates timing.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Time budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Brief warm-up.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<50} (no iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!(
            "{label:<50} {:>14}/iter  ({} iters)",
            format_ns(per_iter),
            self.iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the harness keys off wall-clock budget,
    /// so a smaller sample size shortens the budget proportionally.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let scaled = (n as f64 / 100.0).clamp(0.1, 1.0);
        self.budget = Duration::from_secs_f64(DEFAULT_BUDGET_SECS * scaled);
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.budget = time;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher) -> R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(&label);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I) -> R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Ends the group (marker only).
    pub fn finish(&mut self) {}
}

const DEFAULT_BUDGET_SECS: f64 = 0.5;

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_secs_f64(DEFAULT_BUDGET_SECS),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            budget: self.budget,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<R>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher) -> R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(&id.to_string());
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_functions_and_inputs() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        let mut ran = 0;
        group.sample_size(10).bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("p", 4), &4, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn iter_batched_consumes_setup_outputs() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(
            || vec![1u8; 16],
            |v| v.into_iter().map(u64::from).sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("quadrature", 64).to_string(),
            "quadrature/64"
        );
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
