//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, `prop_assert*`
//! macros, range/tuple/string strategies, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, `Just`, and the `prop_map` /
//! `prop_flat_map` combinators.
//!
//! Differences from upstream: cases are generated from a fixed seed (fully
//! deterministic across runs) and failing inputs are *not* shrunk — the
//! panic message reports the failing assertion instead. String strategies
//! support the regex subset the workspace uses: a sequence of `.`, literal
//! characters, and `[...]` classes, each with an optional `{m,n}` repeat.

pub mod strategy;

pub mod test_runner {
    //! Configuration and failure plumbing for generated test cases.

    /// Per-test configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite fast
            // while still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case (assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }

    /// Result type of a generated test-case closure.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::strategy::collection;
    pub use crate::strategy::sample;
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test file expects.

    pub use crate::prop;
    pub use crate::strategy::{any, collection, sample, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0.0..1.0f64) { prop_assert!(x < 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::strategy::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        // Cases are seeded deterministically from the test
                        // name, so "case k" is reproducible by rerunning.
                        panic!(
                            "proptest case {}/{} failed: {}",
                            __case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with a value-revealing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
}

/// `prop_assert!(a != b)` with a value-revealing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l != r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l
            )));
        }
    }};
}
