//! Strategies: deterministic value generators for [`crate::proptest!`].

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG threaded through every strategy of one test.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator seeded from the test's name, so each test
    /// gets a distinct but fully reproducible case stream.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the result (dependent generation).
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> T, T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 samples in a row",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `any::<T>()` — the whole-domain strategy for simple types.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a whole-domain generator.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across a wide magnitude span (no NaN/inf — the
        // workspace's properties expect arithmetic inputs).
        let exp = rng.gen_range(-60..60i32);
        let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
        mantissa * (exp as f64).exp2()
    }
}

// String strategies: a pattern string acts as its own strategy, as in
// upstream proptest. Supported subset: a sequence of atoms, where an atom
// is `.`, a literal character, or a `[...]` class (literal characters,
// `a-z` ranges, `-` allowed last), each with an optional `{m,n}` repeat.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable ASCII plus a few spicy characters.
    AnyChar,
    /// A set of candidate characters (`[...]` class or a literal).
    Class(Vec<char>),
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for (atom, min, max) in &atoms {
        let reps = rng.gen_range(*min..=*max);
        for _ in 0..reps {
            match atom {
                Atom::AnyChar => {
                    // Mostly printable ASCII with occasional control or
                    // non-ASCII characters, mimicking upstream's `.`.
                    let c = match rng.gen_range(0..20u32) {
                        0 => char::from_u32(rng.gen_range(1..32u32)).unwrap_or('\u{1}'),
                        1 => char::from_u32(rng.gen_range(0x80..0x2000u32)).unwrap_or('¡'),
                        _ => char::from(rng.gen_range(0x20..0x7Fu8)),
                    };
                    out.push(c);
                }
                Atom::Class(set) => {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
        }
    }
    out
}

/// Parses the supported regex subset into `(atom, min_reps, max_reps)`.
fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("class range chars"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                // Escaped literal.
                i += 2;
                Atom::Class(vec![chars[i - 1]])
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Optional {m,n} / {n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

/// `prop::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size bound accepted by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::sample` — choosing among given values.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select on empty options");
        Select(options)
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy_unit_tests")
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (1usize..5).sample(&mut r);
            assert!((1..5).contains(&x));
            let y = (2usize..=2).sample(&mut r);
            assert_eq!(y, 2);
            let f = (-1.5..2.5f64).sample(&mut r);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn tuples_and_collections_compose() {
        let mut r = rng();
        let strat = collection::vec((0.0..1.0f64, 0u32..3), 2..5);
        for _ in 0..50 {
            let v = strat.sample(&mut r);
            assert!((2..5).contains(&v.len()));
            for (f, c) in v {
                assert!((0.0..1.0).contains(&f));
                assert!(c < 3);
            }
        }
    }

    #[test]
    fn flat_map_threads_dependent_sizes() {
        let mut r = rng();
        let strat = (1usize..=4).prop_flat_map(|n| (Just(n), collection::vec(0.0..1.0f64, n..=n)));
        for _ in 0..50 {
            let (n, v) = strat.sample(&mut r);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn string_patterns_respect_classes() {
        let mut r = rng();
        let ident = "[a-z][a-z0-9_]{0,10}";
        for _ in 0..100 {
            let s = ident.sample(&mut r);
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .skip(1)
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
        for _ in 0..50 {
            let s = ".{0,200}".sample(&mut r);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn select_only_yields_options() {
        let mut r = rng();
        let s = sample::select(vec!["a", "b", "c"]);
        for _ in 0..30 {
            assert!(["a", "b", "c"].contains(&s.sample(&mut r)));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        let strat = collection::vec(0.0..1.0f64, 0..10);
        for _ in 0..10 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
