//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64, the same
//! construction family as upstream), the [`Rng`]/[`SeedableRng`] traits
//! with `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom`] with
//! Fisher–Yates `shuffle`/`choose`.
//!
//! Statistical quality matches the upstream generators for the purposes of
//! this repository (sampling, synthetic data generation, property tests);
//! the stream of values is *not* byte-compatible with upstream `rand`.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Uniform draw in `[0, span)`. 128 random bits against a span of at most
/// 2^65 leaves a modulo bias below 2^-63 — far beneath anything the
/// workspace's statistical tests can detect.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's standard RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..100 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
        assert_eq!(rng.gen_range(7..8u32), 7);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(13);
        let items = [1, 2, 3];
        assert!(([] as [u32; 0]).choose(&mut rng).is_none());
        for _ in 0..10 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
