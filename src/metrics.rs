//! Engine-side observability glue: pre-registered per-table metric
//! handles and the public [`CheckpointReport`].
//!
//! The zero-dependency primitives (counters, gauges, histograms, the
//! query trace/log) live in [`verdict_obs`] (re-exported as
//! [`crate::obs`]); this module binds them to the engine's pipeline.
//! Every session/shard owns a `TableObs`: when metrics are enabled it
//! holds one pre-registered handle per metric (registration walks a
//! `Mutex`-guarded map, so it happens once at build time; the hot path
//! only touches lock-free atomics), and when disabled every recording
//! method returns immediately without reading a clock or touching an
//! atomic.
//!
//! ## Metric catalog
//!
//! All series carry a `table` label. Counters (monotone):
//!
//! | name | meaning |
//! |---|---|
//! | `verdict_queries_started` | `execute`/`query` calls that passed the store-error gate |
//! | `verdict_queries_answered` | queries that produced a [`crate::QueryResult`] |
//! | `verdict_queries_unsupported` | queries classified outside the supported class |
//! | `verdict_tuples_scanned_total` | sample tuples visited by shared scans |
//! | `verdict_scan_chunks_total` | chunk segments visited by the chunked scan kernel |
//! | `verdict_scan_chunks_pruned_total` | chunk segments skipped via zone maps without touching data |
//! | `verdict_scan_morsels_total` | morsels claimed by parallel scan workers |
//! | `verdict_scan_morsels_stolen_total` | morsels stolen across worker deques |
//! | `verdict_partitions_pruned_total` | sample partitions skipped wholesale via partition summaries |
//! | `verdict_partition_cache_hits_total` | out-of-core segment pins served from the partition cache |
//! | `verdict_partition_cache_misses_total` | out-of-core segment pins that faulted the segment from disk |
//! | `verdict_partition_cache_evictions_total` | cached segments evicted to stay under the memory budget |
//! | `verdict_rows_matched_total` | scanned rows that passed the base predicate |
//! | `verdict_cells_total` | result cells (groups × aggregates) answered |
//! | `verdict_cells_frozen_early_total` | cells that met the stop policy before the scan ended |
//! | `verdict_snippets_observed_total` | raw observations absorbed into the synopsis |
//! | `verdict_groups_dropped_total` | groups dropped by the `N_max` cap |
//! | `verdict_ingest_batches_total` / `verdict_ingest_rows_total` | ingest calls / rows appended |
//! | `verdict_train_total` | training passes |
//! | `verdict_checkpoints_total` / `verdict_checkpoint_bytes_total` | snapshot generations written / bytes |
//!
//! Histograms (log₂ buckets, nanoseconds unless noted):
//! `verdict_query_latency_ns`, per-stage `verdict_stage_{parse,plan,scan,
//! infer,absorb}_ns`, `verdict_ingest_latency_ns`, `verdict_refit_ns`,
//! `verdict_checkpoint_ns`, `verdict_train_ns`, and
//! `verdict_scan_selectivity_pct` (percent of scanned rows that matched
//! the base predicate, one sample per answered query).
//!
//! Gauges (last written value): `verdict_synopsis_snippets`,
//! `verdict_synopsis_keys`, `verdict_sample_rows`, `verdict_epoch`,
//! `verdict_data_epoch`, `verdict_widening_magnitude` (Lemma-3
//! `Σ(|µ|+η)` of the most recent ingest),
//! `verdict_partitions_resident_bytes` (bytes of paged sample segments
//! currently cached in memory), and the store poll
//! `verdict_wal_appends`, `verdict_wal_bytes`,
//! `verdict_store_snapshots`, `verdict_store_snapshot_bytes`.

use std::sync::Arc;
use std::time::Duration;

use verdict_obs::{Counter, Gauge, Histogram, MetricsHub, QueryLog, QueryTrace};
use verdict_storage::CacheCounters;
use verdict_store::StoreStats;

use crate::session::IngestReport;

/// What one [`crate::VerdictSession::checkpoint`] (or
/// [`crate::Database::checkpoint`]) call wrote.
///
/// All zeros when the session has no durable store (checkpoint is a
/// no-op there). The numbers come from the store's own
/// [`verdict_store::SnapshotReceipt`] — the single timing source the
/// metrics layer also reads, so the report and the
/// `verdict_checkpoint_*` series can never disagree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Snapshot generations written (one per checkpointed table).
    pub snapshots_written: u64,
    /// Bytes written across those snapshots (table + state files).
    pub bytes_written: u64,
    /// Wall-clock spent encoding and writing.
    pub elapsed: Duration,
}

impl CheckpointReport {
    /// Folds another table's checkpoint into this one (database-wide
    /// checkpoints aggregate per-shard receipts).
    pub(crate) fn absorb(&mut self, other: &CheckpointReport) {
        self.snapshots_written += other.snapshots_written;
        self.bytes_written += other.bytes_written;
        self.elapsed += other.elapsed;
    }

    /// Builds a one-snapshot report from a store receipt.
    pub(crate) fn from_receipt(receipt: &verdict_store::SnapshotReceipt) -> CheckpointReport {
        CheckpointReport {
            snapshots_written: 1,
            bytes_written: receipt.bytes_written,
            elapsed: receipt.elapsed,
        }
    }
}

/// Pre-registered handles for every per-table series (present iff the
/// hub is attached). Handles are `Arc`-backed, so cloning the bundle
/// shares the underlying atomics.
#[derive(Clone)]
struct Handles {
    queries_started: Counter,
    queries_answered: Counter,
    queries_unsupported: Counter,
    query_latency_ns: Histogram,
    stage_parse_ns: Histogram,
    stage_plan_ns: Histogram,
    stage_scan_ns: Histogram,
    stage_infer_ns: Histogram,
    stage_absorb_ns: Histogram,
    tuples_scanned: Counter,
    scan_chunks: Counter,
    scan_chunks_pruned: Counter,
    scan_morsels: Counter,
    scan_morsels_stolen: Counter,
    partitions_pruned: Counter,
    partition_cache_hits: Counter,
    partition_cache_misses: Counter,
    partition_cache_evictions: Counter,
    partitions_resident_bytes: Gauge,
    rows_matched: Counter,
    scan_selectivity_pct: Histogram,
    cells: Counter,
    cells_frozen_early: Counter,
    snippets_observed: Counter,
    groups_dropped: Counter,
    ingest_batches: Counter,
    ingest_rows: Counter,
    ingest_latency_ns: Histogram,
    refit_ns: Histogram,
    widening_magnitude: Gauge,
    train_total: Counter,
    train_ns: Histogram,
    checkpoints: Counter,
    checkpoint_bytes: Counter,
    checkpoint_ns: Histogram,
    wal_appends: Gauge,
    wal_bytes: Gauge,
    store_snapshots: Gauge,
    store_snapshot_bytes: Gauge,
    synopsis_snippets: Gauge,
    synopsis_keys: Gauge,
    sample_rows: Gauge,
    epoch: Gauge,
    data_epoch: Gauge,
}

impl Handles {
    fn register(hub: &MetricsHub, table: &str) -> Handles {
        Handles {
            queries_started: hub.table_counter("verdict_queries_started", table),
            queries_answered: hub.table_counter("verdict_queries_answered", table),
            queries_unsupported: hub.table_counter("verdict_queries_unsupported", table),
            query_latency_ns: hub.table_histogram("verdict_query_latency_ns", table),
            stage_parse_ns: hub.table_histogram("verdict_stage_parse_ns", table),
            stage_plan_ns: hub.table_histogram("verdict_stage_plan_ns", table),
            stage_scan_ns: hub.table_histogram("verdict_stage_scan_ns", table),
            stage_infer_ns: hub.table_histogram("verdict_stage_infer_ns", table),
            stage_absorb_ns: hub.table_histogram("verdict_stage_absorb_ns", table),
            tuples_scanned: hub.table_counter("verdict_tuples_scanned_total", table),
            scan_chunks: hub.table_counter("verdict_scan_chunks_total", table),
            scan_chunks_pruned: hub.table_counter("verdict_scan_chunks_pruned_total", table),
            scan_morsels: hub.table_counter("verdict_scan_morsels_total", table),
            scan_morsels_stolen: hub.table_counter("verdict_scan_morsels_stolen_total", table),
            partitions_pruned: hub.table_counter("verdict_partitions_pruned_total", table),
            partition_cache_hits: hub.table_counter("verdict_partition_cache_hits_total", table),
            partition_cache_misses: hub
                .table_counter("verdict_partition_cache_misses_total", table),
            partition_cache_evictions: hub
                .table_counter("verdict_partition_cache_evictions_total", table),
            partitions_resident_bytes: hub.table_gauge("verdict_partitions_resident_bytes", table),
            rows_matched: hub.table_counter("verdict_rows_matched_total", table),
            scan_selectivity_pct: hub.table_histogram("verdict_scan_selectivity_pct", table),
            cells: hub.table_counter("verdict_cells_total", table),
            cells_frozen_early: hub.table_counter("verdict_cells_frozen_early_total", table),
            snippets_observed: hub.table_counter("verdict_snippets_observed_total", table),
            groups_dropped: hub.table_counter("verdict_groups_dropped_total", table),
            ingest_batches: hub.table_counter("verdict_ingest_batches_total", table),
            ingest_rows: hub.table_counter("verdict_ingest_rows_total", table),
            ingest_latency_ns: hub.table_histogram("verdict_ingest_latency_ns", table),
            refit_ns: hub.table_histogram("verdict_refit_ns", table),
            widening_magnitude: hub.table_gauge("verdict_widening_magnitude", table),
            train_total: hub.table_counter("verdict_train_total", table),
            train_ns: hub.table_histogram("verdict_train_ns", table),
            checkpoints: hub.table_counter("verdict_checkpoints_total", table),
            checkpoint_bytes: hub.table_counter("verdict_checkpoint_bytes_total", table),
            checkpoint_ns: hub.table_histogram("verdict_checkpoint_ns", table),
            wal_appends: hub.table_gauge("verdict_wal_appends", table),
            wal_bytes: hub.table_gauge("verdict_wal_bytes", table),
            store_snapshots: hub.table_gauge("verdict_store_snapshots", table),
            store_snapshot_bytes: hub.table_gauge("verdict_store_snapshot_bytes", table),
            synopsis_snippets: hub.table_gauge("verdict_synopsis_snippets", table),
            synopsis_keys: hub.table_gauge("verdict_synopsis_keys", table),
            sample_rows: hub.table_gauge("verdict_sample_rows", table),
            epoch: hub.table_gauge("verdict_epoch", table),
            data_epoch: hub.table_gauge("verdict_data_epoch", table),
        }
    }
}

/// One table's observability endpoint: the (optional) metric handle
/// bundle plus the (optional) shared query log. Both halves are
/// independent — a session can keep a query log with no metrics hub and
/// vice versa. Cloning shares both.
#[derive(Clone, Default)]
pub(crate) struct TableObs {
    hub: Option<Arc<MetricsHub>>,
    handles: Option<Handles>,
    log: Option<Arc<QueryLog>>,
}

impl TableObs {
    pub(crate) fn new(
        hub: Option<Arc<MetricsHub>>,
        log: Option<Arc<QueryLog>>,
        table: &str,
    ) -> TableObs {
        let handles = hub.as_ref().map(|h| Handles::register(h, table));
        TableObs { hub, handles, log }
    }

    /// Whether per-stage stopwatches should run (metrics or query log
    /// attached). When false the execute path reads no stage clocks.
    pub(crate) fn tracing(&self) -> bool {
        self.handles.is_some() || self.log.is_some()
    }

    pub(crate) fn hub(&self) -> Option<&Arc<MetricsHub>> {
        self.hub.as_ref()
    }

    pub(crate) fn log(&self) -> Option<&Arc<QueryLog>> {
        self.log.as_ref()
    }

    /// A query passed the store-error gate and is about to be parsed.
    pub(crate) fn query_started(&self) {
        if let Some(h) = &self.handles {
            h.queries_started.inc();
        }
    }

    /// A query was classified unsupported (it still "finished").
    pub(crate) fn query_unsupported(&self) {
        if let Some(h) = &self.handles {
            h.queries_unsupported.inc();
        }
    }

    /// An answered query: bump every engine-fact series and push the
    /// trace into the query log.
    pub(crate) fn record_query(&self, trace: QueryTrace, groups_dropped: usize) {
        if let Some(h) = &self.handles {
            h.queries_answered.inc();
            h.query_latency_ns.record(trace.elapsed_ns);
            h.stage_parse_ns.record(trace.stages.parse_ns);
            h.stage_plan_ns.record(trace.stages.plan_ns);
            h.stage_scan_ns.record(trace.stages.scan_ns);
            h.stage_infer_ns.record(trace.stages.infer_ns);
            h.stage_absorb_ns.record(trace.stages.absorb_ns);
            h.tuples_scanned.add(trace.tuples_scanned);
            h.scan_chunks.add(trace.chunks);
            h.scan_chunks_pruned.add(trace.chunks_pruned);
            h.scan_morsels.add(trace.morsels);
            h.scan_morsels_stolen.add(trace.morsels_stolen);
            h.partitions_pruned.add(trace.partitions_pruned);
            h.rows_matched.add(trace.rows_matched);
            if let Some(sel) = (trace.rows_matched * 100).checked_div(trace.tuples_scanned) {
                h.scan_selectivity_pct.record(sel);
            }
            h.cells.add(trace.cells);
            h.cells_frozen_early.add(trace.cells_frozen_early);
            h.snippets_observed.add(trace.snippets_observed);
            h.groups_dropped.add(groups_dropped as u64);
            h.epoch.set(trace.epoch as f64);
            h.data_epoch.set(trace.data_epoch as f64);
        }
        if let Some(log) = &self.log {
            log.push(trace);
        }
    }

    /// One ingest call, from the report the caller is about to return —
    /// the report *is* the instrumentation, so the metrics and the
    /// returned numbers share one clock.
    pub(crate) fn record_ingest(&self, report: &IngestReport) {
        if let Some(h) = &self.handles {
            h.ingest_batches.inc();
            h.ingest_rows.add(report.appended_rows as u64);
            h.ingest_latency_ns.record(duration_ns(report.elapsed));
            h.refit_ns.record(duration_ns(report.refit_elapsed));
            h.widening_magnitude.set(report.widening_magnitude);
            h.data_epoch.set(report.data_epoch as f64);
        }
    }

    /// One shared scan's partition-cache activity (`delta` is the
    /// counter movement during that scan; `resident_bytes` is the cache
    /// occupancy after it).
    pub(crate) fn record_partition_cache(&self, delta: &CacheCounters) {
        if let Some(h) = &self.handles {
            h.partition_cache_hits.add(delta.hits);
            h.partition_cache_misses.add(delta.misses);
            h.partition_cache_evictions.add(delta.evictions);
            h.partitions_resident_bytes.set(delta.resident_bytes as f64);
        }
    }

    /// One training pass.
    pub(crate) fn record_train(&self, elapsed: Duration) {
        if let Some(h) = &self.handles {
            h.train_total.inc();
            h.train_ns.record(duration_ns(elapsed));
        }
    }

    /// A snapshot write (explicit checkpoint or query-piggybacked
    /// compaction), from the store's own receipt.
    pub(crate) fn record_checkpoint(&self, report: &CheckpointReport) {
        if let Some(h) = &self.handles {
            h.checkpoints.add(report.snapshots_written);
            h.checkpoint_bytes.add(report.bytes_written);
            h.checkpoint_ns.record(duration_ns(report.elapsed));
        }
    }

    /// Polls the store's cumulative WAL/snapshot counters into gauges.
    pub(crate) fn refresh_store(&self, stats: StoreStats) {
        if let Some(h) = &self.handles {
            h.wal_appends.set(stats.wal_appends as f64);
            h.wal_bytes.set(stats.wal_bytes as f64);
            h.store_snapshots.set(stats.snapshots as f64);
            h.store_snapshot_bytes.set(stats.snapshot_bytes as f64);
        }
    }

    /// Refreshes the engine-state gauges (synopsis/sample sizes, epochs).
    pub(crate) fn refresh_engine(
        &self,
        synopsis_snippets: usize,
        synopsis_keys: usize,
        sample_rows: usize,
        epoch: u64,
        data_epoch: u64,
    ) {
        if let Some(h) = &self.handles {
            h.synopsis_snippets.set(synopsis_snippets as f64);
            h.synopsis_keys.set(synopsis_keys as f64);
            h.sample_rows.set(sample_rows as f64);
            h.epoch.set(epoch as f64);
            h.data_epoch.set(data_epoch as f64);
        }
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
