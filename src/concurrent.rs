//! Snapshot-isolated concurrent sessions: the single-table face of the
//! [`crate::Database`] engine.
//!
//! A [`ConcurrentSession`] is a **thin wrapper over a one-table
//! `Database`** — it holds a catalog with exactly one registered table
//! (named `"t"`, with any `FROM` name resolving to it, matching the
//! pre-catalog sessions) and delegates every operation to the shared
//! per-table shard machinery in [`crate::database`]. The guarantees are
//! therefore the database's, specialized to one table:
//!
//! - **Read path** (lock-free beyond one pointer copy): each query loads
//!   the current [`SessionSnapshot`] — a *paired* immutable view of the
//!   learned state and the data it describes — and answers every cell
//!   from that state. The snapshot's epoch is stamped into
//!   [`crate::QueryResult::epoch`].
//! - **Learn path** (serialized): raw snippet observations are absorbed
//!   under the table's writer mutex — synopsis append, WAL append, and
//!   snapshot republish happen in writer-lock order, so persisted
//!   sequence numbers are exactly what a serial session would have
//!   written.
//! - **Ingest path** (serialized with the learn path): a grown table,
//!   samples with the batch admitted, and the Lemma-3-widened engine
//!   state are published together as the next [`SessionSnapshot`];
//!   readers in flight keep the pair they loaded.
//!
//! A query that loaded epoch `e` keeps answering from epoch `e` even if a
//! writer publishes `e + 1` mid-scan — snapshot isolation over both the
//! learned state and the data, because both halves of a
//! [`SessionSnapshot`] are immutable and paired atomically.
//!
//! On a multi-table [`crate::Database`], this same machinery runs **per
//! table**: reads on one table never serialize behind learning or ingest
//! on another.

use std::sync::Arc;

use verdict_obs::{MetricsSnapshot, QueryLog, QueryTrace};
use verdict_storage::{Table, Value};
use verdict_store::RecoveryReport;

use crate::database::Database;
use crate::metrics::CheckpointReport;
use crate::query::QueryOptions;
use crate::session::{IngestReport, SessionParts};
use crate::{Mode, QueryOutcome, Result, StopPolicy};

pub use crate::database::SessionSnapshot;

/// A `Send + Sync` session serving queries from any number of threads.
///
/// Created by [`crate::VerdictSession::into_concurrent`] or
/// [`crate::SessionBuilder::build_concurrent`]. Cloning is cheap (one
/// `Arc`); all clones share the samples, the published snapshot pair, and
/// the serialized writer. Structurally this is a one-table
/// [`crate::Database`] — use [`ConcurrentSession::into_database`] to keep
/// the shared state and address it through the catalog API instead.
#[derive(Clone)]
pub struct ConcurrentSession {
    db: Database,
}

impl ConcurrentSession {
    pub(crate) fn from_parts(parts: SessionParts) -> ConcurrentSession {
        ConcurrentSession {
            db: Database::from_session_parts(parts, "t", true),
        }
    }

    /// The one-table [`crate::Database`] this session wraps. The returned
    /// handle shares all state with the session (same samples, same
    /// learned state, same store).
    ///
    /// The table is named `"t"` and — unlike a catalog built through
    /// [`crate::Database::builder`] or [`crate::VerdictSession::into_database`]
    /// — keeps this session's lenient `FROM` resolution: any name
    /// resolves to the one table, because queries written for the
    /// session API (which ignored `FROM`) must keep working on the
    /// unwrapped handle. For strict resolution, promote the serial
    /// session with [`crate::VerdictSession::into_database`] instead.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// The current base table (the newest published data epoch). Cheap:
    /// clones an `Arc`, not the rows.
    pub fn table(&self) -> Arc<Table> {
        Arc::clone(&self.db.sole_shard().current().data.table)
    }

    /// Number of independent offline samples.
    pub fn num_samples(&self) -> usize {
        self.db.sole_shard().current().data.engines.len()
    }

    /// Whether this session writes to a durable store.
    pub fn is_persistent(&self) -> bool {
        self.db.is_persistent()
    }

    /// The recovery report, when the originating session was warm-started.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.db
            .recovery_report("t")
            .expect("wrapper table is registered")
    }

    /// The current published snapshot pair — learned state plus the
    /// table/sample version it describes. Pin it to run a batch of
    /// queries against one epoch via [`ConcurrentSession::execute_at`].
    pub fn snapshot(&self) -> SessionSnapshot {
        self.db.sole_shard().current()
    }

    /// The epoch of the current published snapshot. Monotone.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// The data epoch of the current published snapshot: how many
    /// ingested batches the visible table has absorbed. Monotone.
    pub fn data_epoch(&self) -> u64 {
        self.snapshot().data_epoch()
    }

    /// Parses, plans, and answers a SQL query from the **current**
    /// snapshot pair, then funnels what the query learned through the
    /// serialized writer and republishes. Safe to call from any number of
    /// threads.
    ///
    /// `Mode::NoLearn` queries never touch the writer: they are pure
    /// reads and scale with the thread count.
    pub fn execute(&self, sql: &str, mode: Mode, policy: StopPolicy) -> Result<QueryOutcome> {
        self.db.query(
            sql,
            &QueryOptions::new().with_mode(mode).with_policy(policy),
        )
    }

    /// Answers a SQL query from a caller-pinned snapshot pair, with
    /// learning **skipped**: nothing is absorbed, no counters move, the
    /// writer is never touched, and the rotation counter does not
    /// advance. Pinned reads always scan the session's fixed sample *of
    /// the pinned data epoch*, so every answer is a pure function of
    /// `snapshot` — bit-identical to a serial session holding the same
    /// state and table, regardless of interleaved writers, rotations, or
    /// ingests.
    pub fn execute_at(
        &self,
        snapshot: &SessionSnapshot,
        sql: &str,
        mode: Mode,
        policy: StopPolicy,
    ) -> Result<QueryOutcome> {
        self.db.query(
            sql,
            &QueryOptions::new()
                .with_mode(mode)
                .with_policy(policy)
                .pinned(snapshot.clone()),
        )
    }

    /// Prepares a statement against this session's table — see
    /// [`crate::Database::prepare`].
    pub fn prepare(&self, sql: &str) -> Result<crate::Prepared> {
        self.db.prepare(sql)
    }

    /// Ingests a batch of new rows into the evolving table from any
    /// thread, serialized with the learn path (readers never block).
    ///
    /// Same pipeline as [`crate::VerdictSession::ingest`] — validate,
    /// estimate Lemma-3 adjustments against the fixed sample, WAL-log
    /// rows + adjustments first, then grow the table, admit into every
    /// sample, widen the synopses and refit. The grown table/samples and
    /// the adjusted engine state are published **together** as the next
    /// [`SessionSnapshot`], so no reader can ever observe the new table
    /// with the old synopses or vice versa.
    pub fn ingest(&self, rows: &[Vec<Value>]) -> Result<IngestReport> {
        self.db.ingest("t", rows)
    }

    /// Offline training pass (Algorithm 1) under the writer lock, then —
    /// for persistent sessions — a checkpoint. The new snapshot (with
    /// models) is published before this returns; queries in flight keep
    /// their pre-training epoch.
    pub fn train(&self) -> Result<()> {
        self.db.train("t")
    }

    /// Checkpoints the full learned state into a fresh snapshot
    /// generation and truncates the log (folding any WAL-pending ingests
    /// into a new table generation). No-op without a store — the report
    /// is all zeros then.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        self.db.checkpoint()
    }

    /// A point-in-time snapshot of every registered metric, when the
    /// originating session was built with a metrics hub
    /// ([`crate::SessionBuilder::metrics`]).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.db.metrics_snapshot()
    }

    /// The bounded query log, when one was configured via
    /// [`crate::SessionBuilder::query_log`].
    pub fn query_log(&self) -> Option<&Arc<QueryLog>> {
        self.db.query_log()
    }

    /// The most recent `n` query traces, newest first (empty without a
    /// configured query log).
    pub fn recent_queries(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        self.db.recent_queries(n)
    }
}

// Compile-time proof of the headline property: a session handle crosses
// threads, and so does a pinned snapshot pair.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentSession>();
    assert_send_sync::<SessionSnapshot>();
};
