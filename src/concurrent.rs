//! Snapshot-isolated concurrent sessions: many reader threads, one
//! serialized learn/ingest path.
//!
//! A [`ConcurrentSession`] is the multi-threaded face of the engine. It is
//! `Send + Sync + Clone`; hand clones to as many threads as you like and
//! call [`ConcurrentSession::execute`] from all of them. The design is the
//! read/learn split the paper implies (answers come from frozen state;
//! only absorbing a snippet mutates it), extended with an **ingest** path
//! for evolving tables:
//!
//! - **Read path** (lock-free beyond one pointer copy): each query loads
//!   the current [`SessionSnapshot`] — a *paired* immutable view of the
//!   learned state ([`EngineSnapshot`]) and the data it describes (base
//!   table + maintained samples at one data epoch) — and answers every
//!   cell from that state with a per-query scan cursor. The snapshot's
//!   epoch is stamped into [`crate::QueryResult::epoch`].
//! - **Learn path** (serialized): the raw snippet observations a
//!   `Mode::Verdict` query produces are absorbed under one writer mutex —
//!   synopsis append, WAL append (via the engine's observer hook into the
//!   shared store), and snapshot republish happen in writer-lock order,
//!   so persisted sequence numbers are exactly what a serial session
//!   would have written. [`ConcurrentSession::train`] retrains and
//!   publishes under the same lock.
//! - **Ingest path** (serialized with the learn path):
//!   [`ConcurrentSession::ingest`] appends a row batch under the writer
//!   mutex — WAL record first, then a *new* data set (grown table, samples
//!   with the batch admitted) and a new engine snapshot (synopses widened
//!   per Lemma 3, models refit) are published together as the next
//!   [`SessionSnapshot`]. Readers never block: queries in flight keep the
//!   data set and engine state they loaded.
//!
//! A query that loaded epoch `e` keeps answering from epoch `e` even if a
//! writer publishes `e + 1` mid-scan — and a query that loaded data epoch
//! `d` keeps scanning data epoch `d`'s table and samples even if an ingest
//! publishes `d + 1`: snapshot isolation over *both* the learned state and
//! the data, for free, because both halves of a [`SessionSnapshot`] are
//! immutable and paired atomically under the writer lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use verdict_aqp::{AqpEngine, OnlineAggregation};
use verdict_core::concurrent::{EngineSnapshot, Learner};
use verdict_core::AggKey;
use verdict_sql::checker::JoinPolicy;
use verdict_sql::{check_query, parse_query, SupportVerdict};
use verdict_storage::{Table, Value};
use verdict_store::{RecoveryReport, SessionMeta, SharedStore};

use crate::session::{
    plan_shared_scan, prepare_ingest, run_shared_read, IngestReport, ReadOutcome, SampleRotation,
    SessionParts,
};
use crate::{Error, Mode, QueryOutcome, Result, StopPolicy};

/// One immutable version of the session's *data*: the base table as of one
/// data epoch, plus the maintained offline samples drawn from it. Ingest
/// publishes a fresh `DataSet`; readers in flight keep the one they
/// loaded.
struct DataSet {
    data_epoch: u64,
    table: Arc<Table>,
    engines: Vec<OnlineAggregation>,
}

/// An atomically paired view of the session at one instant: the learned
/// state ([`EngineSnapshot`]) together with the table/sample version
/// (`data_epoch`) that state describes.
///
/// Pin one with [`ConcurrentSession::snapshot`] and run any number of
/// [`ConcurrentSession::execute_at`] reads against it: every answer is a
/// pure function of the pair, bit-reproducible regardless of interleaved
/// writers **or ingests** — the pair keeps the exact table and sample
/// version alive even after newer data epochs are published.
#[derive(Clone)]
pub struct SessionSnapshot {
    engine: Arc<EngineSnapshot>,
    data: Arc<DataSet>,
}

impl SessionSnapshot {
    /// The epoch of the learned state (see [`EngineSnapshot::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// The data epoch of the pinned table/sample version.
    pub fn data_epoch(&self) -> u64 {
        self.data.data_epoch
    }

    /// The pinned learned state.
    pub fn engine_snapshot(&self) -> &EngineSnapshot {
        &self.engine
    }

    /// The pinned base table.
    pub fn table(&self) -> &Table {
        &self.data.table
    }

    /// Encodes the pinned learned state (byte-identical to
    /// `Verdict::state_bytes` on the engine it was published from).
    pub fn state_bytes(&self) -> Vec<u8> {
        self.engine.state_bytes()
    }

    /// Whether the pinned state carries a trained model for `key`.
    pub fn has_model(&self, key: &AggKey) -> bool {
        self.engine.has_model(key)
    }

    /// Snippets the pinned state retains for `key`.
    pub fn synopsis_len(&self, key: &AggKey) -> usize {
        self.engine.synopsis_len(key)
    }

    /// The engine counters as of the pinned state.
    pub fn stats(&self) -> verdict_core::EngineStats {
        self.engine.stats()
    }
}

/// Outcome of the read path before the learn path runs.
enum ReadAttempt {
    Read(ReadOutcome),
    Unsupported(Vec<verdict_sql::UnsupportedReason>),
}

/// The serialized write path: the learner plus what checkpointing and
/// ingesting need.
struct Writer {
    learner: Learner,
    meta: SessionMeta,
}

/// Shared state behind every clone of a [`ConcurrentSession`].
struct Inner {
    join_policy: JoinPolicy,
    rotation: SampleRotation,
    /// The sample `Fixed` rotation and pinned (`execute_at`) reads scan:
    /// the active sample the originating serial session was promoted
    /// with, so answers do not shift across `into_concurrent()`.
    fixed_sample: usize,
    /// Number of maintained samples (constant for the session's life).
    num_samples: usize,
    /// Next sample index under round-robin rotation.
    next_sample: AtomicUsize,
    /// Where readers load the current paired snapshot from. Only the
    /// writer stores into it (under the writer lock), so the engine half
    /// and the data half can never be observed mismatched.
    current: Mutex<SessionSnapshot>,
    /// The durable store, outside the writer lock: its own mutex
    /// serializes appends, and parked-error checks must not block on a
    /// training writer.
    store: Option<SharedStore>,
    writer: Mutex<Writer>,
    recovery: Option<RecoveryReport>,
}

/// A `Send + Sync` session serving queries from any number of threads.
///
/// Created by [`crate::VerdictSession::into_concurrent`] or
/// [`crate::SessionBuilder::build_concurrent`]. Cloning is cheap (one
/// `Arc`); all clones share the samples, the published snapshot pair, and
/// the serialized writer.
#[derive(Clone)]
pub struct ConcurrentSession {
    inner: Arc<Inner>,
}

impl ConcurrentSession {
    pub(crate) fn from_parts(parts: SessionParts) -> ConcurrentSession {
        let data = Arc::new(DataSet {
            data_epoch: parts.verdict.data_epoch(),
            table: Arc::new(parts.table),
            engines: parts.engines,
        });
        let learner = Learner::new(parts.verdict);
        let current = SessionSnapshot {
            engine: learner.snapshot(),
            data: Arc::clone(&data),
        };
        ConcurrentSession {
            inner: Arc::new(Inner {
                join_policy: parts.join_policy,
                rotation: parts.rotation,
                fixed_sample: parts.active,
                num_samples: data.engines.len(),
                next_sample: AtomicUsize::new(parts.active),
                current: Mutex::new(current),
                store: parts.store,
                writer: Mutex::new(Writer {
                    learner,
                    meta: parts.meta,
                }),
                recovery: parts.recovery,
            }),
        }
    }

    /// The current base table (the newest published data epoch). Cheap:
    /// clones an `Arc`, not the rows.
    pub fn table(&self) -> Arc<Table> {
        Arc::clone(&self.current().data.table)
    }

    /// Number of independent offline samples.
    pub fn num_samples(&self) -> usize {
        self.inner.num_samples
    }

    /// Whether this session writes to a durable store.
    pub fn is_persistent(&self) -> bool {
        self.inner.store.is_some()
    }

    /// The recovery report, when the originating session was warm-started.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.inner.recovery.as_ref()
    }

    /// The current published snapshot pair — learned state plus the
    /// table/sample version it describes. Pin it to run a batch of
    /// queries against one epoch via [`ConcurrentSession::execute_at`].
    pub fn snapshot(&self) -> SessionSnapshot {
        self.current()
    }

    /// The epoch of the current published snapshot. Monotone: it never
    /// decreases over the session's lifetime.
    pub fn epoch(&self) -> u64 {
        self.current().epoch()
    }

    /// The data epoch of the current published snapshot: how many
    /// ingested batches the visible table has absorbed. Monotone.
    pub fn data_epoch(&self) -> u64 {
        self.current().data_epoch()
    }

    /// Loads the current paired snapshot (brief lock, two `Arc` copies).
    fn current(&self) -> SessionSnapshot {
        self.inner
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Publishes the writer's current engine snapshot, paired with `data`
    /// (or, when `data` is `None`, with the currently published data set).
    /// Caller holds the writer lock, so pairs are never torn.
    fn publish_locked(&self, writer: &Writer, data: Option<Arc<DataSet>>) {
        let mut cur = self
            .inner
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let data = data.unwrap_or_else(|| Arc::clone(&cur.data));
        *cur = SessionSnapshot {
            engine: writer.learner.snapshot(),
            data,
        };
    }

    /// Which sample the next `execute` scans: round-robin advances one
    /// shared counter; `Fixed` always scans the sample the session was
    /// promoted with.
    fn pick_sample(&self) -> usize {
        match self.inner.rotation {
            SampleRotation::Fixed => self.inner.fixed_sample,
            SampleRotation::RoundRobin => {
                self.inner.next_sample.fetch_add(1, Ordering::Relaxed) % self.inner.num_samples
            }
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, Writer> {
        // Writer state is consistent at rest; a poisoned lock only means
        // another thread panicked between mutations.
        self.inner
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Surfaces any error a background WAL append or deferred compaction
    /// parked since the last check (same contract as the serial session).
    fn surface_store_error(&self) -> Result<()> {
        if let Some(store) = &self.inner.store {
            if let Some(e) = store.lock().take_error() {
                return Err(Error::Store(e));
            }
        }
        Ok(())
    }

    /// Parses, plans, and answers a SQL query from the **current**
    /// snapshot pair, then funnels what the query learned (raw snippet
    /// observations + counter deltas) through the serialized writer and
    /// republishes. Safe to call from any number of threads.
    ///
    /// `Mode::NoLearn` queries never touch the writer: they are pure
    /// reads and scale with the thread count.
    pub fn execute(&self, sql: &str, mode: Mode, policy: StopPolicy) -> Result<QueryOutcome> {
        self.surface_store_error()?;
        let snapshot = self.current();
        let engine = &snapshot.data.engines[self.pick_sample()];
        let read = match self.read_at(engine, &snapshot.engine, sql, mode, policy)? {
            ReadAttempt::Unsupported(reasons) => return Ok(QueryOutcome::Unsupported(reasons)),
            ReadAttempt::Read(read) => read,
        };
        if !(read.recorded.is_empty() && read.stats.is_zero()) {
            // Learn path: one serialized absorb per query. Synopsis
            // appends (and through the observer hook, WAL appends) happen
            // in writer-lock order; the batch republishes once, paired
            // with the current data set.
            let mut writer = self.lock_writer();
            writer.learner.absorb(&read.recorded, read.stats);
            self.publish_locked(&writer, None);
            self.maybe_compact(&mut writer);
        }
        Ok(QueryOutcome::Answered(read.result))
    }

    /// Answers a SQL query from a caller-pinned snapshot pair, with
    /// learning **skipped**: nothing is absorbed, no counters move, the
    /// writer is never touched, and the rotation counter does not
    /// advance. Pinned reads always scan the session's fixed sample *of
    /// the pinned data epoch*, so every answer is a pure function of
    /// `snapshot` — a batch of calls against one pinned snapshot is
    /// bit-identical to a serial session holding the same state and
    /// table, regardless of what writers publish, which samples
    /// interleaved `execute` calls rotate through, or how many batches
    /// concurrent [`ConcurrentSession::ingest`] calls append in the
    /// meantime.
    pub fn execute_at(
        &self,
        snapshot: &SessionSnapshot,
        sql: &str,
        mode: Mode,
        policy: StopPolicy,
    ) -> Result<QueryOutcome> {
        let engine = &snapshot.data.engines[self.inner.fixed_sample];
        match self.read_at(engine, &snapshot.engine, sql, mode, policy)? {
            ReadAttempt::Read(read) => Ok(QueryOutcome::Answered(read.result)),
            ReadAttempt::Unsupported(reasons) => Ok(QueryOutcome::Unsupported(reasons)),
        }
    }

    /// The shared read path: parse → check → plan → one shared scan over
    /// `engine`'s sample at `snapshot`'s state.
    fn read_at(
        &self,
        engine: &OnlineAggregation,
        snapshot: &EngineSnapshot,
        sql: &str,
        mode: Mode,
        policy: StopPolicy,
    ) -> Result<ReadAttempt> {
        let query = parse_query(sql)?;
        if let SupportVerdict::Unsupported(reasons) = check_query(&query, &self.inner.join_policy) {
            return Ok(ReadAttempt::Unsupported(reasons));
        }
        let plan = plan_shared_scan(&query, engine, snapshot.config().nmax)?;
        let read = run_shared_read(
            engine,
            snapshot.view(),
            &plan,
            mode,
            policy,
            snapshot.epoch(),
        )?;
        Ok(ReadAttempt::Read(read))
    }

    /// Ingests a batch of new rows into the evolving table from any
    /// thread, serialized with the learn path (readers never block).
    ///
    /// Same pipeline as [`crate::VerdictSession::ingest`] — validate,
    /// estimate Lemma-3 adjustments against the fixed sample, WAL-log
    /// rows + adjustments first, then grow the table, admit into every
    /// sample, widen the synopses and refit. The grown table/samples and
    /// the adjusted engine state are published **together** as the next
    /// [`SessionSnapshot`], so no reader can ever observe the new table
    /// with the old synopses or vice versa.
    pub fn ingest(&self, rows: &[Vec<Value>]) -> Result<IngestReport> {
        self.surface_store_error()?;
        let mut writer = self.lock_writer();
        let snapshot = self.current();
        if rows.is_empty() {
            return Ok(IngestReport {
                appended_rows: 0,
                admitted_rows: vec![0; self.inner.num_samples],
                adjusted_keys: 0,
                adjusted_snippets: 0,
                skipped_keys: Vec::new(),
                data_epoch: snapshot.data_epoch(),
            });
        }
        let old = &snapshot.data;
        // All fallible work first (validation, shift estimation, staged
        // rewrites + refits) — shared with the serial path; the shift is
        // estimated against the fixed sample (a concurrent session has
        // no rotating "active" sample).
        let prepared = prepare_ingest(
            writer.learner.engine(),
            &old.table,
            old.engines[self.inner.fixed_sample].sample().table(),
            rows,
        )?;
        if let Some(store) = &self.inner.store {
            store
                .lock()
                .append_ingest(rows, &prepared.adjustments)
                .map_err(Error::Store)?;
        }
        // Build the next data set copy-on-write: the table clones once,
        // each sample's rows clone on its first admission.
        let mut table = (*old.table).clone();
        table.push_rows(rows).map_err(Error::Storage)?;
        let mut engines = old.engines.clone();
        let mut admitted_rows = Vec::with_capacity(engines.len());
        for (i, engine) in engines.iter_mut().enumerate() {
            admitted_rows.push(
                engine
                    .absorb_appended(&table, prepared.old_rows as u64, writer.meta.seed, i as u64)
                    .map_err(Error::Aqp)?,
            );
        }
        let adjusted_snippets = writer.learner.engine_mut().commit_ingest(prepared.staged);
        writer.learner.republish();
        let data = Arc::new(DataSet {
            data_epoch: old.data_epoch + 1,
            table: Arc::new(table),
            engines,
        });
        let data_epoch = data.data_epoch;
        self.publish_locked(&writer, Some(data));
        self.maybe_compact(&mut writer);
        Ok(IngestReport {
            appended_rows: rows.len(),
            admitted_rows,
            adjusted_keys: prepared.adjustments.len(),
            adjusted_snippets,
            skipped_keys: prepared.skipped_keys,
            data_epoch,
        })
    }

    /// Offline training pass (Algorithm 1) under the writer lock, then —
    /// for persistent sessions — a checkpoint, so the trained models are
    /// on disk. The new snapshot (with models) is published before this
    /// returns; queries in flight keep their pre-training epoch.
    pub fn train(&self) -> Result<()> {
        self.surface_store_error()?;
        let mut writer = self.lock_writer();
        writer.learner.train().map_err(Error::Core)?;
        self.publish_locked(&writer, None);
        self.snapshot_now(&mut writer).map_err(Error::Store)
    }

    /// Checkpoints the full learned state into a fresh snapshot
    /// generation and truncates the log (folding any WAL-pending ingests
    /// into a new table generation). No-op without a store.
    pub fn checkpoint(&self) -> Result<()> {
        self.surface_store_error()?;
        let mut writer = self.lock_writer();
        self.snapshot_now(&mut writer).map_err(Error::Store)
    }

    /// The one store-snapshot path (explicit checkpoints and piggybacked
    /// compaction), mirroring the serial session's. Caller holds the
    /// writer lock, so neither the encoded state nor the current data set
    /// can move underneath the write.
    fn snapshot_now(&self, writer: &mut Writer) -> verdict_store::Result<()> {
        let Some(store) = &self.inner.store else {
            return Ok(());
        };
        let table = Arc::clone(&self.current().data.table);
        let engine = writer.learner.engine();
        let schema_fp = verdict_core::persist::fingerprint(engine.schema());
        let state_bytes = engine.state_bytes();
        store
            .lock()
            .snapshot_encoded(writer.meta.clone(), schema_fp, &state_bytes, &table)?;
        Ok(())
    }

    /// Folds the log into a fresh snapshot when the store's compaction
    /// policy asks for it; failures park in the store and surface at the
    /// next `execute`/`checkpoint` (same contract as the serial session).
    /// Caller holds the writer lock.
    fn maybe_compact(&self, writer: &mut Writer) {
        let Some(store) = &self.inner.store else {
            return;
        };
        if !store.lock().needs_compaction() {
            return;
        }
        if let Err(e) = self.snapshot_now(writer) {
            store.lock().park_error(e);
        }
    }
}

// Compile-time proof of the headline property: a session handle crosses
// threads, and so does a pinned snapshot pair. (All fields are
// Send + Sync; this keeps it that way.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentSession>();
    assert_send_sync::<SessionSnapshot>();
};
