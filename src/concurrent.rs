//! Snapshot-isolated concurrent sessions: many reader threads, one
//! serialized learn path.
//!
//! A [`ConcurrentSession`] is the multi-threaded face of the engine. It is
//! `Send + Sync + Clone`; hand clones to as many threads as you like and
//! call [`ConcurrentSession::execute`] from all of them. The design is the
//! read/learn split the paper implies (answers come from frozen state;
//! only absorbing a snippet mutates it):
//!
//! - **Read path** (lock-free beyond one pointer copy): each query loads
//!   the current [`EngineSnapshot`] from a [`SnapshotCell`] and answers
//!   every cell from that immutable state with a per-query scan cursor
//!   over the shared sample — the same `plan → shared scan →
//!   improve_batch` core the serial [`crate::VerdictSession`] drives. The
//!   snapshot's epoch is stamped into [`crate::QueryResult::epoch`].
//! - **Learn path** (serialized): the raw snippet observations a
//!   `Mode::Verdict` query produces are absorbed under one writer mutex —
//!   synopsis append, WAL append (via the engine's observer hook into the
//!   shared store), and snapshot republish happen in writer-lock order,
//!   so persisted sequence numbers are exactly what a serial session
//!   would have written. [`ConcurrentSession::train`] retrains and
//!   publishes under the same lock.
//!
//! A query that loaded epoch `e` keeps answering from epoch `e` even if a
//! writer publishes `e + 1` mid-scan: snapshot isolation, for free,
//! because snapshots are immutable. Readers never wait for the learner
//! (loads are a mutex-guarded pointer copy) and writers never wait for
//! readers (they publish a fresh `Arc`, they don't mutate shared state in
//! place).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use verdict_aqp::OnlineAggregation;
use verdict_core::concurrent::{EngineSnapshot, Learner, SnapshotCell};
use verdict_sql::checker::JoinPolicy;
use verdict_sql::{check_query, parse_query, SupportVerdict};
use verdict_storage::Table;
use verdict_store::{RecoveryReport, SessionMeta, SharedStore};

use crate::session::{
    plan_shared_scan, run_shared_read, ReadOutcome, SampleRotation, SessionParts,
};
use crate::{Error, Mode, QueryOutcome, Result, StopPolicy};

/// Outcome of the read path before the learn path runs.
enum ReadAttempt {
    Read(ReadOutcome),
    Unsupported(Vec<verdict_sql::UnsupportedReason>),
}

/// The serialized learn path: the learner plus what checkpointing needs.
struct Writer {
    learner: Learner,
    meta: SessionMeta,
}

/// Shared state behind every clone of a [`ConcurrentSession`].
struct Inner {
    table: Table,
    /// Immutable after build: each engine wraps one offline sample; scan
    /// state lives in per-query cursors, so `&OnlineAggregation` is all a
    /// reader needs.
    engines: Vec<OnlineAggregation>,
    join_policy: JoinPolicy,
    rotation: SampleRotation,
    /// The sample `Fixed` rotation and pinned (`execute_at`) reads scan:
    /// the active sample the originating serial session was promoted
    /// with, so answers do not shift across `into_concurrent()`.
    fixed_sample: usize,
    /// Next sample index under round-robin rotation.
    next_sample: AtomicUsize,
    /// Where readers load the current snapshot from (the learner inside
    /// `writer` publishes into the same cell).
    cell: Arc<SnapshotCell>,
    /// The durable store, outside the writer lock: its own mutex
    /// serializes appends, and parked-error checks must not block on a
    /// training writer.
    store: Option<SharedStore>,
    writer: Mutex<Writer>,
    recovery: Option<RecoveryReport>,
}

/// A `Send + Sync` session serving queries from any number of threads.
///
/// Created by [`crate::VerdictSession::into_concurrent`] or
/// [`crate::SessionBuilder::build_concurrent`]. Cloning is cheap (one
/// `Arc`); all clones share the samples, the snapshot cell, and the
/// serialized writer.
#[derive(Clone)]
pub struct ConcurrentSession {
    inner: Arc<Inner>,
}

impl ConcurrentSession {
    pub(crate) fn from_parts(parts: SessionParts) -> ConcurrentSession {
        let learner = Learner::new(parts.verdict);
        let cell = learner.cell();
        ConcurrentSession {
            inner: Arc::new(Inner {
                table: parts.table,
                engines: parts.engines,
                join_policy: parts.join_policy,
                rotation: parts.rotation,
                fixed_sample: parts.active,
                next_sample: AtomicUsize::new(parts.active),
                cell,
                store: parts.store,
                writer: Mutex::new(Writer {
                    learner,
                    meta: parts.meta,
                }),
                recovery: parts.recovery,
            }),
        }
    }

    /// The base table.
    pub fn table(&self) -> &Table {
        &self.inner.table
    }

    /// Number of independent offline samples.
    pub fn num_samples(&self) -> usize {
        self.inner.engines.len()
    }

    /// The AQP engine over sample `index` (panics if out of range).
    pub fn engine(&self, index: usize) -> &OnlineAggregation {
        &self.inner.engines[index]
    }

    /// Whether this session writes to a durable store.
    pub fn is_persistent(&self) -> bool {
        self.inner.store.is_some()
    }

    /// The recovery report, when the originating session was warm-started.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.inner.recovery.as_ref()
    }

    /// The current published snapshot of the learned state. Pin it to run
    /// a batch of queries against one epoch via
    /// [`ConcurrentSession::execute_at`].
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.inner.cell.load()
    }

    /// The epoch of the current published snapshot. Monotone: it never
    /// decreases over the session's lifetime.
    pub fn epoch(&self) -> u64 {
        self.inner.cell.epoch()
    }

    /// Which sample the next `execute` scans: round-robin advances one
    /// shared counter; `Fixed` always scans the sample the session was
    /// promoted with.
    fn pick_sample(&self) -> usize {
        match self.inner.rotation {
            SampleRotation::Fixed => self.inner.fixed_sample,
            SampleRotation::RoundRobin => {
                self.inner.next_sample.fetch_add(1, Ordering::Relaxed) % self.inner.engines.len()
            }
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, Writer> {
        // Writer state is consistent at rest; a poisoned lock only means
        // another thread panicked between mutations.
        self.inner
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Surfaces any error a background WAL append or deferred compaction
    /// parked since the last check (same contract as the serial session).
    fn surface_store_error(&self) -> Result<()> {
        if let Some(store) = &self.inner.store {
            if let Some(e) = store.lock().take_error() {
                return Err(Error::Store(e));
            }
        }
        Ok(())
    }

    /// Parses, plans, and answers a SQL query from the **current**
    /// snapshot, then funnels what the query learned (raw snippet
    /// observations + counter deltas) through the serialized writer and
    /// republishes. Safe to call from any number of threads.
    ///
    /// `Mode::NoLearn` queries never touch the writer: they are pure
    /// reads and scale with the thread count.
    pub fn execute(&self, sql: &str, mode: Mode, policy: StopPolicy) -> Result<QueryOutcome> {
        self.surface_store_error()?;
        let snapshot = self.snapshot();
        let engine = &self.inner.engines[self.pick_sample()];
        let read = match self.read_at(engine, &snapshot, sql, mode, policy)? {
            ReadAttempt::Unsupported(reasons) => return Ok(QueryOutcome::Unsupported(reasons)),
            ReadAttempt::Read(read) => read,
        };
        if !(read.recorded.is_empty() && read.stats.is_zero()) {
            // Learn path: one serialized absorb per query. Synopsis
            // appends (and through the observer hook, WAL appends) happen
            // in writer-lock order; the batch republishes once.
            self.lock_writer()
                .learner
                .absorb(&read.recorded, read.stats);
            self.maybe_compact();
        }
        Ok(QueryOutcome::Answered(read.result))
    }

    /// Answers a SQL query from a caller-pinned snapshot, with learning
    /// **skipped**: nothing is absorbed, no counters move, the writer is
    /// never touched, and the rotation counter does not advance. Pinned
    /// reads always scan the session's fixed sample, so every answer is a
    /// pure function of `snapshot` — a batch of calls against one pinned
    /// snapshot is bit-identical to a serial session holding the same
    /// state, regardless of what writers publish or which samples
    /// interleaved `execute` calls rotate through in the meantime.
    pub fn execute_at(
        &self,
        snapshot: &EngineSnapshot,
        sql: &str,
        mode: Mode,
        policy: StopPolicy,
    ) -> Result<QueryOutcome> {
        let engine = &self.inner.engines[self.inner.fixed_sample];
        match self.read_at(engine, snapshot, sql, mode, policy)? {
            ReadAttempt::Read(read) => Ok(QueryOutcome::Answered(read.result)),
            ReadAttempt::Unsupported(reasons) => Ok(QueryOutcome::Unsupported(reasons)),
        }
    }

    /// The shared read path: parse → check → plan → one shared scan over
    /// `engine`'s sample at `snapshot`'s state.
    fn read_at(
        &self,
        engine: &OnlineAggregation,
        snapshot: &EngineSnapshot,
        sql: &str,
        mode: Mode,
        policy: StopPolicy,
    ) -> Result<ReadAttempt> {
        let query = parse_query(sql)?;
        if let SupportVerdict::Unsupported(reasons) = check_query(&query, &self.inner.join_policy) {
            return Ok(ReadAttempt::Unsupported(reasons));
        }
        let plan = plan_shared_scan(&query, engine, snapshot.config().nmax)?;
        let read = run_shared_read(
            engine,
            snapshot.view(),
            &plan,
            mode,
            policy,
            snapshot.epoch(),
        )?;
        Ok(ReadAttempt::Read(read))
    }

    /// Offline training pass (Algorithm 1) under the writer lock, then —
    /// for persistent sessions — a checkpoint, so the trained models are
    /// on disk. The new snapshot (with models) is published before this
    /// returns; queries in flight keep their pre-training epoch.
    pub fn train(&self) -> Result<()> {
        self.surface_store_error()?;
        let mut writer = self.lock_writer();
        writer.learner.train().map_err(Error::Core)?;
        self.snapshot_now(&mut writer).map_err(Error::Store)
    }

    /// Checkpoints the full learned state into a fresh snapshot
    /// generation and truncates the snippet log. No-op without a store.
    pub fn checkpoint(&self) -> Result<()> {
        self.surface_store_error()?;
        let mut writer = self.lock_writer();
        self.snapshot_now(&mut writer).map_err(Error::Store)
    }

    /// The one store-snapshot path (explicit checkpoints and piggybacked
    /// compaction), mirroring the serial session's. Caller holds the
    /// writer lock, so the encoded state cannot move underneath the write.
    fn snapshot_now(&self, writer: &mut Writer) -> verdict_store::Result<()> {
        let Some(store) = &self.inner.store else {
            return Ok(());
        };
        let engine = writer.learner.engine();
        let schema_fp = verdict_core::persist::fingerprint(engine.schema());
        let state_bytes = engine.state_bytes();
        store
            .lock()
            .snapshot_encoded(writer.meta.clone(), schema_fp, &state_bytes)?;
        Ok(())
    }

    /// Folds the log into a fresh snapshot when the store's compaction
    /// policy asks for it; failures park in the store and surface at the
    /// next `execute`/`checkpoint` (same contract as the serial session).
    fn maybe_compact(&self) {
        let Some(store) = &self.inner.store else {
            return;
        };
        if !store.lock().needs_compaction() {
            return;
        }
        let mut writer = self.lock_writer();
        if let Err(e) = self.snapshot_now(&mut writer) {
            store.lock().park_error(e);
        }
    }
}

// Compile-time proof of the headline property: a session handle crosses
// threads. (All fields are Send + Sync; this keeps it that way.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentSession>();
};
