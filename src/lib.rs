//! # Verdict — Database Learning for approximate query processing
//!
//! A Rust reproduction of *"Database Learning: Toward a Database that
//! Becomes Smarter Every Time"* (Park, Tajik, Cafarella, Mozafari —
//! SIGMOD 2017). Verdict sits on top of a sample-based AQP engine, keeps a
//! synopsis of past query answers, fits a maximum-entropy (Gaussian)
//! model over them, and uses it to return **improved answers with smaller
//! error bounds** — provably never worse than the raw AQP answer
//! (Theorem 1).
//!
//! ## Quickstart: a multi-table [`Database`]
//!
//! The front door is the [`Database`] catalog: register any number of
//! tables, query them with `FROM <name>` resolved against the catalog,
//! and each table learns independently (its own samples, synopsis, and
//! models — see [`verdict_core::QualifiedAggKey`]).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use verdict::{Database, QueryOptions};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let spec = verdict::workload::synthetic::SyntheticSpec {
//!     rows: 20_000,
//!     ..Default::default()
//! };
//! let orders = verdict::workload::synthetic::generate_table(&spec, &mut rng);
//! let events = verdict::workload::synthetic::generate_table(&spec, &mut rng);
//!
//! let db = Database::builder()
//!     .register_table("orders", orders)
//!     .register_table("events", events)
//!     .build()
//!     .expect("database");
//!
//! // Warm up the orders synopsis with a few queries, then train.
//! let opts = QueryOptions::new();
//! for lo in [0.0_f64, 2.0, 4.0, 6.0] {
//!     db.query(
//!         &format!("SELECT AVG(m) FROM orders WHERE d0 BETWEEN {lo} AND {}", lo + 2.0),
//!         &opts,
//!     )
//!     .expect("query");
//! }
//! db.train("orders").expect("train");
//!
//! // New queries on `orders` now come back with improved error bounds;
//! // `events` is untouched — tables learn independently.
//! let result = db
//!     .query("SELECT AVG(m) FROM orders WHERE d0 BETWEEN 1 AND 3", &opts)
//!     .expect("query")
//!     .unwrap_answered();
//! let cell = &result.rows[0].values[0];
//! assert!(cell.improved.error <= cell.raw_error);
//! ```
//!
//! ## Prepared statements: the serving path
//!
//! Repeated query shapes skip the SQL layer entirely:
//! [`Database::prepare`] runs parse → check → resolve → plan-template
//! once, and every execution afterwards only re-binds literals.
//!
//! ```
//! # use rand::rngs::StdRng;
//! # use rand::SeedableRng;
//! # use verdict::{Database, QueryOptions};
//! # let mut rng = StdRng::seed_from_u64(7);
//! # let spec = verdict::workload::synthetic::SyntheticSpec {
//! #     rows: 5_000,
//! #     ..Default::default()
//! # };
//! # let orders = verdict::workload::synthetic::generate_table(&spec, &mut rng);
//! # let db = Database::builder().register_table("orders", orders).build().unwrap();
//! let stmt = db
//!     .prepare("SELECT AVG(m) FROM orders WHERE d0 BETWEEN ? AND ?")
//!     .expect("prepare");
//! for lo in [1.0_f64, 3.0, 5.0] {
//!     let out = stmt
//!         .bind(&[lo.into(), (lo + 2.0).into()])
//!         .expect("bind")
//!         .run(&QueryOptions::new())
//!         .expect("run")
//!         .unwrap_answered();
//!     assert_eq!(out.rows.len(), 1);
//! }
//! ```
//!
//! ## Persistence
//!
//! [`DatabaseBuilder::persist_to`] persists the whole catalog under one
//! directory (a `CATALOG` manifest plus one crash-safe store per table);
//! [`Database::open`] warm-starts every table from it with bit-identical
//! learned state — the first query after a restart already enjoys the
//! error bounds the previous process earned
//! (`cargo run --release --example catalog`).
//!
//! ## Evolving tables
//!
//! Tables are not frozen: [`Database::ingest`] appends row batches
//! through the full stack — table growth, sample maintenance at the
//! correct inclusion probability, WAL-logged recovery, and automatic
//! Lemma-3 widening of every stored snippet — serialized only within the
//! addressed table, so queries on other tables never stall
//! (`cargo run --release --example ingest`).
//!
//! ## Migrating from the session API
//!
//! [`VerdictSession`] (serial, one table) and [`ConcurrentSession`]
//! (multi-threaded, one table) remain as single-table fronts; the
//! concurrent session is literally a thin wrapper over a one-table
//! [`Database`]. To move code over:
//!
//! - `SessionBuilder::new(t).build()` → `Database::builder()
//!   .register_table("t", t).build()`; per-table knobs (sample fraction,
//!   seed, …) move into [`TableOptions`].
//! - `session.execute(sql, mode, policy)` → `db.query(sql,
//!   &QueryOptions::new().with_mode(mode).with_policy(policy))`.
//! - `SessionBuilder::open(dir)` → [`Database::open`] — a legacy
//!   single-table store directory opens as a one-table database (table
//!   name `"t"`, any `FROM` accepted).
//! - An existing session promotes in place:
//!   [`VerdictSession::into_database`] /
//!   [`ConcurrentSession::into_database`].
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`verdict_core`] | snippets, synopsis, kernel, learning, inference, validation, append, read/learn split |
//! | [`verdict_aqp`] | uniform samples, online aggregation, time-bound engine, cost model |
//! | [`verdict_sql`] | parser (with `?` placeholders), supported-query checker, catalog name resolution, snippet decomposition, prepared plan templates |
//! | [`verdict_storage`] | columnar tables, predicates, exact aggregation, FK joins |
//! | [`verdict_store`] | durable stores: snippet log, snapshots, crash recovery, the v3 catalog manifest |
//! | [`verdict_workload`] | synthetic / TPC-H-style / Customer1-style / multi-table generators |
//! | [`verdict_obs`] | zero-dependency metrics registry, pipeline tracing, query log |
//! | [`verdict_stats`], [`verdict_linalg`] | math substrates |
//!
//! Root-crate layering: [`database`] (catalog + per-table shards) and
//! [`query`] (options + prepared statements) form the serving front-end;
//! [`session`] and [`concurrent`] are the single-table compatibility
//! fronts over the same pipeline; [`metrics`] binds the zero-dependency
//! observability primitives of [`verdict_obs`] to every pipeline stage.
//!
//! ## Observability
//!
//! Attach a [`verdict_obs::MetricsHub`] and/or a bounded query log at
//! build time ([`DatabaseBuilder::metrics`] /
//! [`DatabaseBuilder::query_log`], same on [`SessionBuilder`]) and the
//! engine reports per-table counters, gauges, and latency histograms
//! plus a per-query [`verdict_obs::QueryTrace`]; snapshot them with
//! [`Database::metrics_snapshot`] (Prometheus-style text or JSON) and
//! [`Database::recent_queries`]. Metrics observe the pipeline — they
//! never change an answer, and when disabled (the default) the hot path
//! touches no atomics and reads no stage clocks
//! (`cargo run --release --example observability`).

pub mod concurrent;
pub mod database;
pub mod metrics;
pub mod query;
pub mod session;

pub use concurrent::{ConcurrentSession, SessionSnapshot};
pub use database::{CatalogError, Database, DatabaseBuilder, OpenOptions, TableOptions};
pub use metrics::CheckpointReport;
pub use query::{Bound, Prepared, QueryOptions};
pub use session::{
    CellAnswer, IngestReport, Mode, QueryOutcome, QueryResult, ResultRow, SampleRotation,
    SessionBuilder, StopPolicy, VerdictSession,
};
pub use verdict_aqp::ScanKernel;

// Re-export the sub-crates under stable names.
pub use verdict_aqp as aqp;
pub use verdict_core as core;
pub use verdict_linalg as linalg;
pub use verdict_obs as obs;
pub use verdict_sql as sql;
pub use verdict_stats as stats;
pub use verdict_storage as storage;
pub use verdict_store as store;
pub use verdict_workload as workload;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// SQL front-end failure (parse, resolution, placeholder binding).
    Sql(verdict_sql::SqlError),
    /// Catalog failure (registration, table lookup, snapshot pinning).
    Catalog(CatalogError),
    /// The statement is outside Verdict's supported class (prepare-time;
    /// ad-hoc queries report this as [`QueryOutcome::Unsupported`]).
    Unsupported(Vec<verdict_sql::UnsupportedReason>),
    /// Inference-engine failure.
    Core(verdict_core::CoreError),
    /// AQP-engine failure.
    Aqp(verdict_aqp::AqpError),
    /// Storage failure.
    Storage(verdict_storage::StorageError),
    /// Durable-store failure.
    Store(verdict_store::StoreError),
}

impl From<verdict_sql::SqlError> for Error {
    fn from(e: verdict_sql::SqlError) -> Self {
        Error::Sql(e)
    }
}
impl From<CatalogError> for Error {
    fn from(e: CatalogError) -> Self {
        Error::Catalog(e)
    }
}
impl From<verdict_core::CoreError> for Error {
    fn from(e: verdict_core::CoreError) -> Self {
        Error::Core(e)
    }
}
impl From<verdict_aqp::AqpError> for Error {
    fn from(e: verdict_aqp::AqpError) -> Self {
        Error::Aqp(e)
    }
}
impl From<verdict_storage::StorageError> for Error {
    fn from(e: verdict_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}
impl From<verdict_store::StoreError> for Error {
    fn from(e: verdict_store::StoreError) -> Self {
        Error::Store(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Sql(e) => write!(f, "{e}"),
            Error::Catalog(e) => write!(f, "{e}"),
            Error::Unsupported(reasons) => {
                write!(f, "statement is outside the supported class: ")?;
                for (i, r) in reasons.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            Error::Core(e) => write!(f, "{e}"),
            Error::Aqp(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
