//! # Verdict — Database Learning for approximate query processing
//!
//! A Rust reproduction of *"Database Learning: Toward a Database that
//! Becomes Smarter Every Time"* (Park, Tajik, Cafarella, Mozafari —
//! SIGMOD 2017). Verdict sits on top of a sample-based AQP engine, keeps a
//! synopsis of past query answers, fits a maximum-entropy (Gaussian)
//! model over them, and uses it to return **improved answers with smaller
//! error bounds** — provably never worse than the raw AQP answer
//! (Theorem 1).
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use verdict::{Mode, SessionBuilder, StopPolicy};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // A table with a numeric time dimension and a measure.
//! let spec = verdict::workload::synthetic::SyntheticSpec {
//!     rows: 20_000,
//!     ..Default::default()
//! };
//! let table = verdict::workload::synthetic::generate_table(&spec, &mut rng);
//!
//! let mut session = SessionBuilder::new(table)
//!     .sample_fraction(0.1)
//!     .seed(7)
//!     .build()
//!     .expect("session");
//!
//! // Warm up the synopsis with a few queries, then train.
//! for lo in [0.0_f64, 2.0, 4.0, 6.0] {
//!     session
//!         .execute(&format!("SELECT AVG(m) FROM t WHERE d0 BETWEEN {lo} AND {}", lo + 2.0),
//!                  Mode::Verdict, StopPolicy::ScanAll)
//!         .expect("query");
//! }
//! session.train().expect("train");
//!
//! // New queries now come back with improved (smaller) error bounds.
//! let result = session
//!     .execute("SELECT AVG(m) FROM t WHERE d0 BETWEEN 1 AND 3",
//!              Mode::Verdict, StopPolicy::ScanAll)
//!     .expect("query")
//!     .unwrap_answered();
//! let cell = &result.rows[0].values[0];
//! assert!(cell.improved.error <= cell.raw_error);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`verdict_core`] | snippets, synopsis, kernel, learning, inference, validation, append, read/learn split |
//! | [`verdict_aqp`] | uniform samples, online aggregation, time-bound engine, cost model |
//! | [`verdict_sql`] | parser, supported-query checker, snippet decomposition |
//! | [`verdict_storage`] | columnar tables, predicates, exact aggregation, FK joins |
//! | [`verdict_store`] | durable synopsis store: snippet log, snapshots, crash recovery |
//! | [`verdict_workload`] | synthetic / TPC-H-style / Customer1-style generators |
//! | [`verdict_stats`], [`verdict_linalg`] | math substrates |
//!
//! ## Persistence
//!
//! Sessions can outlive the process. [`SessionBuilder::persist_to`]
//! attaches a durable synopsis store: every observed snippet is logged,
//! and training checkpoints the full model state. [`SessionBuilder::open`]
//! warm-starts a session from such a store — the first query after reopen
//! already enjoys the tightened error bounds the previous session earned
//! (`cargo run --example persistence`).
//!
//! ## Evolving tables
//!
//! Tables are not frozen: [`VerdictSession::ingest`] (and
//! [`ConcurrentSession::ingest`]) appends row batches through the full
//! stack — table growth, sample maintenance at the correct inclusion
//! probability, WAL-logged recovery, and automatic Lemma-3 widening of
//! every stored snippet so stale answers keep honest error bounds until
//! the next retrain (`cargo run --example ingest`).

pub mod concurrent;
pub mod session;

pub use concurrent::{ConcurrentSession, SessionSnapshot};
pub use session::{
    CellAnswer, IngestReport, Mode, QueryOutcome, QueryResult, ResultRow, SampleRotation,
    SessionBuilder, StopPolicy, VerdictSession,
};

// Re-export the sub-crates under stable names.
pub use verdict_aqp as aqp;
pub use verdict_core as core;
pub use verdict_linalg as linalg;
pub use verdict_sql as sql;
pub use verdict_stats as stats;
pub use verdict_storage as storage;
pub use verdict_store as store;
pub use verdict_workload as workload;

/// Errors surfaced by the session layer.
#[derive(Debug)]
pub enum Error {
    /// SQL front-end failure.
    Sql(verdict_sql::SqlError),
    /// Inference-engine failure.
    Core(verdict_core::CoreError),
    /// AQP-engine failure.
    Aqp(verdict_aqp::AqpError),
    /// Storage failure.
    Storage(verdict_storage::StorageError),
    /// Durable-store failure.
    Store(verdict_store::StoreError),
}

impl From<verdict_sql::SqlError> for Error {
    fn from(e: verdict_sql::SqlError) -> Self {
        Error::Sql(e)
    }
}
impl From<verdict_core::CoreError> for Error {
    fn from(e: verdict_core::CoreError) -> Self {
        Error::Core(e)
    }
}
impl From<verdict_aqp::AqpError> for Error {
    fn from(e: verdict_aqp::AqpError) -> Self {
        Error::Aqp(e)
    }
}
impl From<verdict_storage::StorageError> for Error {
    fn from(e: verdict_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}
impl From<verdict_store::StoreError> for Error {
    fn from(e: verdict_store::StoreError) -> Self {
        Error::Store(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Sql(e) => write!(f, "{e}"),
            Error::Core(e) => write!(f, "{e}"),
            Error::Aqp(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
