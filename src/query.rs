//! Query execution options and the prepared-statement serving path.
//!
//! [`QueryOptions`] replaces the positional `Mode`/`StopPolicy` arguments
//! of the session API: one struct carries the inference mode, the stop
//! policy, and an optional pinned snapshot, and new knobs can be added
//! without breaking callers (the struct is `#[non_exhaustive]`; build it
//! with the `with_*` methods).
//!
//! [`Prepared`] is the hot serving path for repeated query shapes:
//! [`crate::Database::prepare`] runs parse → check → resolve →
//! plan-template **once**; every [`Prepared::bind`] + [`Bound::run`]
//! afterwards only substitutes literals into the compiled plan, picks a
//! snapshot, and scans — the lexer, parser, checker, and decomposer are
//! never touched again. Answers are bit-identical to ad-hoc
//! [`crate::Database::query`] of the same statement with the literals
//! inlined (the `prepare` benchmark asserts this).

use std::sync::Arc;
use std::time::Instant;

use verdict_aqp::AqpEngine;
use verdict_obs::{ScanTrace, Stopwatch};
use verdict_sql::{ParamKind, PreparedQuery};
use verdict_storage::{distinct_group_keys, GroupKey, Value};

use crate::database::{pin_snapshot, SessionSnapshot, Shard};
use crate::session::{query_trace, run_shared_read, StagePrelude};
use crate::{Error, Mode, QueryOutcome, Result, StopPolicy};

/// How one query executes: inference mode, stop policy, and (optionally)
/// a pinned snapshot.
///
/// Non-exhaustive — construct with [`QueryOptions::new`] /
/// [`Default::default`] and refine with the `with_*` methods:
///
/// ```ignore
/// let opts = QueryOptions::new()
///     .with_mode(Mode::Verdict)
///     .with_policy(StopPolicy::RelativeErrorBound { target: 0.025, delta: 0.95 });
/// ```
#[derive(Clone)]
#[non_exhaustive]
pub struct QueryOptions {
    /// Whether inference improves answers (default [`Mode::Verdict`]).
    pub mode: Mode,
    /// When the sample scan stops (default [`StopPolicy::ScanAll`]).
    pub policy: StopPolicy,
    /// Pin the read to a previously captured snapshot pair: the query is
    /// answered entirely from that epoch's learned state **and** data
    /// version, learning is skipped, and the rotation counter does not
    /// advance — a pure function of the snapshot, bit-reproducible
    /// regardless of concurrent writers or ingests. The snapshot must
    /// come from the table the query addresses.
    pub pinned_epoch: Option<SessionSnapshot>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            mode: Mode::Verdict,
            policy: StopPolicy::ScanAll,
            pinned_epoch: None,
        }
    }
}

impl std::fmt::Debug for QueryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryOptions")
            .field("mode", &format_args!("{}", self.mode))
            .field("policy", &format_args!("{}", self.policy))
            .field(
                "pinned_epoch",
                &self.pinned_epoch.as_ref().map(|s| s.epoch()),
            )
            .finish()
    }
}

impl QueryOptions {
    /// The defaults: `Mode::Verdict`, `StopPolicy::ScanAll`, no pin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shorthand for the baseline mode (raw AQP answers, no learning).
    pub fn no_learn() -> Self {
        Self::new().with_mode(Mode::NoLearn)
    }

    /// Sets the inference mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the stop policy.
    pub fn with_policy(mut self, policy: StopPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Pins the read to `snapshot` (see [`QueryOptions::pinned_epoch`]).
    pub fn pinned(mut self, snapshot: SessionSnapshot) -> Self {
        self.pinned_epoch = Some(snapshot);
        self
    }
}

/// A statement prepared by [`crate::Database::prepare`]: the whole SQL
/// layer's work, done once and frozen.
///
/// `Send + Sync + Clone` — one prepared handle can serve any number of
/// threads concurrently; each [`Prepared::bind`] / [`Bound::run`] pair is
/// an independent execution against the table's current (or a pinned)
/// snapshot.
#[derive(Clone)]
pub struct Prepared {
    shard: Arc<Shard>,
    inner: PreparedQuery,
    sql: String,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("sql", &self.sql)
            .field("table", &self.table_name())
            .field("placeholders", &self.placeholder_count())
            .finish()
    }
}

impl Prepared {
    pub(crate) fn new(shard: Arc<Shard>, inner: PreparedQuery, sql: String) -> Prepared {
        Prepared { shard, inner, sql }
    }

    /// The original statement text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The catalog table the statement resolved to.
    pub fn table_name(&self) -> &str {
        &self.shard.name
    }

    /// Number of `?` placeholders the statement binds.
    pub fn placeholder_count(&self) -> usize {
        self.inner.placeholder_count()
    }

    /// The accepted kind of each placeholder, by index.
    pub fn param_kinds(&self) -> &[ParamKind] {
        self.inner.param_kinds()
    }

    /// Stable 64-bit fingerprint of the compiled plan
    /// ([`verdict_sql::PreparedQuery::fingerprint`]): equal fingerprints
    /// mean structurally identical plans, so `(table, fingerprint,
    /// bound literals)` identifies an answer up to table state. Stable
    /// across processes and hosts — usable as a persistent cache key.
    pub fn plan_fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    /// The table's current answer-cache validity token:
    /// `Some((model_epoch, data_epoch))` when repeated runs of one
    /// statement are bit-reproducible (fixed sample rotation), `None`
    /// when round-robin rotation makes each run consume the rotation
    /// counter. Two runs bracketed by equal tokens returned identical
    /// bytes — and conversely, any training, ingest, or restore in
    /// between moves the token. A memoizing cache stores an answer under
    /// the token observed around its run and serves it only while the
    /// live token still matches; staleness is impossible by
    /// construction.
    pub fn cache_token(&self) -> Option<(u64, u64)> {
        if !self.shard.deterministic_serving() {
            return None;
        }
        let snapshot = self.shard.current();
        Some((snapshot.model_epoch(), snapshot.data_epoch()))
    }

    /// Binds the placeholders, validating count and value kinds eagerly:
    /// a wrong parameter count or a parameter whose type cannot fit its
    /// column returns a typed error here, before any scan work.
    pub fn bind(&self, params: &[Value]) -> Result<Bound<'_>> {
        if params.len() != self.inner.placeholder_count() {
            return Err(Error::Sql(verdict_sql::SqlError::PlaceholderCount {
                expected: self.inner.placeholder_count(),
                got: params.len(),
            }));
        }
        for (i, (kind, value)) in self.inner.param_kinds().iter().zip(params).enumerate() {
            if *kind == ParamKind::Numeric && !matches!(value, Value::Num(_)) {
                return Err(Error::Sql(verdict_sql::SqlError::PlaceholderType {
                    index: i,
                    message: format!("numeric column placeholder bound with {value}"),
                }));
            }
        }
        Ok(Bound {
            prepared: self,
            params: params.to_vec(),
        })
    }
}

/// A prepared statement with its parameters bound, ready to run (any
/// number of times).
pub struct Bound<'a> {
    prepared: &'a Prepared,
    params: Vec<Value>,
}

impl std::fmt::Debug for Bound<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bound")
            .field("sql", &self.prepared.sql)
            .field("params", &self.params)
            .finish()
    }
}

impl Bound<'_> {
    /// Executes against the table's current snapshot (or the one pinned
    /// in `opts`): substitute literals into the compiled plan, enumerate
    /// groups if the statement has a `GROUP BY`, run the one shared scan,
    /// absorb what was learned. No SQL-layer work happens here.
    pub fn run(&self, opts: &QueryOptions) -> Result<QueryOutcome> {
        let t0 = Instant::now();
        let shard = &self.prepared.shard;
        // Same contract as `Database::query`: pinned reads are pure and
        // must not consume a parked store error meant for the writer.
        if opts.pinned_epoch.is_none() {
            shard.surface_store_error()?;
        }
        shard.obs.query_started();
        let tracing = shard.obs.tracing();
        // The SQL layer was paid at prepare time: the serving path has no
        // parse stage, so `parse_ns` stays 0 and binding + group
        // enumeration + plan instantiation all count as planning.
        let plan_sw = Stopwatch::started_if(tracing);
        let (snapshot, sample, learn) = pin_snapshot(shard, opts)?;
        let engine = &snapshot.data.engines[sample];
        let sample_table = engine.sample().table();
        let prepared = &self.prepared.inner;

        let base = prepared.bind(sample_table, &self.params)?;
        let group_keys: Vec<GroupKey> = if prepared.group_cols().is_empty() {
            Vec::new()
        } else if engine.sample().is_paged() {
            // A paged sample's resident table is the zero-row resolution;
            // enumerate by streaming segments (pruned partitions skipped
            // without I/O).
            engine
                .sample()
                .paged_distinct_group_keys(&base, prepared.group_cols())
                .map_err(Error::Aqp)?
        } else {
            distinct_group_keys(sample_table, &base, prepared.group_cols())
                .map_err(Error::Storage)?
        };
        let plan = prepared.plan_bound(
            base,
            sample_table,
            &group_keys,
            snapshot.engine.config().nmax,
        )?;
        let plan_ns = plan_sw.elapsed_ns();
        let mut scan = tracing.then(ScanTrace::default);
        let read = run_shared_read(
            engine,
            snapshot.engine.view(),
            &plan,
            opts.mode,
            opts.policy,
            snapshot.engine.epoch(),
            shard.scan_kernel,
            shard.parallelism,
            scan.as_mut(),
        )?;
        if engine.sample().is_paged() {
            shard.obs.record_partition_cache(&read.cache);
        }
        let absorb_sw = Stopwatch::started_if(tracing);
        if learn {
            shard.absorb_read(&read);
        }
        let absorb_ns = absorb_sw.elapsed_ns();
        let mut result = read.result;
        result.elapsed = t0.elapsed();
        if let Some(scan) = scan {
            shard.obs.record_query(
                query_trace(
                    &shard.name,
                    Some(&self.prepared.sql),
                    true,
                    opts.mode,
                    snapshot.data_epoch(),
                    &result,
                    &scan,
                    StagePrelude {
                        parse_ns: 0,
                        plan_ns,
                        absorb_ns,
                    },
                ),
                plan.groups_dropped,
            );
            shard.refresh_engine_gauges(&snapshot);
        }
        Ok(QueryOutcome::Answered(result))
    }
}

// A prepared handle is part of the serving surface: it must cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Prepared>();
    assert_send_sync::<QueryOptions>();
};
