//! The multi-table serving front-end: a [`Database`] catalog of learned
//! tables.
//!
//! A `Database` owns, **per registered table**: the base table, its
//! maintained offline samples, its query synopsis and trained models, and
//! its serialized learn path. `FROM <name>` resolves against the catalog
//! ([`verdict_sql::resolve_from`]), so one handle serves a whole schema:
//!
//! ```text
//! let db = Database::builder()
//!     .register_table("orders", orders)
//!     .register_table("events", events)
//!     .persist_to("analytics-db")
//!     .build()?;
//! db.query("SELECT AVG(m) FROM orders WHERE d0 BETWEEN 1 AND 3", &opts)?;
//! db.query("SELECT COUNT(*) FROM events WHERE hour >= 6", &opts)?;
//! ```
//!
//! ## Architecture
//!
//! Each table is an independent **shard**: the read path loads the
//! shard's current published [`SessionSnapshot`] (a paired, immutable
//! view of learned state + data) and answers from it lock-free; what the
//! query learned funnels through the shard's own writer mutex. Because
//! the mutex is per table, concurrent reads on `orders` never serialize
//! behind an ingest on `events` — the learn paths of different tables are
//! fully independent, as are their [`verdict_core::AggKey`] spaces (one
//! engine per table, so `orders.AVG(m)` and `events.AVG(m)` are disjoint
//! state by construction; see [`verdict_core::QualifiedAggKey`]).
//!
//! `Database` is `Send + Sync + Clone` (one `Arc`); the single-table
//! [`crate::ConcurrentSession`] is a thin wrapper over it.
//!
//! ## Persistence (store layout v3)
//!
//! [`DatabaseBuilder::persist_to`] persists the whole catalog under one
//! root directory: a `CATALOG` manifest plus one complete per-table
//! synopsis store in `tables/<name>/` (each an ordinary format-v2 store —
//! WAL, snapshot generations, crash recovery, all per table).
//! [`Database::open`] warm-starts every table from that one directory; it
//! also opens a legacy v2 single-table directory (the table is then named
//! `"t"` and any `FROM` resolves to it, matching the pre-catalog
//! sessions).
//!
//! ## Prepared statements
//!
//! [`Database::prepare`] runs parse → check → resolve → plan-template
//! once; the returned [`crate::Prepared`] handle re-executes with only
//! literal re-binding (see [`crate::query`]).

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use verdict_aqp::{AqpEngine, CostModel, OnlineAggregation, ScanKernel, StorageTier};
use verdict_core::concurrent::{EngineSnapshot, Learner};
use verdict_core::{AggKey, QualifiedAggKey, SchemaInfo, Verdict, VerdictConfig};
use verdict_obs::{MetricsHub, MetricsSnapshot, QueryLog, QueryTrace, ScanTrace, Stopwatch};
use verdict_sql::checker::JoinPolicy;
use verdict_sql::{check_query, parse_query, resolve_from, SupportVerdict};
use verdict_storage::{PartitionMap, PartitionStore, Schema, Table, Value};
use verdict_store::catalog::{catalog_exists, is_valid_table_name, table_dir};
use verdict_store::{
    read_catalog, write_catalog, CatalogManifest, PagedState, Recovered, RecoveryReport,
    SessionMeta, SharedStore, StorePolicy, SynopsisStore,
};

use crate::metrics::{CheckpointReport, TableObs};
use crate::query::{Prepared, QueryOptions};
use crate::session::{
    build_paged_engines, default_parallelism, draw_engines, plan_shared_scan, prepare_ingest,
    prepare_ingest_paged, query_trace, run_shared_read, widening_magnitude, IngestReport,
    PagedRuntime, ReadOutcome, SampleRotation, SessionParts, StagePrelude,
};
use crate::{Error, QueryOutcome, Result};

/// Catalog-level failures: registration and snapshot-pinning errors that
/// are about the *database*, not about one statement's SQL. (Unknown
/// table names — from `FROM` or a by-name API call — uniformly surface
/// as [`verdict_sql::SqlError::UnknownTable`], which lists the catalog.)
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CatalogError {
    /// A table name was registered twice (names are case-insensitive).
    DuplicateTable(String),
    /// A table name is not a valid identifier.
    InvalidTableName(String),
    /// The builder was asked to build a database with no tables.
    NoTables,
    /// A pinned snapshot from one table was used to query another.
    SnapshotTableMismatch {
        /// Table the snapshot was pinned from.
        snapshot: String,
        /// Table the query addressed.
        query: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateTable(name) => {
                write!(f, "table {name} is already registered")
            }
            CatalogError::InvalidTableName(name) => write!(
                f,
                "invalid table name {name:?}: must be an identifier \
                 ([A-Za-z_][A-Za-z0-9_]*, at most 64 bytes)"
            ),
            CatalogError::NoTables => f.write_str("a database needs at least one table"),
            CatalogError::SnapshotTableMismatch { snapshot, query } => write!(
                f,
                "pinned snapshot belongs to table {snapshot}, query addresses {query}"
            ),
        }
    }
}

impl std::error::Error for CatalogError {}

/// One immutable version of a table's *data*: the base table as of one
/// data epoch, plus the maintained offline samples drawn from it. Ingest
/// publishes a fresh `DataSet`; readers in flight keep the one they
/// loaded.
pub(crate) struct DataSet {
    pub(crate) data_epoch: u64,
    pub(crate) table: Arc<Table>,
    pub(crate) engines: Vec<OnlineAggregation>,
}

/// An atomically paired view of one table at one instant: the learned
/// state ([`EngineSnapshot`]) together with the table/sample version
/// (`data_epoch`) that state describes.
///
/// Pin one with [`Database::snapshot`] (or
/// [`crate::ConcurrentSession::snapshot`]) and run any number of reads
/// against it via [`QueryOptions::pinned`]: every answer is a pure
/// function of the pair, bit-reproducible regardless of interleaved
/// writers or ingests — the pair keeps the exact table and sample version
/// alive even after newer epochs are published.
#[derive(Clone)]
pub struct SessionSnapshot {
    pub(crate) table_name: Arc<str>,
    pub(crate) engine: Arc<EngineSnapshot>,
    pub(crate) data: Arc<DataSet>,
}

impl SessionSnapshot {
    /// The catalog name of the table this snapshot pins.
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// The epoch of the learned state (see [`EngineSnapshot::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// The data epoch of the pinned table/sample version.
    pub fn data_epoch(&self) -> u64 {
        self.data.data_epoch
    }

    /// The model epoch of the pinned learned state (see
    /// [`EngineSnapshot::model_epoch`]): bumped only by answer-affecting
    /// mutations (train / ingest / restore), never by synopsis observes.
    /// Two snapshots of one table with equal
    /// `(model_epoch, data_epoch)` answer every query bit-identically.
    pub fn model_epoch(&self) -> u64 {
        self.engine.model_epoch()
    }

    /// The pinned learned state.
    pub fn engine_snapshot(&self) -> &EngineSnapshot {
        &self.engine
    }

    /// The pinned base table.
    pub fn table(&self) -> &Table {
        &self.data.table
    }

    /// Encodes the pinned learned state (byte-identical to
    /// `Verdict::state_bytes` on the engine it was published from).
    pub fn state_bytes(&self) -> Vec<u8> {
        self.engine.state_bytes()
    }

    /// Whether the pinned state carries a trained model for `key`.
    pub fn has_model(&self, key: &AggKey) -> bool {
        self.engine.has_model(key)
    }

    /// Snippets the pinned state retains for `key`.
    pub fn synopsis_len(&self, key: &AggKey) -> usize {
        self.engine.synopsis_len(key)
    }

    /// The engine counters as of the pinned state.
    pub fn stats(&self) -> verdict_core::EngineStats {
        self.engine.stats()
    }
}

/// The serialized write path of one shard: the learner plus what
/// checkpointing and ingesting need.
pub(crate) struct Writer {
    pub(crate) learner: Learner,
    pub(crate) meta: SessionMeta,
    /// Base-table partition map of a promoted partitioned session (kept
    /// current across ingests; `None` for unpartitioned tables). Scopes
    /// each ingest's Lemma-3 widening to the regions its partitions can
    /// reach.
    pub(crate) partitions: Option<PartitionMap>,
    /// Out-of-core runtime of a demand-paged table (promoted paged
    /// session or a reopened paged store); `None` for resident tables.
    pub(crate) paged: Option<PagedRuntime>,
}

/// One table's full runtime: published snapshot pair, serialized writer,
/// per-table durable store. The per-table unit of independence — nothing
/// in here is shared across tables.
pub(crate) struct Shard {
    pub(crate) name: Arc<str>,
    rotation: SampleRotation,
    /// The sample `Fixed` rotation and pinned reads scan.
    pub(crate) fixed_sample: usize,
    num_samples: usize,
    /// Next sample index under round-robin rotation.
    next_sample: AtomicUsize,
    /// Where readers load the current paired snapshot from. Only the
    /// writer stores into it (under the writer lock), so the engine half
    /// and the data half can never be observed mismatched.
    current: Mutex<SessionSnapshot>,
    /// The durable store, outside the writer lock: its own mutex
    /// serializes appends, and parked-error checks must not block on a
    /// training writer.
    store: Option<SharedStore>,
    writer: Mutex<Writer>,
    recovery: Option<RecoveryReport>,
    /// This table's observability endpoint (no-op when the database was
    /// built without metrics / query log).
    pub(crate) obs: TableObs,
    /// Scan execution kernel every query on this table runs under.
    pub(crate) scan_kernel: ScanKernel,
    /// Worker-thread count for this table's morsel-parallel shared scans
    /// (1 = serial).
    pub(crate) parallelism: usize,
}

impl Shard {
    /// Builds a shard from live parts, publishing the first snapshot.
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &str,
        table: Table,
        engines: Vec<OnlineAggregation>,
        active: usize,
        rotation: SampleRotation,
        verdict: Verdict,
        store: Option<SharedStore>,
        meta: SessionMeta,
        recovery: Option<RecoveryReport>,
        obs: TableObs,
        scan_kernel: ScanKernel,
        parallelism: usize,
        partitions: Option<PartitionMap>,
        paged: Option<PagedRuntime>,
    ) -> Arc<Shard> {
        let data = Arc::new(DataSet {
            data_epoch: verdict.data_epoch(),
            table: Arc::new(table),
            engines,
        });
        let learner = Learner::new(verdict);
        let name: Arc<str> = Arc::from(name);
        let current = SessionSnapshot {
            table_name: Arc::clone(&name),
            engine: learner.snapshot(),
            data: Arc::clone(&data),
        };
        Arc::new(Shard {
            name,
            rotation,
            fixed_sample: active,
            num_samples: data.engines.len(),
            next_sample: AtomicUsize::new(active),
            current: Mutex::new(current),
            store,
            writer: Mutex::new(Writer {
                learner,
                meta,
                partitions,
                paged,
            }),
            recovery,
            obs,
            scan_kernel,
            parallelism: parallelism.max(1),
        })
    }

    /// Loads the current paired snapshot (brief lock, two `Arc` copies).
    pub(crate) fn current(&self) -> SessionSnapshot {
        self.current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Publishes the writer's current engine snapshot, paired with `data`
    /// (or, when `data` is `None`, with the currently published data set).
    /// Caller holds the writer lock, so pairs are never torn.
    fn publish_locked(&self, writer: &Writer, data: Option<Arc<DataSet>>) {
        let mut cur = self
            .current
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let data = data.unwrap_or_else(|| Arc::clone(&cur.data));
        *cur = SessionSnapshot {
            table_name: Arc::clone(&self.name),
            engine: writer.learner.snapshot(),
            data,
        };
    }

    /// Whether repeated identical queries against one snapshot are
    /// bit-reproducible without consuming serving state: true under
    /// `Fixed` rotation (or a single sample, where rotation is a no-op).
    /// Round-robin rotation makes each run consume the rotation counter,
    /// so answers may legitimately differ run to run — a memoizing
    /// answer cache must not engage there.
    pub(crate) fn deterministic_serving(&self) -> bool {
        matches!(self.rotation, SampleRotation::Fixed) || self.num_samples == 1
    }

    /// Which sample the next live query scans: round-robin advances one
    /// shared counter; `Fixed` always scans the shard's fixed sample.
    pub(crate) fn pick_sample(&self) -> usize {
        match self.rotation {
            SampleRotation::Fixed => self.fixed_sample,
            SampleRotation::RoundRobin => {
                self.next_sample.fetch_add(1, Ordering::Relaxed) % self.num_samples
            }
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, Writer> {
        // Writer state is consistent at rest; a poisoned lock only means
        // another thread panicked between mutations.
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Surfaces any error a background WAL append or deferred compaction
    /// parked since the last check.
    pub(crate) fn surface_store_error(&self) -> Result<()> {
        if let Some(store) = &self.store {
            if let Some(e) = store.lock().take_error() {
                return Err(Error::Store(e));
            }
        }
        Ok(())
    }

    /// The learn path: one serialized absorb per query. Synopsis appends
    /// (and through the observer hook, WAL appends) happen in writer-lock
    /// order; the batch republishes once, paired with the current data
    /// set. No-op for reads that learned nothing (`Mode::NoLearn`).
    pub(crate) fn absorb_read(&self, read: &ReadOutcome) {
        if read.recorded.is_empty() && read.stats.is_zero() {
            return;
        }
        let mut writer = self.lock_writer();
        writer.learner.absorb(&read.recorded, read.stats);
        self.publish_locked(&writer, None);
        self.maybe_compact(&mut writer);
    }

    /// Offline training pass (Algorithm 1) under the writer lock, then —
    /// for persistent shards — a checkpoint.
    fn train(&self) -> Result<()> {
        self.surface_store_error()?;
        let mut writer = self.lock_writer();
        let sw = Stopwatch::started_if(self.obs.tracing());
        writer.learner.train().map_err(Error::Core)?;
        self.obs.record_train(Duration::from_nanos(sw.elapsed_ns()));
        self.publish_locked(&writer, None);
        self.snapshot_now(&mut writer).map_err(Error::Store)?;
        Ok(())
    }

    /// Checkpoints the learned state into a fresh snapshot generation and
    /// truncates the log. All-zero report without a store.
    fn checkpoint(&self) -> Result<CheckpointReport> {
        self.surface_store_error()?;
        let mut writer = self.lock_writer();
        let receipt = self.snapshot_now(&mut writer).map_err(Error::Store)?;
        Ok(receipt
            .as_ref()
            .map(CheckpointReport::from_receipt)
            .unwrap_or_default())
    }

    /// The one store-snapshot path (explicit checkpoints and piggybacked
    /// compaction). Caller holds the writer lock, so neither the encoded
    /// state nor the current data set can move underneath the write.
    /// Metric recording lives here, so piggybacked compactions count the
    /// same way explicit checkpoints do.
    fn snapshot_now(
        &self,
        writer: &mut Writer,
    ) -> verdict_store::Result<Option<verdict_store::SnapshotReceipt>> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let data = Arc::clone(&self.current().data);
        let engine = writer.learner.engine();
        let schema_fp = verdict_core::persist::fingerprint(engine.schema());
        let state_bytes = engine.state_bytes();
        let (receipt, stats) = {
            let mut guard = store.lock();
            let receipt = if let Some(rt) = &writer.paged {
                let state = PagedState {
                    map: rt.map.read().expect("partition map poisoned").clone(),
                    original_part_rows: rt.original_part_rows.clone(),
                    resolution: (*data.table).clone(),
                    total_rows: rt.total_rows,
                    tails: data
                        .engines
                        .iter()
                        .map(|e| {
                            e.sample()
                                .paged_tail()
                                .expect("paged shard engines carry tails")
                                .clone()
                        })
                        .collect(),
                };
                guard.snapshot_paged(writer.meta.clone(), schema_fp, &state_bytes, &state)?
            } else {
                guard.snapshot_encoded(writer.meta.clone(), schema_fp, &state_bytes, &data.table)?
            };
            (receipt, guard.stats())
        };
        self.obs
            .record_checkpoint(&CheckpointReport::from_receipt(&receipt));
        self.obs.refresh_store(stats);
        Ok(Some(receipt))
    }

    /// Folds the log into a fresh snapshot when the store's compaction
    /// policy asks for it; failures park in the store and surface at the
    /// next query/checkpoint. Caller holds the writer lock.
    fn maybe_compact(&self, writer: &mut Writer) {
        let Some(store) = &self.store else {
            return;
        };
        if !store.lock().needs_compaction() {
            return;
        }
        if let Err(e) = self.snapshot_now(writer) {
            store.lock().park_error(e);
        }
    }

    /// Ingests a row batch into this shard's evolving table, serialized
    /// with its learn path (readers never block, other tables are not
    /// involved at all).
    fn ingest(&self, rows: &[Vec<Value>]) -> Result<IngestReport> {
        self.surface_store_error()?;
        let t0 = Instant::now();
        let mut writer = self.lock_writer();
        let snapshot = self.current();
        if rows.is_empty() {
            return Ok(IngestReport {
                appended_rows: 0,
                admitted_rows: vec![0; self.num_samples],
                adjusted_keys: 0,
                adjusted_snippets: 0,
                skipped_keys: Vec::new(),
                data_epoch: snapshot.data_epoch(),
                elapsed: t0.elapsed(),
                refit_elapsed: Duration::ZERO,
                wal_bytes: 0,
                widening_magnitude: 0.0,
            });
        }
        if writer.paged.is_some() {
            return self.ingest_paged(&mut writer, &snapshot, rows, t0);
        }
        let old = &snapshot.data;
        // All fallible work first (validation, shift estimation, staged
        // rewrites + refits) — shared with the serial session; the shift
        // is estimated against the fixed sample.
        let prepared = prepare_ingest(
            writer.learner.engine(),
            &old.table,
            old.engines[self.fixed_sample].sample().table(),
            rows,
            writer.partitions.as_ref(),
        )?;
        // WAL byte accounting is the store's own cumulative counter
        // (delta across the append) — no second measurement.
        let wal_bytes = if let Some(store) = &self.store {
            let mut guard = store.lock();
            let before = guard.stats().wal_bytes;
            guard
                .append_ingest(rows, &prepared.adjustments)
                .map_err(Error::Store)?;
            guard.stats().wal_bytes - before
        } else {
            0
        };
        // Build the next data set copy-on-write: the table clones once,
        // each sample's rows clone on its first admission.
        let mut table = (*old.table).clone();
        table.push_rows(rows).map_err(Error::Storage)?;
        // Route the appended rows into the partition map so the next
        // ingest's bounds see this batch's contribution (a batch may
        // split across several partitions; only those summaries extend).
        if let Some(map) = &mut writer.partitions {
            map.extend(&table).map_err(Error::Storage)?;
        }
        let mut engines = old.engines.clone();
        let mut admitted_rows = Vec::with_capacity(engines.len());
        for (i, engine) in engines.iter_mut().enumerate() {
            admitted_rows.push(
                engine
                    .absorb_appended(&table, prepared.old_rows as u64, writer.meta.seed, i as u64)
                    .map_err(Error::Aqp)?,
            );
        }
        let adjusted_snippets = writer.learner.engine_mut().commit_ingest(prepared.staged);
        writer.learner.republish();
        let data = Arc::new(DataSet {
            data_epoch: old.data_epoch + 1,
            table: Arc::new(table),
            engines,
        });
        let data_epoch = data.data_epoch;
        self.publish_locked(&writer, Some(data));
        self.maybe_compact(&mut writer);
        let report = IngestReport {
            appended_rows: rows.len(),
            admitted_rows,
            adjusted_keys: prepared.adjustments.len(),
            adjusted_snippets,
            skipped_keys: prepared.skipped_keys,
            data_epoch,
            elapsed: t0.elapsed(),
            refit_elapsed: prepared.refit_elapsed,
            wal_bytes,
            widening_magnitude: widening_magnitude(&prepared.adjustments),
        };
        self.obs.record_ingest(&report);
        drop(writer);
        self.refresh_engine_gauges(&self.current());
        Ok(report)
    }

    /// Out-of-core ingest: the batch is WAL-logged then write-extends only
    /// the touched partition files; no sampled row moves. Mirrors
    /// [`crate::VerdictSession`]'s paged ingest under this shard's writer
    /// lock, publishing the next data set copy-on-write (the resolution
    /// table only syncs dictionaries; each engine's resident tail admits
    /// its rows through the same pure per-row admission function).
    fn ingest_paged(
        &self,
        writer: &mut Writer,
        snapshot: &SessionSnapshot,
        rows: &[Vec<Value>],
        t0: Instant,
    ) -> Result<IngestReport> {
        let old = &snapshot.data;
        let (map_arc, total_rows) = {
            let rt = writer.paged.as_ref().expect("caller checked");
            (Arc::clone(&rt.map), rt.total_rows)
        };
        let (prepared, batch, routed) = {
            let map = map_arc.read().expect("partition map poisoned");
            prepare_ingest_paged(
                writer.learner.engine(),
                &old.table,
                old.engines[self.fixed_sample].sample(),
                &map,
                total_rows,
                rows,
            )?
        };
        // Paged shards are persistent by construction.
        let store = self.store.as_ref().expect("paged shards have a store");
        let wal_bytes = {
            let mut guard = store.lock();
            let before = guard.stats().wal_bytes;
            let seq = guard
                .append_ingest(rows, &prepared.adjustments)
                .map_err(Error::Store)?;
            guard
                .append_parts(seq, &batch, &routed)
                .map_err(Error::Store)?;
            guard.stats().wal_bytes - before
        };
        map_arc
            .write()
            .expect("partition map poisoned")
            .extend_batch(&batch)
            .map_err(Error::Storage)?;
        let mut table = (*old.table).clone();
        table
            .sync_dictionaries_from(&batch)
            .map_err(Error::Storage)?;
        let mut engines = old.engines.clone();
        let mut admitted_rows = Vec::with_capacity(engines.len());
        for (i, engine) in engines.iter_mut().enumerate() {
            admitted_rows.push(
                engine
                    .paged_absorb_appended(&batch, total_rows, writer.meta.seed, i as u64)
                    .map_err(Error::Aqp)?,
            );
        }
        let adjusted_snippets = writer.learner.engine_mut().commit_ingest(prepared.staged);
        writer.learner.republish();
        writer.paged.as_mut().expect("caller checked").total_rows += rows.len() as u64;
        let data = Arc::new(DataSet {
            data_epoch: old.data_epoch + 1,
            table: Arc::new(table),
            engines,
        });
        let data_epoch = data.data_epoch;
        self.publish_locked(writer, Some(data));
        self.maybe_compact(writer);
        let report = IngestReport {
            appended_rows: rows.len(),
            admitted_rows,
            adjusted_keys: prepared.adjustments.len(),
            adjusted_snippets,
            skipped_keys: prepared.skipped_keys,
            data_epoch,
            elapsed: t0.elapsed(),
            refit_elapsed: prepared.refit_elapsed,
            wal_bytes,
            widening_magnitude: widening_magnitude(&prepared.adjustments),
        };
        self.obs.record_ingest(&report);
        self.refresh_engine_gauges(&self.current());
        Ok(report)
    }

    /// Re-publishes the engine-state gauges from a published snapshot.
    /// No-op without a metrics hub.
    pub(crate) fn refresh_engine_gauges(&self, snapshot: &SessionSnapshot) {
        self.obs.refresh_engine(
            snapshot.engine.synopsis_total_snippets(),
            snapshot.engine.synopsis_num_keys(),
            // `len()` counts covered + tail rows on a paged sample, whose
            // resident `table()` is the zero-row resolution.
            snapshot.data.engines[self.fixed_sample].sample().len(),
            snapshot.engine.epoch(),
            snapshot.data.data_epoch,
        );
    }
}

struct DbInner {
    shards: Vec<Arc<Shard>>,
    /// Registration-order names, the catalog `FROM` resolves against.
    names: Vec<String>,
    /// Compatibility fallback: resolve unknown `FROM` names to this shard
    /// (set by the single-table session wrappers, never by the builder).
    default_table: Option<usize>,
    join_policy: JoinPolicy,
    /// Root directory of a persistent catalog (v3 layout), if any.
    root: Option<PathBuf>,
    /// The attached metrics hub, if any (every shard registered on it).
    metrics: Option<Arc<MetricsHub>>,
    /// The database-wide query log, if any (shared by every shard).
    query_log: Option<Arc<QueryLog>>,
}

/// A multi-table database handle: the catalog of learned tables.
///
/// `Send + Sync + Clone` — clone it into as many threads as you like; all
/// clones share the per-table shards. See the [module docs](self) for the
/// architecture.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.inner.names)
            .field("persistent", &self.is_persistent())
            .finish()
    }
}

/// Per-table construction knobs (sampling geometry, engine config).
/// Defaults match [`crate::SessionBuilder`]'s.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Sampling fraction for each offline uniform sample (default 10%).
    pub sample_fraction: f64,
    /// Batch size in sample rows (default 1000).
    pub batch_size: usize,
    /// RNG seed for sample drawing.
    pub seed: u64,
    /// Number of independent offline samples (default 1).
    pub num_samples: usize,
    /// Sample rotation across queries (default fixed).
    pub rotation: SampleRotation,
    /// Inference-engine configuration.
    pub config: VerdictConfig,
    /// Storage tier for the cost model.
    pub tier: StorageTier,
    /// Cost model.
    pub cost: CostModel,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            sample_fraction: 0.1,
            batch_size: 1000,
            seed: 0,
            num_samples: 1,
            rotation: SampleRotation::Fixed,
            config: VerdictConfig::default(),
            tier: StorageTier::Cached,
            cost: CostModel::default(),
        }
    }
}

/// The warm-start knobs [`Database::open_with`] accepts: exactly the
/// configuration the store does *not* persist. Sample identity (seed,
/// fraction, batch size, sample count) and the engine config always come
/// from the persisted metadata.
///
/// Non-exhaustive — construct with [`OpenOptions::new`] and refine with
/// the `with_*` methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct OpenOptions {
    /// Foreign-key join policy for the checker (default: no joins).
    pub join_policy: JoinPolicy,
    /// Compaction/durability policy for the per-table stores.
    pub store_policy: StorePolicy,
    /// Sample rotation, applied to every table (default fixed).
    pub rotation: SampleRotation,
    /// Storage tier for the cost model (default cached).
    pub tier: StorageTier,
    /// Cost model.
    pub cost: CostModel,
    /// Metrics hub for every table's series (default none — metrics
    /// fully disabled).
    pub metrics: Option<Arc<MetricsHub>>,
    /// Shared query log for every table (default none).
    pub query_log: Option<Arc<QueryLog>>,
    /// Scan execution kernel for every table (default chunked).
    pub scan_kernel: ScanKernel,
    /// Worker threads per shared scan (default: available cores).
    pub parallelism: usize,
    /// Partition-cache byte budget for out-of-core (paged) tables
    /// (default: effectively unbounded). Ignored for resident tables.
    pub memory_budget: Option<u64>,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions {
            join_policy: JoinPolicy::none(),
            store_policy: StorePolicy::default(),
            rotation: SampleRotation::Fixed,
            tier: StorageTier::Cached,
            cost: CostModel::default(),
            metrics: None,
            query_log: None,
            scan_kernel: ScanKernel::default(),
            parallelism: default_parallelism(),
            memory_budget: None,
        }
    }
}

impl OpenOptions {
    /// The defaults (see field docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the checker's join policy.
    pub fn with_join_policy(mut self, p: JoinPolicy) -> Self {
        self.join_policy = p;
        self
    }

    /// Sets the per-table stores' compaction/durability policy.
    pub fn with_store_policy(mut self, p: StorePolicy) -> Self {
        self.store_policy = p;
        self
    }

    /// Sets every table's sample rotation.
    pub fn with_rotation(mut self, r: SampleRotation) -> Self {
        self.rotation = r;
        self
    }

    /// Sets the storage tier for the cost model.
    pub fn with_tier(mut self, t: StorageTier) -> Self {
        self.tier = t;
        self
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Attaches a metrics hub (see [`DatabaseBuilder::metrics`]).
    pub fn with_metrics(mut self, hub: Arc<MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// Attaches a bounded query log (see [`DatabaseBuilder::query_log`]).
    pub fn with_query_log(mut self, capacity: usize) -> Self {
        self.query_log = Some(Arc::new(QueryLog::new(capacity)));
        self
    }

    /// Sets every table's scan kernel (see [`DatabaseBuilder::scan_kernel`]).
    pub fn with_scan_kernel(mut self, kernel: ScanKernel) -> Self {
        self.scan_kernel = kernel;
        self
    }

    /// Sets the worker-thread count for every table's shared scans (see
    /// [`DatabaseBuilder::parallelism`]).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Bounds the partition cache of reopened out-of-core tables to
    /// `bytes` (see [`crate::SessionBuilder::memory_budget`]). Answers
    /// never change with the budget — only how often segments fault in.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }
}

/// Builder for a [`Database`]. Tables are registered up front; the
/// catalog is fixed for the database's lifetime.
pub struct DatabaseBuilder {
    tables: Vec<(String, Table, TableOptions)>,
    join_policy: JoinPolicy,
    persist: Option<PathBuf>,
    store_policy: StorePolicy,
    metrics: Option<Arc<MetricsHub>>,
    query_log: Option<Arc<QueryLog>>,
    scan_kernel: ScanKernel,
    parallelism: usize,
}

impl DatabaseBuilder {
    /// Registers a table under `name` with default [`TableOptions`].
    pub fn register_table(self, name: &str, table: Table) -> Self {
        self.register_table_with(name, table, TableOptions::default())
    }

    /// Registers a table under `name` with explicit options.
    pub fn register_table_with(mut self, name: &str, table: Table, opts: TableOptions) -> Self {
        self.tables.push((name.to_owned(), table, opts));
        self
    }

    /// Foreign-key join policy for the checker (database-wide).
    pub fn join_policy(mut self, p: JoinPolicy) -> Self {
        self.join_policy = p;
        self
    }

    /// Persists the whole catalog under `dir`: a `CATALOG` manifest plus
    /// one per-table store in `tables/<name>/`. Fails at build time if a
    /// database (or legacy single-table store) already exists there —
    /// reopen with [`Database::open`].
    pub fn persist_to(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist = Some(dir.into());
        self
    }

    /// Overrides the per-table stores' compaction/durability policy.
    pub fn store_policy(mut self, policy: StorePolicy) -> Self {
        self.store_policy = policy;
        self
    }

    /// Attaches a metrics hub: every table registers its series
    /// (labelled `table="<name>"`) on it at build time and updates them
    /// lock-free from then on. Without a hub (the default) the metrics
    /// path is a true no-op — no atomics touched, no stage clocks read.
    pub fn metrics(mut self, hub: Arc<MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// Attaches one database-wide bounded query log: every answered
    /// query (any table, ad-hoc or prepared) pushes a
    /// [`verdict_obs::QueryTrace`] into a ring holding the most recent
    /// `capacity` traces. Off by default.
    pub fn query_log(mut self, capacity: usize) -> Self {
        self.query_log = Some(Arc::new(QueryLog::new(capacity)));
        self
    }

    /// Scan execution kernel for every table (default
    /// [`ScanKernel::Chunked`]); the row-wise kernel is the bit-identical
    /// reference path.
    pub fn scan_kernel(mut self, kernel: ScanKernel) -> Self {
        self.scan_kernel = kernel;
        self
    }

    /// Worker threads per shared scan for every table (default: available
    /// cores; clamped to at least 1). Thread count never changes answers:
    /// partials merge in batch-index order, so results are bit-identical
    /// to a serial scan.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Builds the database: validates the catalog, draws every table's
    /// samples, and (with persistence) writes the manifest and creates the
    /// per-table stores.
    pub fn build(self) -> Result<Database> {
        if self.tables.is_empty() {
            return Err(Error::Catalog(CatalogError::NoTables));
        }
        let mut seen: HashSet<String> = HashSet::new();
        for (name, _, _) in &self.tables {
            if !is_valid_table_name(name) {
                return Err(Error::Catalog(CatalogError::InvalidTableName(name.clone())));
            }
            if !seen.insert(name.to_ascii_lowercase()) {
                return Err(Error::Catalog(CatalogError::DuplicateTable(name.clone())));
            }
        }
        let names: Vec<String> = self.tables.iter().map(|(n, _, _)| n.clone()).collect();

        if let Some(root) = &self.persist {
            if catalog_exists(root) || SynopsisStore::exists(root) {
                return Err(Error::Store(verdict_store::StoreError::Mismatch(format!(
                    "a database or store already exists in {}; open it instead",
                    root.display()
                ))));
            }
        }

        let mut shards = Vec::with_capacity(self.tables.len());
        for (name, table, opts) in self.tables {
            let engines = draw_engines(
                &table,
                table.num_rows(),
                opts.sample_fraction,
                opts.batch_size,
                opts.seed,
                opts.num_samples.max(1),
                &opts.cost,
                opts.tier,
                None,
            )?;
            let schema = SchemaInfo::from_table(&table)?;
            let meta = SessionMeta {
                sample_fraction: opts.sample_fraction,
                batch_size: opts.batch_size as u64,
                seed: opts.seed,
                num_samples: opts.num_samples.max(1) as u64,
                original_rows: table.num_rows() as u64,
                config: opts.config.clone(),
                partition_spec: None,
                paged: false,
            };
            let mut verdict = Verdict::new(schema, opts.config);
            let store = match &self.persist {
                Some(root) => {
                    let store = SynopsisStore::create(
                        table_dir(root, &name),
                        self.store_policy.clone(),
                        meta.clone(),
                        &table,
                        &verdict.export_state(),
                    )
                    .map_err(Error::Store)?;
                    Some(SharedStore::new(store))
                }
                None => None,
            };
            if let Some(store) = &store {
                verdict.set_observer(store.observer());
            }
            let obs = TableObs::new(self.metrics.clone(), self.query_log.clone(), &name);
            shards.push(Shard::new(
                &name,
                table,
                engines,
                0,
                opts.rotation,
                verdict,
                store,
                meta,
                None,
                obs,
                self.scan_kernel,
                self.parallelism,
                None,
                None,
            ));
        }
        // The manifest is written *last*: it is the commit point of the
        // build. A crash or failure while the per-table stores were being
        // created leaves no CATALOG, so `open` cannot pick up a
        // half-built catalog (it reports "no snapshot" / not-found
        // instead of a missing-table surprise).
        if let Some(root) = &self.persist {
            write_catalog(
                root,
                &CatalogManifest {
                    tables: names.clone(),
                },
            )
            .map_err(Error::Store)?;
        }
        Ok(Database {
            inner: Arc::new(DbInner {
                shards,
                names,
                default_table: None,
                join_policy: self.join_policy,
                root: self.persist,
                metrics: self.metrics,
                query_log: self.query_log,
            }),
        })
    }
}

impl Database {
    /// Starts an empty catalog builder.
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder {
            tables: Vec::new(),
            join_policy: JoinPolicy::none(),
            persist: None,
            store_policy: StorePolicy::default(),
            metrics: None,
            query_log: None,
            scan_kernel: ScanKernel::default(),
            parallelism: default_parallelism(),
        }
    }

    /// Warm-starts a database from a directory previously created with
    /// [`DatabaseBuilder::persist_to`] — every table's samples are
    /// redrawn bit-identically and its learned state recovered (newest
    /// valid snapshot + WAL replay, per table). Equivalent to
    /// [`Database::open_with`] with default [`OpenOptions`].
    ///
    /// A legacy v2 single-table store directory (one created through
    /// [`crate::SessionBuilder::persist_to`]) also opens: its table is
    /// named `"t"` and any `FROM` name resolves to it, preserving the
    /// pre-catalog sessions' behavior.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(dir, OpenOptions::new())
    }

    /// [`Database::open`] with explicit [`OpenOptions`] — the knobs the
    /// store does **not** persist (join policy, store policy, sample
    /// rotation, cost model, storage tier) and would otherwise reopen at
    /// their defaults. Everything sample-identity-affecting (seed,
    /// fraction, batch size, sample count, engine config) comes from the
    /// persisted metadata and cannot be overridden, exactly like the
    /// session API's warm start.
    pub fn open_with(dir: impl AsRef<Path>, opts: OpenOptions) -> Result<Database> {
        let root = dir.as_ref();
        if catalog_exists(root) {
            let manifest = read_catalog(root).map_err(Error::Store)?;
            let mut shards = Vec::with_capacity(manifest.tables.len());
            for name in &manifest.tables {
                let (store, recovered) =
                    SynopsisStore::open(table_dir(root, name), opts.store_policy.clone())
                        .map_err(Error::Store)?;
                shards.push(shard_from_recovered(name, store, recovered, &opts)?);
            }
            Ok(Database {
                inner: Arc::new(DbInner {
                    shards,
                    names: manifest.tables,
                    default_table: None,
                    join_policy: opts.join_policy,
                    root: Some(root.to_path_buf()),
                    metrics: opts.metrics,
                    query_log: opts.query_log,
                }),
            })
        } else {
            // Legacy v2 single-table layout: the store files live at the
            // root itself and carry no table name.
            let (store, recovered) =
                SynopsisStore::open(root, opts.store_policy.clone()).map_err(Error::Store)?;
            let shard = shard_from_recovered("t", store, recovered, &opts)?;
            Ok(Database {
                inner: Arc::new(DbInner {
                    shards: vec![shard],
                    names: vec!["t".to_owned()],
                    default_table: Some(0),
                    join_policy: opts.join_policy,
                    root: Some(root.to_path_buf()),
                    metrics: opts.metrics,
                    query_log: opts.query_log,
                }),
            })
        }
    }

    /// Wraps one live table (a promoted session) as a single-table
    /// database. `lenient_from` preserves the pre-catalog sessions'
    /// behavior of accepting any `FROM` name.
    pub(crate) fn from_session_parts(
        parts: SessionParts,
        name: &str,
        lenient_from: bool,
    ) -> Database {
        let metrics = parts.obs.hub().cloned();
        let query_log = parts.obs.log().cloned();
        let shard = Shard::new(
            name,
            parts.table,
            parts.engines,
            parts.active,
            parts.rotation,
            parts.verdict,
            parts.store,
            parts.meta,
            parts.recovery,
            parts.obs,
            parts.scan_kernel,
            parts.parallelism,
            parts.partitions,
            parts.paged,
        );
        Database {
            inner: Arc::new(DbInner {
                shards: vec![shard],
                names: vec![name.to_owned()],
                default_table: lenient_from.then_some(0),
                join_policy: parts.join_policy,
                root: None,
                metrics,
                query_log,
            }),
        }
    }

    /// The registered table names, in registration order.
    pub fn table_names(&self) -> &[String] {
        &self.inner.names
    }

    /// The schema of `name`'s current base table: column names, physical
    /// types, and dimension/measure roles — everything a serving layer's
    /// `hello` handshake needs to advertise the catalog without reaching
    /// into catalog internals.
    ///
    /// ```
    /// use verdict::storage::{AttributeRole, ColumnDef, Schema, Table};
    /// use verdict::Database;
    ///
    /// let schema = Schema::new(vec![
    ///     ColumnDef::numeric_dimension("x"),
    ///     ColumnDef::measure("v"),
    /// ])
    /// .unwrap();
    /// let mut t = Table::new(schema);
    /// for i in 0..32 {
    ///     t.push_row(vec![(i as f64).into(), (2.0 * i as f64).into()])
    ///         .unwrap();
    /// }
    /// let db = Database::builder().register_table("t", t).build().unwrap();
    ///
    /// let schema = db.table_schema("t").unwrap();
    /// let names: Vec<&str> =
    ///     schema.columns().iter().map(|c| c.name.as_str()).collect();
    /// assert_eq!(names, ["x", "v"]);
    /// assert_eq!(schema.column("v").unwrap().role, AttributeRole::Measure);
    /// assert!(db.table_schema("nope").is_err());
    /// ```
    pub fn table_schema(&self, name: &str) -> Result<Schema> {
        Ok(self.shard(name)?.current().table().schema().clone())
    }

    /// The root directory of a persistent database.
    pub fn root_dir(&self) -> Option<&Path> {
        self.inner.root.as_deref()
    }

    /// Whether this database writes to durable stores.
    pub fn is_persistent(&self) -> bool {
        self.inner.shards.iter().any(|s| s.store.is_some())
    }

    /// Resolves a table name against the catalog.
    pub(crate) fn shard(&self, name: &str) -> Result<&Arc<Shard>> {
        let index =
            resolve_from(name, &self.inner.names, self.inner.default_table).map_err(Error::Sql)?;
        Ok(&self.inner.shards[index])
    }

    /// The shard a wrapper session (exactly one table) talks to.
    pub(crate) fn sole_shard(&self) -> &Arc<Shard> {
        debug_assert_eq!(self.inner.shards.len(), 1);
        &self.inner.shards[0]
    }

    /// The current base table of `name` (newest published data epoch).
    /// Cheap: clones an `Arc`, not the rows.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        Ok(Arc::clone(&self.shard(name)?.current().data.table))
    }

    /// The current published snapshot pair of `name` — pin it via
    /// [`QueryOptions::pinned`] to run a batch of queries against one
    /// epoch.
    pub fn snapshot(&self, name: &str) -> Result<SessionSnapshot> {
        Ok(self.shard(name)?.current())
    }

    /// The learned-state epoch of `name`'s current snapshot. Monotone.
    pub fn epoch(&self, name: &str) -> Result<u64> {
        Ok(self.shard(name)?.current().epoch())
    }

    /// The data epoch of `name`'s current snapshot: how many ingested
    /// batches its visible table has absorbed. Monotone.
    pub fn data_epoch(&self, name: &str) -> Result<u64> {
        Ok(self.shard(name)?.current().data_epoch())
    }

    /// The model epoch of `name`'s current snapshot (see
    /// [`SessionSnapshot::model_epoch`]): moves only when training,
    /// ingest, or a state restore changes what queries answer — the
    /// validity token a serving-layer answer cache pairs with
    /// [`Database::data_epoch`]. Monotone.
    pub fn model_epoch(&self, name: &str) -> Result<u64> {
        Ok(self.shard(name)?.current().model_epoch())
    }

    /// The metrics hub this database registers its series on (set via
    /// [`DatabaseBuilder::metrics`] / [`OpenOptions::with_metrics`]), so a
    /// layer above — e.g. a network server — can publish its own series
    /// next to the engine's in one snapshot. `None` when metrics are off.
    pub fn metrics_hub(&self) -> Option<&Arc<MetricsHub>> {
        self.inner.metrics.as_ref()
    }

    /// The recovery report of `name`, when it was warm-started.
    pub fn recovery_report(&self, name: &str) -> Result<Option<&RecoveryReport>> {
        Ok(self.shard(name)?.recovery.as_ref())
    }

    /// Whether `key`'s table currently publishes a trained model for it.
    pub fn has_model(&self, key: &QualifiedAggKey) -> Result<bool> {
        Ok(self.shard(&key.table)?.current().has_model(&key.key))
    }

    /// Snippets `key`'s table currently retains for it.
    pub fn synopsis_len(&self, key: &QualifiedAggKey) -> Result<usize> {
        Ok(self.shard(&key.table)?.current().synopsis_len(&key.key))
    }

    /// Every aggregate the database has learned anything about, qualified
    /// by table (deterministic order: tables in registration order, keys
    /// sorted within a table).
    pub fn learned_keys(&self) -> Vec<QualifiedAggKey> {
        let mut out = Vec::new();
        for (name, shard) in self.inner.names.iter().zip(&self.inner.shards) {
            let snapshot = shard.current();
            for key in snapshot.engine.synopsis_keys() {
                out.push(key.qualify(name));
            }
        }
        out
    }

    /// Parses, resolves `FROM` against the catalog, checks, plans, and
    /// answers an ad-hoc SQL query under `opts`. Safe from any number of
    /// threads; learning serializes only within the addressed table.
    pub fn query(&self, sql: &str, opts: &QueryOptions) -> Result<QueryOutcome> {
        let t0 = Instant::now();
        let query = parse_query(sql)?;
        let shard = self.shard(&query.from)?;
        // Pinned reads are pure functions of their snapshot: they never
        // touch the store, so they must neither surface nor *consume* a
        // parked store error (the writer path is promised to see it).
        if opts.pinned_epoch.is_none() {
            shard.surface_store_error()?;
        }
        shard.obs.query_started();
        if let SupportVerdict::Unsupported(reasons) = check_query(&query, &self.inner.join_policy) {
            shard.obs.query_unsupported();
            return Ok(QueryOutcome::Unsupported(reasons));
        }
        let tracing = shard.obs.tracing();
        let parse_ns = if tracing {
            t0.elapsed().as_nanos() as u64
        } else {
            0
        };
        let plan_sw = Stopwatch::started_if(tracing);
        let (snapshot, sample, learn) = pin_snapshot(shard, opts)?;
        let engine = &snapshot.data.engines[sample];
        let plan = plan_shared_scan(&query, engine, snapshot.engine.config().nmax)?;
        let plan_ns = plan_sw.elapsed_ns();
        let mut scan = tracing.then(ScanTrace::default);
        let read = run_shared_read(
            engine,
            snapshot.engine.view(),
            &plan,
            opts.mode,
            opts.policy,
            snapshot.engine.epoch(),
            shard.scan_kernel,
            shard.parallelism,
            scan.as_mut(),
        )?;
        if engine.sample().is_paged() {
            shard.obs.record_partition_cache(&read.cache);
        }
        let absorb_sw = Stopwatch::started_if(tracing);
        if learn {
            shard.absorb_read(&read);
        }
        let absorb_ns = absorb_sw.elapsed_ns();
        let mut result = read.result;
        result.elapsed = t0.elapsed();
        if let Some(scan) = scan {
            shard.obs.record_query(
                query_trace(
                    &shard.name,
                    Some(sql),
                    false,
                    opts.mode,
                    snapshot.data_epoch(),
                    &result,
                    &scan,
                    StagePrelude {
                        parse_ns,
                        plan_ns,
                        absorb_ns,
                    },
                ),
                plan.groups_dropped,
            );
            shard.refresh_engine_gauges(&snapshot);
        }
        Ok(QueryOutcome::Answered(result))
    }

    /// Prepares a statement: parse → check → resolve → plan template run
    /// **once**. The returned handle executes repeatedly with only
    /// literal re-binding — see [`Prepared`].
    ///
    /// Unsupported statements fail here (they cannot be served), as do
    /// placeholders outside predicate-literal positions.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let query = parse_query(sql)?;
        let shard = self.shard(&query.from)?;
        if let SupportVerdict::Unsupported(reasons) = check_query(&query, &self.inner.join_policy) {
            return Err(Error::Unsupported(reasons));
        }
        let snapshot = shard.current();
        let sample_table = snapshot.data.engines[shard.fixed_sample].sample().table();
        let inner = verdict_sql::prepare_query(&query, sample_table)?;
        Ok(Prepared::new(Arc::clone(shard), inner, sql.to_owned()))
    }

    /// Ingests a row batch into `name`'s evolving table. Serialized with
    /// that table's learn path only — queries on other tables are
    /// completely unaffected.
    pub fn ingest(&self, name: &str, rows: &[Vec<Value>]) -> Result<IngestReport> {
        self.shard(name)?.ingest(rows)
    }

    /// Offline training pass (Algorithm 1) for `name`, checkpointed when
    /// persistent.
    pub fn train(&self, name: &str) -> Result<()> {
        self.shard(name)?.train()
    }

    /// Trains every table in the catalog.
    pub fn train_all(&self) -> Result<()> {
        for shard in &self.inner.shards {
            shard.train()?;
        }
        Ok(())
    }

    /// Checkpoints `name`'s learned state into a fresh store snapshot,
    /// reporting how much work the store actually did (zero for an
    /// in-memory table).
    pub fn checkpoint_table(&self, name: &str) -> Result<CheckpointReport> {
        self.shard(name)?.checkpoint()
    }

    /// Checkpoints every table; the report aggregates over all of them.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        let mut report = CheckpointReport::default();
        for shard in &self.inner.shards {
            report.absorb(&shard.checkpoint()?);
        }
        Ok(report)
    }

    /// A point-in-time snapshot of every registered metric, or `None`
    /// when the database was built without a
    /// [`DatabaseBuilder::metrics`] hub. Render it with
    /// [`verdict_obs::MetricsSnapshot::to_text`] (Prometheus-style) or
    /// [`verdict_obs::MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.metrics.as_ref().map(|hub| hub.snapshot())
    }

    /// The shared bounded query log, when one was configured via
    /// [`DatabaseBuilder::query_log`]. All tables feed the same ring.
    pub fn query_log(&self) -> Option<&Arc<QueryLog>> {
        self.inner.query_log.as_ref()
    }

    /// The most recent `n` query traces, newest first (empty without a
    /// configured query log).
    pub fn recent_queries(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        self.inner
            .query_log
            .as_ref()
            .map(|log| log.recent(n))
            .unwrap_or_default()
    }
}

/// Picks the snapshot a query runs against: the caller's pinned pair
/// (fixed sample, learning skipped — a pinned read is a pure function of
/// the snapshot) or the shard's current one (rotation advances, learning
/// on).
pub(crate) fn pin_snapshot(
    shard: &Shard,
    opts: &QueryOptions,
) -> Result<(SessionSnapshot, usize, bool)> {
    match &opts.pinned_epoch {
        Some(snapshot) => {
            if *snapshot.table_name != *shard.name {
                return Err(Error::Catalog(CatalogError::SnapshotTableMismatch {
                    snapshot: snapshot.table_name().to_owned(),
                    query: shard.name.to_string(),
                }));
            }
            Ok((snapshot.clone(), shard.fixed_sample, false))
        }
        None => {
            let snapshot = shard.current();
            let sample = shard.pick_sample();
            Ok((snapshot, sample, true))
        }
    }
}

/// Rebuilds one table's shard from its recovered store: redraw the
/// original sample from the original row prefix (same seed →
/// bit-identical draw), re-admit any ingested tail deterministically, and
/// restore the learned state. Mirrors [`crate::SessionBuilder::open`] +
/// `build`, per table.
fn shard_from_recovered(
    name: &str,
    store: SynopsisStore,
    recovered: Recovered,
    opts: &OpenOptions,
) -> Result<Arc<Shard>> {
    let meta = recovered.meta.clone();
    let dir = store.dir().to_path_buf();
    // Out-of-core table: no rows to redraw from — rebuild the identical
    // partition map and demand-paged engines from the recovered paged
    // state (segments re-derive from the same frozen per-partition draw).
    let (table, engines, paged) = match recovered.paged {
        Some(pr) => {
            let total_rows = pr.total_rows_at_snapshot
                + pr.replayed_batches
                    .iter()
                    .map(|b| b.num_rows() as u64)
                    .sum::<u64>();
            let runtime = PagedRuntime {
                map: Arc::new(RwLock::new(pr.map)),
                store: Arc::new(PartitionStore::new(opts.memory_budget.unwrap_or(u64::MAX))),
                original_part_rows: pr.original_part_rows,
                total_rows,
            };
            let engines = build_paged_engines(
                &dir,
                &runtime,
                &pr.resolution,
                pr.total_rows_at_snapshot,
                pr.tails,
                &pr.replayed_batches,
                meta.sample_fraction,
                meta.batch_size as usize,
                meta.seed,
                &opts.cost,
                opts.tier,
            )?;
            (pr.resolution, engines, Some(runtime))
        }
        None => {
            let engines = draw_engines(
                &recovered.table,
                meta.original_rows as usize,
                meta.sample_fraction,
                meta.batch_size as usize,
                meta.seed,
                meta.num_samples as usize,
                &opts.cost,
                opts.tier,
                None,
            )?;
            (recovered.table, engines, None)
        }
    };
    // Reuse the *persisted* schema: deriving it from the recovered table
    // would pick up bounds widened by ingested rows and spuriously reject
    // the stored state as schema-mismatched.
    let schema = recovered.state.schema.clone();
    let mut verdict = Verdict::new(schema, meta.config.clone());
    verdict
        .restore_state(recovered.state)
        .map_err(Error::Core)?;
    verdict.set_data_epoch(recovered.data_epoch);
    let shared = SharedStore::new(store);
    verdict.set_observer(shared.observer());
    Ok(Shard::new(
        name,
        table,
        engines,
        0,
        opts.rotation,
        verdict,
        Some(shared),
        meta,
        Some(recovered.report),
        TableObs::new(opts.metrics.clone(), opts.query_log.clone(), name),
        opts.scan_kernel,
        opts.parallelism,
        None,
        paged,
    ))
}

// Compile-time proof of the headline property: a database handle crosses
// threads, and so does a pinned snapshot pair.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<SessionSnapshot>();
};
