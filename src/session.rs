//! End-to-end query sessions: SQL in, improved answers out.
//!
//! A [`VerdictSession`] owns the base table, a uniform sample served by an
//! online-aggregation AQP engine (`NoLearn`), and a [`verdict_core::Verdict`]
//! inference engine. [`VerdictSession::execute`] implements the paper's
//! runtime dataflow (Figure 2 / Algorithm 2) as a **shared scan**: every
//! snippet of a query is answered from the *same* single pass over the
//! sample. The dataflow is `ScanPlan → SharedScanDriver → improve_batch`:
//!
//! 1. parse and type-check the query (§2.2);
//! 2. enumerate the groups present in the sample's answer set in one pass
//!    ([`verdict_storage::distinct_group_keys`], §2.3) and plan the scan
//!    ([`verdict_sql::plan_scan`]): the decomposition of Figure 3 with its
//!    primitive streams deduplicated — `SUM` and `COUNT` share one
//!    `FREQ(*)` stream, `SUM` and `AVG` share one `AVG(e)` stream — and
//!    groups capped at `N_max`;
//! 3. drive one batch cursor over the sample
//!    ([`verdict_aqp::SharedScanDriver`]): each batch evaluates the base
//!    predicate as a selection bitmap, routes every matching row to its
//!    group's accumulators, and refines all `groups × aggregates` cells at
//!    once — scan work is independent of the number of cells, where the
//!    per-snippet pipeline rescanned the sample `O(G × A)` times;
//! 4. after each batch, improve the live cells' raw answers with the
//!    learned models in one [`verdict_core::Verdict::improve_batch`] call
//!    and *freeze* each cell as soon as it meets the [`StopPolicy`]; the
//!    scan stops when every cell is frozen (this is where Verdict's
//!    speedup comes from: the target error is reached after fewer
//!    batches);
//! 5. record the frozen raw answers into the query synopsis, in the same
//!    per-snippet order the paper's Algorithm 2 produces.
//!
//! `Mode::NoLearn` bypasses step 4's inference, giving the paper's
//! baseline within the identical pipeline. The pre-shared-scan executor
//! survives as [`VerdictSession::execute_legacy`] — the reference
//! implementation the parity test suite holds `execute` against, cell for
//! cell and bit for bit.
//!
//! ## Read path vs. learn path
//!
//! The pipeline above is split into a pure **read path** and a serialized
//! **learn path**. The read path (`run_shared_read`) answers every cell
//! from immutable state — an engine's sample with a per-query scan
//! cursor, plus a [`verdict_core::EngineView`] of the learned state — and
//! *returns* what the query learned (raw snippet observations for the
//! synopsis, inference counters) instead of writing it anywhere. The
//! learn path absorbs those observations: synopsis append, WAL append on
//! persistent sessions, epoch bump.
//!
//! [`VerdictSession`] is the **serial** convenience wrapper: `&mut self`
//! trivially serializes both paths, and its learn path applies
//! observations immediately after each query. None of its methods are
//! callable concurrently — in particular [`VerdictSession::verdict_mut`]
//! hands out direct mutable engine access and exists *only* on this
//! serial wrapper. [`crate::ConcurrentSession`] drives the same
//! planner→scan→infer core from any number of threads against published
//! [`verdict_core::EngineSnapshot`]s, funneling the learn path through
//! one writer mutex; see [`crate::concurrent`] for the dataflow and
//! which operations are concurrent-safe.
//!
//! ## The ingest path (evolving tables)
//!
//! Alongside read / learn / train sits the engine's fourth pipeline
//! stage: [`VerdictSession::ingest`] appends a row batch to the base
//! table, admits it into every maintained sample at the correct
//! inclusion probability, WAL-logs rows + adjustments on persistent
//! sessions, and widens every stored snippet per Appendix D's Lemma 3 so
//! old answers stay usable with honest error bounds until the next
//! retrain (`cargo run --release --example ingest`).

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use verdict_aqp::{
    parallel_scan, AqpEngine, AqpError, CostModel, OnlineAggregation, PagedRep, Sample, ScanDriver,
    ScanKernel, ScanSpec, SegmentLoader, StorageTier,
};
use verdict_core::{
    AggKey, EngineStats, EngineView, ImprovedAnswer, IngestBounds, Observation, Region, SchemaInfo,
    Snippet, Verdict, VerdictConfig,
};
use verdict_obs::{
    MetricsHub, MetricsSnapshot, QueryLog, QueryTrace, ScanTrace, StageTimings, Stopwatch,
};
use verdict_sql::checker::JoinPolicy;
use verdict_sql::{
    check_query, parse_query, plan_scan, Combiner, Query, ScanPlan, SupportVerdict,
    UnsupportedReason,
};
#[cfg(feature = "legacy-executor")]
use verdict_sql::{decompose, SnippetSpec};
use verdict_storage::{
    distinct_group_keys, AggregateFn, CacheCounters, ColumnSummary, Expr, GroupKey, PartitionMap,
    PartitionSpec, PartitionStore, Predicate, StorageError, Table, Value,
};
use verdict_store::{
    read_part_rows, PagedRecovered, PagedState, RecoveryReport, SessionMeta, SharedStore,
    StorePolicy, SynopsisStore,
};

use crate::metrics::{CheckpointReport, TableObs};
use crate::{Error, Result};

/// What one [`VerdictSession::ingest`] (or
/// [`crate::ConcurrentSession::ingest`]) call did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Rows appended to the base table.
    pub appended_rows: usize,
    /// Rows admitted into each maintained sample (index = sample index).
    pub admitted_rows: Vec<usize>,
    /// Aggregates whose synopses were adjusted (Lemma 3).
    pub adjusted_keys: usize,
    /// Stored snippets rewritten across all adjusted synopses. Zero is
    /// meaningful: the append predates any learning.
    pub adjusted_snippets: usize,
    /// Aggregates whose synopses could **not** be adjusted because their
    /// expression cannot be re-evaluated over the new data (e.g. a
    /// non-numeric or vanished column). Their stored answers are now
    /// stale-without-widening; retrain or
    /// [`VerdictSession::apply_append`] them manually.
    pub skipped_keys: Vec<AggKey>,
    /// The engine's data epoch after this batch.
    pub data_epoch: u64,
    /// Wall-clock for the whole ingest call (validation → commit).
    pub elapsed: Duration,
    /// Wall-clock spent staging the synopsis rewrites and model refits
    /// (step 3 below) — the learn-side share of `elapsed`.
    pub refit_elapsed: Duration,
    /// WAL bytes this batch appended (0 on a non-persistent session).
    /// Measured by the store itself ([`verdict_store::StoreStats`]), not
    /// by a second clock here.
    pub wal_bytes: u64,
    /// Total Lemma-3 widening applied: `Σ(|µ_k| + η_k)` over the batch's
    /// adjustments, in aggregate value units. `0.0` means the append
    /// predates any learning (nothing to widen).
    pub widening_magnitude: f64,
}

/// How a multi-sample session picks the offline sample each query scans.
///
/// The paper's engine "creates random samples of the original tables
/// offline"; rotating across them keeps the sampling errors of different
/// snippets independent — the `β_i ⊥ β_j` assumption behind Eq. (6). With
/// `Fixed`, queries keep scanning the currently active sample until
/// [`VerdictSession::set_active_sample`] changes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleRotation {
    /// Keep scanning the active sample (manual control; default).
    Fixed,
    /// Advance to the next sample after every answered query.
    RoundRobin,
}

/// Whether inference improves answers (`Verdict`) or not (`NoLearn`).
///
/// Non-exhaustive: future engine generations may add modes, so downstream
/// matches must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Mode {
    /// Baseline: raw AQP answers only.
    NoLearn,
    /// Full pipeline: inference + validation + synopsis recording.
    Verdict,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Mode::NoLearn => "no-learn",
            Mode::Verdict => "verdict",
        })
    }
}

/// When to stop scanning sample batches for a snippet.
///
/// Non-exhaustive: new stop policies may be added, so downstream matches
/// must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StopPolicy {
    /// Scan the entire sample (most accurate raw answer).
    ScanAll,
    /// Stop as soon as the *reported* relative error bound (at confidence
    /// `delta`) drops to `target` — e.g. `target = 0.025` for the paper's
    /// "2.5% error bound" rows in Table 4.
    RelativeErrorBound {
        /// Target relative half-width of the confidence interval.
        target: f64,
        /// Confidence level of the bound.
        delta: f64,
    },
    /// Scan at most this many sample tuples.
    TupleBudget(usize),
    /// Scan whatever fits in this simulated time budget (time-bound
    /// engines, §7 / Appendix C.2).
    TimeBudgetNs(f64),
}

impl std::fmt::Display for StopPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopPolicy::ScanAll => f.write_str("scan-all"),
            StopPolicy::RelativeErrorBound { target, delta } => {
                write!(f, "rel-err(target={target}, delta={delta})")
            }
            StopPolicy::TupleBudget(n) => write!(f, "tuples({n})"),
            StopPolicy::TimeBudgetNs(ns) => write!(f, "time({ns}ns)"),
        }
    }
}

/// One aggregate cell of the result set.
#[derive(Debug, Clone, Copy)]
pub struct CellAnswer {
    /// The answer returned to the user (improved under `Mode::Verdict`,
    /// raw under `Mode::NoLearn`).
    pub improved: ImprovedAnswer,
    /// The raw AQP answer at stop time.
    pub raw_answer: f64,
    /// The raw AQP error at stop time.
    pub raw_error: f64,
    /// Sample tuples scanned for this cell.
    pub tuples_scanned: usize,
}

/// One result row (one group).
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Group key (`None` for ungrouped queries).
    pub group: Option<GroupKey>,
    /// One cell per aggregate in select-list order.
    pub values: Vec<CellAnswer>,
}

/// A fully answered query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result rows.
    pub rows: Vec<ResultRow>,
    /// Sample tuples visited by the query's one shared scan. Every cell
    /// is answered from this single pass, so this is the query's real
    /// scan work, not a `max` over per-cell scans.
    pub tuples_scanned: usize,
    /// Simulated wall-clock for the query under the session's cost model.
    pub simulated_ns: f64,
    /// Whether the `N_max` cap dropped groups.
    pub truncated: bool,
    /// Epoch of the learned state this query read (see
    /// [`verdict_core::EngineSnapshot`]): on a serial session, the
    /// engine's epoch when the read began; on a
    /// [`crate::ConcurrentSession`], the epoch of the published snapshot
    /// that answered every cell.
    pub epoch: u64,
    /// Real wall-clock for the query, measured the same way on the
    /// serial, concurrent, and prepared paths (entry to answer). Always
    /// populated — callers don't need a metrics hub for basic timing.
    pub elapsed: Duration,
}

/// Outcome of `execute`: answered, or classified unsupported.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The query was supported and answered.
    Answered(QueryResult),
    /// The query is outside Verdict's supported class; the paper forwards
    /// such queries to the AQP engine untouched (this reproduction's
    /// storage layer cannot evaluate `LIKE`/`OR` predicates, so only the
    /// classification is materialized).
    Unsupported(Vec<UnsupportedReason>),
}

impl QueryOutcome {
    /// The result, panicking if unsupported (test convenience).
    pub fn unwrap_answered(self) -> QueryResult {
        match self {
            QueryOutcome::Answered(r) => r,
            QueryOutcome::Unsupported(r) => panic!("query unsupported: {r:?}"),
        }
    }

    /// Whether the query was answered.
    pub fn is_answered(&self) -> bool {
        matches!(self, QueryOutcome::Answered(_))
    }
}

/// Builder for [`VerdictSession`].
pub struct SessionBuilder {
    table: Table,
    sample_fraction: f64,
    batch_size: usize,
    seed: u64,
    tier: StorageTier,
    cost: CostModel,
    config: VerdictConfig,
    join_policy: JoinPolicy,
    num_samples: usize,
    rotation: SampleRotation,
    persist: Option<PathBuf>,
    store_policy: StorePolicy,
    recovered: Option<RecoveredState>,
    metrics: Option<Arc<MetricsHub>>,
    query_log: Option<Arc<QueryLog>>,
    scan_kernel: ScanKernel,
    partition: Option<PartitionSpec>,
    parallelism: usize,
    memory_budget: Option<u64>,
}

/// Worker threads a builder defaults to: all available cores (1 when the
/// host cannot report its core count).
pub(crate) fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// What [`SessionBuilder::open`] carried out of recovery, held until
/// `build()` wires it into the session.
struct RecoveredState {
    store: SharedStore,
    state: verdict_core::EngineState,
    report: RecoveryReport,
    /// The metadata the store was opened with, kept to detect builder
    /// overrides that would desynchronize the redrawn sample from the
    /// recovered synopsis.
    meta: SessionMeta,
    /// Ingested batches the recovered state has folded (snapshot +
    /// replayed WAL ingest records).
    data_epoch: u64,
    /// Out-of-core recovery state, present exactly when the opened store
    /// is paged: partition map, resolution dictionaries, per-sample
    /// ingest tails, and the WAL batches to re-admit.
    paged: Option<PagedRecovered>,
}

impl SessionBuilder {
    /// Starts a builder over the base table.
    pub fn new(table: Table) -> Self {
        SessionBuilder {
            table,
            sample_fraction: 0.1,
            batch_size: 1000,
            seed: 0,
            tier: StorageTier::Cached,
            cost: CostModel::default(),
            config: VerdictConfig::default(),
            join_policy: JoinPolicy::none(),
            num_samples: 1,
            rotation: SampleRotation::Fixed,
            persist: None,
            store_policy: StorePolicy::default(),
            recovered: None,
            metrics: None,
            query_log: None,
            scan_kernel: ScanKernel::default(),
            partition: None,
            parallelism: default_parallelism(),
            memory_budget: None,
        }
    }

    /// Warm-starts a builder from a durable synopsis store previously
    /// created with [`SessionBuilder::persist_to`].
    ///
    /// Recovery loads the newest valid snapshot (base table, session
    /// parameters, synopses, trained models), truncates any torn tail off
    /// the snippet log, and replays surviving records. The resulting
    /// session answers its very first query with the error bounds the
    /// previous session had earned — the cold-start problem the paper's
    /// "smarter every time" promise otherwise hits at every restart.
    ///
    /// Storage tier and cost model are not persisted; set them on the
    /// returned builder if they matter.
    pub fn open(path: impl AsRef<Path>) -> Result<SessionBuilder> {
        let path = path.as_ref();
        let (store, recovered) =
            SynopsisStore::open(path, StorePolicy::default()).map_err(Error::Store)?;
        let meta = recovered.meta;
        Ok(SessionBuilder {
            table: recovered.table,
            sample_fraction: meta.sample_fraction,
            batch_size: meta.batch_size as usize,
            seed: meta.seed,
            tier: StorageTier::Cached,
            cost: CostModel::default(),
            config: meta.config.clone(),
            join_policy: JoinPolicy::none(),
            num_samples: meta.num_samples as usize,
            rotation: SampleRotation::Fixed,
            persist: Some(path.to_path_buf()),
            store_policy: StorePolicy::default(),
            metrics: None,
            query_log: None,
            scan_kernel: ScanKernel::default(),
            partition: None,
            parallelism: default_parallelism(),
            memory_budget: None,
            recovered: Some(RecoveredState {
                store: SharedStore::new(store),
                state: recovered.state,
                report: recovered.report,
                meta,
                data_epoch: recovered.data_epoch,
                paged: recovered.paged,
            }),
        })
    }

    /// Attaches a durable synopsis store at `path` (created on build).
    ///
    /// Every snippet the session observes is appended to the store's
    /// write-ahead log; [`VerdictSession::train`] and the compaction
    /// policy checkpoint the full state. Fails at build time if a store
    /// already exists at `path` — reopen with [`SessionBuilder::open`].
    pub fn persist_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist = Some(path.into());
        self
    }

    /// Overrides the store's compaction/durability policy.
    pub fn store_policy(mut self, policy: StorePolicy) -> Self {
        self.store_policy = policy;
        self
    }

    /// Attaches a metrics hub: the session registers its per-table
    /// series on it at build time and updates them lock-free from then
    /// on. Without a hub (the default) the metrics path is a true no-op
    /// — no atomics touched, no stage clocks read.
    pub fn metrics(mut self, hub: Arc<MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// Attaches a bounded in-memory query log: every answered query
    /// pushes a [`verdict_obs::QueryTrace`] into a ring holding the most
    /// recent `capacity` traces (oldest evicted). Off by default.
    pub fn query_log(mut self, capacity: usize) -> Self {
        self.query_log = Some(Arc::new(QueryLog::new(capacity)));
        self
    }

    /// Scan execution kernel (default [`ScanKernel::Chunked`]): the
    /// chunked kernel evaluates predicates as branch-free bitmap fills
    /// over 1024-row chunks and prunes chunks via zone maps; the row-wise
    /// kernel is the reference path. Both are bit-identical.
    pub fn scan_kernel(mut self, kernel: ScanKernel) -> Self {
        self.scan_kernel = kernel;
        self
    }

    /// Partitions every maintained sample horizontally by `spec` (range
    /// or hash on one column, [`verdict_storage::PartitionSpec`]). Each
    /// partition carries a min/max + code-set summary, so a query whose
    /// predicate is provably disjoint from a partition skips all of its
    /// batches without touching a chunk, and ingest widens only the
    /// synopses of regions the touched partitions can overlap
    /// (partition-aware Lemma 3).
    ///
    /// Combined with [`SessionBuilder::persist_to`], the session becomes
    /// **out-of-core**: the base table is split into one columnar
    /// `part-<id>.vcol` file per partition, the spec is persisted in the
    /// session metadata, and every sample is served demand-paged through
    /// a [`verdict_storage::PartitionStore`] buffer manager under the
    /// [`SessionBuilder::memory_budget`]. A warm start
    /// ([`SessionBuilder::open`]) rebuilds the identical partition map
    /// and sample draw from the manifest — do not also call
    /// `partition_by` on an opened builder; the spec comes from the
    /// store.
    pub fn partition_by(mut self, spec: PartitionSpec) -> Self {
        self.partition = Some(spec);
        self
    }

    /// Byte budget for resident (cached) sample segments of an
    /// out-of-core session — the [`verdict_storage::PartitionStore`]
    /// evicts least-recently-used unpinned segments down to this bound.
    /// Answers are bit-identical at any budget ≥ one partition; only
    /// fault traffic changes. Unlimited when unset. `build()` refuses
    /// the knob on sessions that are not out-of-core
    /// (`partition_by` + `persist_to`, or `open` of a paged store).
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Worker threads for one query's shared scan (default: all
    /// available cores). The scan is morsel-driven with work stealing;
    /// partials merge in deterministic batch order, so answers, error
    /// bounds, and synopsis bytes are bit-identical at every setting —
    /// `parallelism(1)` runs the scan inline with zero scheduler
    /// overhead.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Sampling fraction for the offline uniform sample (default 10%).
    pub fn sample_fraction(mut self, f: f64) -> Self {
        self.sample_fraction = f;
        self
    }

    /// Batch size in sample rows (default 1000).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// RNG seed for sample drawing.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Storage tier for the cost model (default cached).
    pub fn tier(mut self, t: StorageTier) -> Self {
        self.tier = t;
        self
    }

    /// Cost model override.
    pub fn cost_model(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Verdict engine configuration override.
    pub fn verdict_config(mut self, c: VerdictConfig) -> Self {
        self.config = c;
        self
    }

    /// Foreign-key join policy for the checker.
    pub fn join_policy(mut self, p: JoinPolicy) -> Self {
        self.join_policy = p;
        self
    }

    /// Number of independent offline samples (default 1). The paper's
    /// engine "creates random samples of the original tables offline"; with
    /// several samples rotated across queries, the sampling errors of
    /// different snippets are independent — exactly the `β_i ⊥ β_j`
    /// assumption behind Eq. (6). A single shared sample correlates
    /// errors across the synopsis and makes conditioning overconfident.
    pub fn num_samples(mut self, k: usize) -> Self {
        self.num_samples = k.max(1);
        self
    }

    /// Automatic sample rotation across queries (default
    /// [`SampleRotation::Fixed`]). With [`SampleRotation::RoundRobin`] a
    /// multi-sample session advances its active sample after every
    /// answered query, so the independent-error property of Eq. (6)
    /// arrives without manual [`VerdictSession::set_active_sample`] calls.
    pub fn sample_rotation(mut self, rotation: SampleRotation) -> Self {
        self.rotation = rotation;
        self
    }

    /// Builds the session: draws the sample and derives the dimension
    /// universe from the base table. With persistence configured, also
    /// creates the store (fresh build) or restores the learned state and
    /// installs the append hook (warm start).
    pub fn build(self) -> Result<VerdictSession> {
        // On a warm start the recovered table may have grown through
        // ingested batches. The offline sample is rebuilt exactly as the
        // live sessions maintained it: draw the *original* sample from
        // the original row prefix (same seed → bit-identical draw), then
        // re-admit the appended tail through the same deterministic
        // per-row admission the ingest path used.
        let original_rows = match &self.recovered {
            Some(r) => r.meta.original_rows as usize,
            None => self.table.num_rows(),
        };
        // An opened store already knows its partition spec (and whether
        // it is paged); a second spec from the builder could silently
        // disagree with the files on disk — refuse.
        if self.partition.is_some() && self.recovered.is_some() {
            return Err(Error::Aqp(AqpError::InvalidConfig(
                "partition_by cannot be combined with open(): a persisted session's \
                 partition spec comes from the store's manifest"
                    .into(),
            )));
        }
        // `partition_by` + `persist_to` on a fresh build = out-of-core:
        // partitions become columnar files, samples are demand-paged.
        let paged_create = self.partition.is_some() && self.persist.is_some();
        let paged_open = self.recovered.as_ref().is_some_and(|r| r.meta.paged);
        if self.memory_budget.is_some() && !(paged_create || paged_open) {
            return Err(Error::Aqp(AqpError::InvalidConfig(
                "memory_budget only applies to out-of-core sessions \
                 (partition_by + persist_to, or open() of a paged store)"
                    .into(),
            )));
        }
        let budget = self.memory_budget.unwrap_or(u64::MAX);
        let partitions = match &self.partition {
            // A paged session's routing map lives inside the runtime
            // (shared with every sample), not in this resident-side slot.
            Some(spec) if !paged_create => {
                Some(PartitionMap::build(&self.table, spec.clone()).map_err(Error::Storage)?)
            }
            _ => None,
        };
        let mut engines = if paged_create || paged_open {
            Vec::new() // built below, once the partition files exist
        } else {
            draw_engines(
                &self.table,
                original_rows,
                self.sample_fraction,
                self.batch_size,
                self.seed,
                self.num_samples,
                &self.cost,
                self.tier,
                self.partition.as_ref(),
            )?
        };
        // The dimension universe is fixed at session creation. A warm
        // start must reuse the *persisted* schema: deriving it from the
        // recovered table would pick up bounds widened by ingested rows
        // and spuriously reject the stored state as schema-mismatched.
        let schema = match &self.recovered {
            Some(r) => r.state.schema.clone(),
            None => SchemaInfo::from_table(&self.table)?,
        };
        let meta = SessionMeta {
            sample_fraction: self.sample_fraction,
            batch_size: self.batch_size as u64,
            seed: self.seed,
            num_samples: self.num_samples as u64,
            original_rows: original_rows as u64,
            config: self.config.clone(),
            partition_spec: match &self.recovered {
                Some(r) => r.meta.partition_spec.clone(),
                None if paged_create => self.partition.clone(),
                None => None,
            },
            paged: paged_create || paged_open,
        };
        let mut verdict = Verdict::new(schema, self.config);

        let mut paged_runtime: Option<PagedRuntime> = None;
        // For an out-of-core session this becomes the zero-row resolution
        // table (schema + dictionaries); the base rows live on disk.
        let mut resolution_table: Option<Table> = None;
        let (store, recovery) = match (self.recovered, &self.persist) {
            (
                Some(RecoveredState {
                    store,
                    state,
                    report,
                    meta: opened_meta,
                    data_epoch,
                    paged,
                }),
                persist,
            ) => {
                // Warm start: the snapshot's learned state replaces the
                // blank engine, then new observations keep flowing to the
                // same log.
                //
                // Sample identity is load-bearing: the recovered synopsis
                // holds raw answers drawn from the sample the persisted
                // parameters describe. Overriding seed / fraction / batch
                // size / sample count after open() would silently redraw a
                // different sample and rewrite the stored meta — refuse.
                if meta.sample_fraction != opened_meta.sample_fraction
                    || meta.batch_size != opened_meta.batch_size
                    || meta.seed != opened_meta.seed
                    || meta.num_samples != opened_meta.num_samples
                {
                    return Err(Error::Store(verdict_store::StoreError::Mismatch(
                        "sample parameters (seed, sample_fraction, batch_size, num_samples) \
                         cannot be overridden on a warm-started session: the persisted \
                         synopsis was observed through the stored sample"
                            .into(),
                    )));
                }
                // The engine config is equally load-bearing: WAL replay
                // applies records under the *stored* config (synopsis
                // capacity drives eviction), so a divergent live config
                // would make post-crash recovery disagree with the live
                // session.
                if meta.config != opened_meta.config {
                    return Err(Error::Store(verdict_store::StoreError::Mismatch(
                        "verdict_config cannot be overridden on a warm-started session: \
                         log replay applies records under the stored configuration"
                            .into(),
                    )));
                }
                {
                    let mut guard = store.lock();
                    // A persist_to() after open() would silently split the
                    // session from its recovered store — refuse instead.
                    if persist.as_deref().is_some_and(|p| p != guard.dir()) {
                        return Err(Error::Store(verdict_store::StoreError::Mismatch(format!(
                            "session was opened from {} but persist_to names {}; \
                                 a warm-started session always writes to its own store",
                            guard.dir().display(),
                            persist.as_deref().unwrap_or(Path::new("?")).display()
                        ))));
                    }
                    // Apply any store_policy() override made after open().
                    guard.set_policy(self.store_policy.clone());
                }
                verdict.restore_state(state).map_err(Error::Core)?;
                verdict.set_data_epoch(data_epoch);
                if let Some(pr) = paged {
                    // Warm start of an out-of-core session: rebuild the
                    // runtime from the manifest (identical map, identical
                    // draw), seed each sample with its snapshot tail, then
                    // re-admit the replayed WAL batches exactly as the
                    // live session did.
                    let dir = store.lock().dir().to_path_buf();
                    let total_rows = pr.total_rows_at_snapshot
                        + pr.replayed_batches
                            .iter()
                            .map(|b| b.num_rows() as u64)
                            .sum::<u64>();
                    let runtime = PagedRuntime {
                        map: Arc::new(RwLock::new(pr.map)),
                        store: Arc::new(PartitionStore::new(budget)),
                        original_part_rows: pr.original_part_rows,
                        total_rows,
                    };
                    engines = build_paged_engines(
                        &dir,
                        &runtime,
                        &pr.resolution,
                        pr.total_rows_at_snapshot,
                        pr.tails,
                        &pr.replayed_batches,
                        self.sample_fraction,
                        self.batch_size,
                        self.seed,
                        &self.cost,
                        self.tier,
                    )?;
                    resolution_table = Some(pr.resolution);
                    paged_runtime = Some(runtime);
                }
                (Some(store), Some(report))
            }
            (None, Some(path)) => {
                if paged_create {
                    let (store, paged_state) = SynopsisStore::create_paged(
                        path,
                        self.store_policy,
                        meta.clone(),
                        &self.table,
                        &verdict.export_state(),
                    )
                    .map_err(Error::Store)?;
                    let dir = store.dir().to_path_buf();
                    let runtime = PagedRuntime {
                        map: Arc::new(RwLock::new(paged_state.map)),
                        store: Arc::new(PartitionStore::new(budget)),
                        original_part_rows: paged_state.original_part_rows,
                        total_rows: paged_state.total_rows,
                    };
                    // The session keeps only the zero-row resolution
                    // table resident; the base rows stay in their
                    // partition files from here on.
                    engines = build_paged_engines(
                        &dir,
                        &runtime,
                        &paged_state.resolution,
                        runtime.total_rows,
                        paged_state.tails,
                        &[],
                        self.sample_fraction,
                        self.batch_size,
                        self.seed,
                        &self.cost,
                        self.tier,
                    )?;
                    resolution_table = Some(paged_state.resolution);
                    paged_runtime = Some(runtime);
                    (Some(SharedStore::new(store)), None)
                } else {
                    let store = SynopsisStore::create(
                        path,
                        self.store_policy,
                        meta.clone(),
                        &self.table,
                        &verdict.export_state(),
                    )
                    .map_err(Error::Store)?;
                    (Some(SharedStore::new(store)), None)
                }
            }
            (None, None) => (None, None),
        };
        if let Some(store) = &store {
            verdict.set_observer(store.observer());
        }
        // The serial session serves its one anonymous table as `t`
        // (matching the `FROM t` its queries use), so its series carry
        // that label.
        let obs = TableObs::new(self.metrics, self.query_log, "t");
        Ok(VerdictSession {
            table: resolution_table.unwrap_or(self.table),
            engines,
            active: 0,
            rotation: self.rotation,
            verdict,
            join_policy: self.join_policy,
            store,
            meta,
            recovery,
            obs,
            scan_kernel: self.scan_kernel,
            partitions,
            parallelism: self.parallelism,
            paged: paged_runtime,
        })
    }

    /// Builds a [`crate::ConcurrentSession`] directly — shorthand for
    /// `build()?.into_concurrent()`.
    pub fn build_concurrent(self) -> Result<crate::ConcurrentSession> {
        Ok(self.build()?.into_concurrent())
    }
}

/// A live session over one (denormalized) table.
pub struct VerdictSession {
    table: Table,
    engines: Vec<OnlineAggregation>,
    active: usize,
    rotation: SampleRotation,
    verdict: Verdict,
    join_policy: JoinPolicy,
    store: Option<SharedStore>,
    meta: SessionMeta,
    recovery: Option<RecoveryReport>,
    obs: TableObs,
    scan_kernel: ScanKernel,
    /// Base-table partition map (summaries over the *base* rows): routes
    /// ingested batches and bounds the partition-aware Lemma-3 widening.
    /// The per-sample maps pruning reads live inside each [`Sample`].
    partitions: Option<PartitionMap>,
    parallelism: usize,
    /// Out-of-core runtime (paged sessions only): the shared partition
    /// map, the segment buffer manager, and the evolving row count. For
    /// a paged session `table` above is the zero-row resolution table.
    paged: Option<PagedRuntime>,
}

/// The shared out-of-core machinery of a paged session: every sample's
/// [`PagedRep`] holds `Arc`s of the same map and buffer manager, so
/// ingest-time map extension is visible to later scans and all samples
/// compete under one byte budget.
pub(crate) struct PagedRuntime {
    /// Routing + per-partition summaries over the whole base table
    /// (create rows + every ingest). `RwLock`: scans read, ingest writes.
    pub(crate) map: Arc<RwLock<PartitionMap>>,
    /// Buffer manager caching derived sample segments under the budget.
    pub(crate) store: Arc<PartitionStore>,
    /// Create-time rows per partition — the frozen sample-draw domain.
    pub(crate) original_part_rows: Vec<u64>,
    /// Base-table rows (create + ingested): what `exact()` normalizes by
    /// and where the next ingest's global row indices start.
    pub(crate) total_rows: u64,
}

/// Per-sample draw seed of an out-of-core session: FNV-1a over the
/// session seed and the sample index. The segment shuffle seed inside
/// [`PagedRep`] mixes only `(draw_seed, partition)`, so without this
/// outer mix every sample of a multi-sample session would draw identical
/// segments — correlated errors, exactly what multiple samples exist to
/// avoid.
pub(crate) fn paged_draw_seed(seed: u64, sample_index: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [seed, sample_index] {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Builds the demand-paged engines of an out-of-core session — shared by
/// fresh create, warm open, and the [`crate::Database`] open path. The
/// loader faults a partition's base rows from its `part-<id>.vcol` file,
/// decoding against the resolution prototype (a dictionary superset of
/// every create-time fragment) and stopping at the create-time row count
/// so ingested appends never enter the draw. `tails` seeds each sample's
/// resident ingest tail (zero-row at create, the snapshot's tail on a
/// warm open) with `base_rows` the row count that tail state corresponds
/// to; `replayed` WAL batches are then re-admitted in order, exactly as
/// the live session absorbed them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_paged_engines(
    dir: &Path,
    runtime: &PagedRuntime,
    resolution: &Table,
    base_rows: u64,
    tails: Vec<Table>,
    replayed: &[Table],
    sample_fraction: f64,
    batch_size: usize,
    seed: u64,
    cost: &CostModel,
    tier: StorageTier,
) -> Result<Vec<OnlineAggregation>> {
    let proto = resolution.clone();
    let opr = runtime.original_part_rows.clone();
    let dir = dir.to_path_buf();
    let loader: Arc<SegmentLoader> = Arc::new(move |p: u32| {
        read_part_rows(&dir, p, &proto, opr[p as usize] as usize)
            .map_err(|e| StorageError::Io(format!("partition {p}: {e}")))
    });
    let mut engines = Vec::with_capacity(tails.len());
    for (i, tail) in tails.into_iter().enumerate() {
        let rep = PagedRep::new(
            Arc::clone(&runtime.store),
            Arc::clone(&loader),
            Arc::clone(&runtime.map),
            paged_draw_seed(seed, i as u64),
            i as u32,
            sample_fraction,
            batch_size,
            runtime.original_part_rows.clone(),
            tail,
        );
        let sample =
            Sample::paged(resolution.clone(), base_rows as usize, rep).map_err(Error::Aqp)?;
        engines.push(OnlineAggregation::new(sample, cost.clone(), tier));
    }
    let mut first = base_rows;
    for batch in replayed {
        for (i, engine) in engines.iter_mut().enumerate() {
            engine
                .paged_absorb_appended(batch, first, seed, i as u64)
                .map_err(Error::Aqp)?;
        }
        first += batch.num_rows() as u64;
    }
    Ok(engines)
}

/// The pieces a [`VerdictSession`] decomposes into when it is promoted to
/// a [`crate::ConcurrentSession`] (crate-internal).
pub(crate) struct SessionParts {
    pub(crate) table: Table,
    pub(crate) engines: Vec<OnlineAggregation>,
    pub(crate) active: usize,
    pub(crate) rotation: SampleRotation,
    pub(crate) verdict: Verdict,
    pub(crate) join_policy: JoinPolicy,
    pub(crate) store: Option<SharedStore>,
    pub(crate) meta: SessionMeta,
    pub(crate) recovery: Option<RecoveryReport>,
    pub(crate) obs: TableObs,
    pub(crate) scan_kernel: ScanKernel,
    pub(crate) partitions: Option<PartitionMap>,
    pub(crate) parallelism: usize,
    pub(crate) paged: Option<PagedRuntime>,
}

impl VerdictSession {
    /// The base table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The currently active AQP engine (sample).
    pub fn engine(&self) -> &OnlineAggregation {
        &self.engines[self.active]
    }

    /// Number of independent offline samples.
    pub fn num_samples(&self) -> usize {
        self.engines.len()
    }

    /// Index of the sample the next query will scan.
    pub fn active_sample(&self) -> usize {
        self.active
    }

    /// Selects which offline sample subsequent queries scan. Rotating
    /// across queries keeps snippet errors independent (Eq. 6); see also
    /// [`SessionBuilder::sample_rotation`] for automatic rotation.
    ///
    /// An out-of-range index is an error. (Earlier versions silently
    /// wrapped with `%`, which masked caller bugs: a session built with
    /// one sample accepted any index and always scanned sample 0, so the
    /// independence the caller thought they were buying never existed.)
    pub fn set_active_sample(&mut self, index: usize) -> Result<()> {
        if index >= self.engines.len() {
            return Err(Error::Aqp(AqpError::InvalidConfig(format!(
                "sample index {index} out of range: session has {} sample(s)",
                self.engines.len()
            ))));
        }
        self.active = index;
        Ok(())
    }

    /// Promotes this session into a [`crate::ConcurrentSession`] that
    /// serves queries from any number of threads (read path) while
    /// funneling learning through one serialized writer. The current
    /// learned state becomes the first published snapshot.
    pub fn into_concurrent(self) -> crate::ConcurrentSession {
        crate::ConcurrentSession::from_parts(self.into_parts())
    }

    /// Promotes this session into a one-table [`crate::Database`] whose
    /// table is registered under `name` — the migration path from the
    /// session API to the catalog API. The current learned state becomes
    /// the table's first published snapshot; unlike the session wrappers,
    /// `FROM` then resolves *strictly* against `name`.
    pub fn into_database(self, name: &str) -> Result<crate::Database> {
        if !verdict_store::catalog::is_valid_table_name(name) {
            return Err(Error::Catalog(crate::CatalogError::InvalidTableName(
                name.to_owned(),
            )));
        }
        Ok(crate::Database::from_session_parts(
            self.into_parts(),
            name,
            false,
        ))
    }

    fn into_parts(self) -> SessionParts {
        SessionParts {
            table: self.table,
            engines: self.engines,
            active: self.active,
            rotation: self.rotation,
            verdict: self.verdict,
            join_policy: self.join_policy,
            store: self.store,
            meta: self.meta,
            recovery: self.recovery,
            obs: self.obs,
            scan_kernel: self.scan_kernel,
            partitions: self.partitions,
            parallelism: self.parallelism,
            paged: self.paged,
        }
    }

    /// The base-table partition map, when the session was built with
    /// [`SessionBuilder::partition_by`].
    pub fn partition_map(&self) -> Option<&PartitionMap> {
        self.partitions.as_ref()
    }

    /// Whether this session serves its samples out-of-core
    /// (demand-paged partition files under a memory budget).
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Cumulative partition-cache counters of an out-of-core session
    /// (`None` on a resident session): hits, misses, evictions, bytes
    /// faulted, and the resident-bytes gauge.
    pub fn partition_cache(&self) -> Option<CacheCounters> {
        self.paged.as_ref().map(|rt| rt.store.counters())
    }

    /// Worker threads one query's shared scan uses.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The inference engine.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// Mutable access to the inference engine (appends, config tweaks).
    ///
    /// **Serial-only escape hatch.** It exists on this wrapper precisely
    /// because `&mut self` serializes everything; a
    /// [`crate::ConcurrentSession`] deliberately has no equivalent —
    /// direct engine mutation would bypass the writer lock and the
    /// snapshot publish, so concurrent readers would never see it.
    ///
    /// On a persistent session, out-of-band mutations made through this
    /// handle (e.g. `Verdict::apply_append`, `forget`) bypass the snippet
    /// log — call [`VerdictSession::checkpoint`] afterwards, or use the
    /// session-level wrappers ([`VerdictSession::apply_append`]) that do
    /// it for you.
    pub fn verdict_mut(&mut self) -> &mut Verdict {
        &mut self.verdict
    }

    /// Whether this session writes to a durable store.
    pub fn is_persistent(&self) -> bool {
        self.store.is_some()
    }

    /// The recovery report, when this session was warm-started with
    /// [`SessionBuilder::open`].
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Checkpoints the full learned state into a fresh snapshot
    /// generation and truncates the snippet log, reporting what was
    /// written (duration and bytes come from the store's own receipt —
    /// the same numbers the metrics layer records). No-op without a
    /// store: the report is all zeros.
    ///
    /// Also surfaces any error a background log append or deferred
    /// compaction hit since the last checkpoint (the observer hook has no
    /// error channel of its own).
    pub fn checkpoint(&mut self) -> Result<CheckpointReport> {
        self.surface_store_error()?;
        let receipt = self.snapshot_now().map_err(Error::Store)?;
        Ok(receipt
            .as_ref()
            .map(CheckpointReport::from_receipt)
            .unwrap_or_default())
    }

    /// The one snapshot-writing path, shared by explicit checkpoints and
    /// query-piggybacked compaction (which park the error instead of
    /// propagating it). `None` without a store. Ingested batches pending
    /// in the WAL are folded into a fresh table generation here. Metric
    /// recording lives here too, so piggybacked compactions count the
    /// same way explicit checkpoints do.
    fn snapshot_now(&mut self) -> verdict_store::Result<Option<verdict_store::SnapshotReceipt>> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let schema_fp = verdict_core::persist::fingerprint(self.verdict.schema());
        let state_bytes = self.verdict.state_bytes();
        let (receipt, stats) = {
            let mut guard = store.lock();
            let receipt = match &self.paged {
                Some(rt) => {
                    // A paged snapshot carries the out-of-core state —
                    // map, resolution dictionaries, per-sample ingest
                    // tails — instead of a table generation; the base
                    // rows are already durable in their partition files.
                    let state = PagedState {
                        map: rt.map.read().expect("partition map poisoned").clone(),
                        original_part_rows: rt.original_part_rows.clone(),
                        resolution: self.table.clone(),
                        total_rows: rt.total_rows,
                        tails: self
                            .engines
                            .iter()
                            .map(|e| e.sample().paged_tail().expect("paged session").clone())
                            .collect(),
                    };
                    guard.snapshot_paged(self.meta.clone(), schema_fp, &state_bytes, &state)?
                }
                None => guard.snapshot_encoded(
                    self.meta.clone(),
                    schema_fp,
                    &state_bytes,
                    &self.table,
                )?,
            };
            (receipt, guard.stats())
        };
        self.obs
            .record_checkpoint(&CheckpointReport::from_receipt(&receipt));
        self.obs.refresh_store(stats);
        Ok(Some(receipt))
    }

    /// Surfaces any parked store error (failed background append or
    /// deferred compaction failure) without writing anything.
    fn surface_store_error(&self) -> Result<()> {
        if let Some(store) = &self.store {
            if let Some(e) = store.lock().take_error() {
                return Err(Error::Store(e));
            }
        }
        Ok(())
    }

    /// Offline training pass (Algorithm 1). Persistent sessions
    /// checkpoint afterwards, so the (expensive) trained models are on
    /// disk and a restarted session warm-starts without refitting.
    pub fn train(&mut self) -> Result<()> {
        let sw = Stopwatch::started_if(self.obs.tracing());
        self.verdict.train().map_err(Error::Core)?;
        self.obs.record_train(Duration::from_nanos(sw.elapsed_ns()));
        self.checkpoint()?;
        Ok(())
    }

    /// A snapshot of every metric series this session's hub holds, or
    /// `None` when the session was built without
    /// [`SessionBuilder::metrics`]. Render with
    /// [`verdict_obs::MetricsSnapshot::to_text`] /
    /// [`verdict_obs::MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.obs.hub().map(|h| h.snapshot())
    }

    /// The query log, when one was attached with
    /// [`SessionBuilder::query_log`].
    pub fn query_log(&self) -> Option<&Arc<QueryLog>> {
        self.obs.log()
    }

    /// The `n` most recent query traces, newest first (empty without a
    /// query log).
    pub fn recent_queries(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        self.obs.log().map(|l| l.recent(n)).unwrap_or_default()
    }

    /// Applies a data-append adjustment (Appendix D, Lemma 3) to the
    /// synopsis of `key` and refits its model, then — for persistent
    /// sessions — checkpoints immediately: a manual adjustment rewrites
    /// stored observations in place without a WAL record, so only a fresh
    /// snapshot makes it durable. (The [`VerdictSession::ingest`] path
    /// logs its adjustments and does not need the eager checkpoint.)
    ///
    /// Returns how many stored snippets were adjusted; `0` means `key`
    /// has no synopsis yet, which callers should treat as "nothing was
    /// widened" rather than success-with-effect. Units as documented on
    /// [`verdict_core::append::AppendAdjustment::estimate`]: `µ`/`η` are
    /// in the aggregate's own value units (relative frequency for
    /// `FREQ`), scaled by `|r_a| / (|r| + |r_a|)`.
    pub fn apply_append(
        &mut self,
        key: &AggKey,
        adjustment: &verdict_core::append::AppendAdjustment,
    ) -> Result<usize> {
        let adjusted = self
            .verdict
            .apply_append(key, adjustment)
            .map_err(Error::Core)?;
        self.checkpoint()?;
        Ok(adjusted)
    }

    /// Ingests a batch of new rows into the evolving table — the engine's
    /// fourth pipeline stage (read / learn / train / **ingest**).
    ///
    /// One call drives the full stack:
    ///
    /// 1. the batch is validated against the schema (atomically — a bad
    ///    row rejects the whole batch before anything mutates);
    /// 2. a Lemma-3 [`verdict_core::append::AppendAdjustment`] is
    ///    estimated for every synopsis aggregate — per-column shift from
    ///    the *current sample* vs the incoming batch for `AVG` keys, the
    ///    conservative worst case for `FREQ`;
    /// 3. the engine-side rewrites and model refits are **staged**
    ///    (fallible work with no mutation), then on persistent sessions
    ///    rows + adjustments are logged to the WAL (fail-fast: a refused
    ///    append or a failed refit leaves memory and disk consistent;
    ///    recovery replays complete batches only);
    /// 4. the base table grows, every maintained sample admits the new
    ///    rows at the correct inclusion probability (deterministic
    ///    per-row admission, so recovery rebuilds the same sample), and
    ///    the engine widens every affected synopsis and refits its
    ///    models (`data_epoch` bumps once).
    ///
    /// Old answers stay usable with honestly wider error bounds;
    /// [`VerdictSession::train`] re-tightens from fresh observations.
    pub fn ingest(&mut self, rows: &[Vec<Value>]) -> Result<IngestReport> {
        self.surface_store_error()?;
        let t0 = Instant::now();
        if rows.is_empty() {
            return Ok(IngestReport {
                appended_rows: 0,
                admitted_rows: vec![0; self.engines.len()],
                adjusted_keys: 0,
                adjusted_snippets: 0,
                skipped_keys: Vec::new(),
                data_epoch: self.verdict.data_epoch(),
                elapsed: t0.elapsed(),
                refit_elapsed: Duration::ZERO,
                wal_bytes: 0,
                widening_magnitude: 0.0,
            });
        }
        if self.paged.is_some() {
            return self.ingest_paged(rows, t0);
        }
        // All fallible work first (validation, shift estimation, staged
        // synopsis rewrites + model refits), shared with the concurrent
        // path; see `prepare_ingest` for the ordering rationale.
        let prepared = prepare_ingest(
            &self.verdict,
            &self.table,
            self.engines[self.active].sample().table(),
            rows,
            self.partitions.as_ref(),
        )?;
        // WAL byte accounting comes from the store's own cumulative
        // counters (delta across the append), not a second measurement.
        let wal_bytes = if let Some(store) = &self.store {
            let mut guard = store.lock();
            let before = guard.stats().wal_bytes;
            guard
                .append_ingest(rows, &prepared.adjustments)
                .map_err(Error::Store)?;
            guard.stats().wal_bytes - before
        } else {
            0
        };
        self.table.push_rows(rows).map_err(Error::Storage)?;
        if let Some(map) = &mut self.partitions {
            // Route the appended rows: only the receiving partitions'
            // row counts and summaries move (cross-partition batches
            // split row-by-row; bystander partitions stay bit-identical).
            map.extend(&self.table).map_err(Error::Storage)?;
        }
        let mut admitted_rows = Vec::with_capacity(self.engines.len());
        for (i, engine) in self.engines.iter_mut().enumerate() {
            admitted_rows.push(
                engine
                    .absorb_appended(
                        &self.table,
                        prepared.old_rows as u64,
                        self.meta.seed,
                        i as u64,
                    )
                    .map_err(Error::Aqp)?,
            );
        }
        let adjusted_snippets = self.verdict.commit_ingest(prepared.staged);
        self.maybe_compact();
        let report = IngestReport {
            appended_rows: rows.len(),
            admitted_rows,
            adjusted_keys: prepared.adjustments.len(),
            adjusted_snippets,
            skipped_keys: prepared.skipped_keys,
            data_epoch: self.verdict.data_epoch(),
            elapsed: t0.elapsed(),
            refit_elapsed: prepared.refit_elapsed,
            wal_bytes,
            widening_magnitude: widening_magnitude(&prepared.adjustments),
        };
        self.obs.record_ingest(&report);
        self.refresh_engine_gauges();
        Ok(report)
    }

    /// The out-of-core half of [`VerdictSession::ingest`]: identical
    /// contract, WAL-first ordering. The batch is coded against the
    /// resolution table (so partition files hold globally valid
    /// dictionary codes), the ingest WAL record anchors durability, then
    /// only the touched partitions' files are write-extended
    /// ([`verdict_store::SynopsisStore::append_parts`]) before the map,
    /// the resolution dictionaries, and every sample tail absorb the
    /// rows. Crash replay re-appends the batch only to partition files
    /// that missed it, so memory and disk stay mutually consistent.
    fn ingest_paged(&mut self, rows: &[Vec<Value>], t0: Instant) -> Result<IngestReport> {
        let (map_arc, total_rows) = {
            let rt = self.paged.as_ref().expect("caller checked");
            (Arc::clone(&rt.map), rt.total_rows)
        };
        let (prepared, batch, routed) = {
            let map = map_arc.read().expect("partition map poisoned");
            prepare_ingest_paged(
                &self.verdict,
                &self.table,
                self.engines[self.active].sample(),
                &map,
                total_rows,
                rows,
            )?
        };
        // Paged sessions are persistent by construction.
        let store = self.store.as_ref().expect("paged sessions have a store");
        let wal_bytes = {
            let mut guard = store.lock();
            let before = guard.stats().wal_bytes;
            let seq = guard
                .append_ingest(rows, &prepared.adjustments)
                .map_err(Error::Store)?;
            guard
                .append_parts(seq, &batch, &routed)
                .map_err(Error::Store)?;
            guard.stats().wal_bytes - before
        };
        map_arc
            .write()
            .expect("partition map poisoned")
            .extend_batch(&batch)
            .map_err(Error::Storage)?;
        self.table
            .sync_dictionaries_from(&batch)
            .map_err(Error::Storage)?;
        let mut admitted_rows = Vec::with_capacity(self.engines.len());
        for (i, engine) in self.engines.iter_mut().enumerate() {
            admitted_rows.push(
                engine
                    .paged_absorb_appended(&batch, total_rows, self.meta.seed, i as u64)
                    .map_err(Error::Aqp)?,
            );
        }
        let adjusted_snippets = self.verdict.commit_ingest(prepared.staged);
        self.paged.as_mut().expect("caller checked").total_rows += rows.len() as u64;
        self.maybe_compact();
        let report = IngestReport {
            appended_rows: rows.len(),
            admitted_rows,
            adjusted_keys: prepared.adjustments.len(),
            adjusted_snippets,
            skipped_keys: prepared.skipped_keys,
            data_epoch: self.verdict.data_epoch(),
            elapsed: t0.elapsed(),
            refit_elapsed: prepared.refit_elapsed,
            wal_bytes,
            widening_magnitude: widening_magnitude(&prepared.adjustments),
        };
        self.obs.record_ingest(&report);
        self.refresh_engine_gauges();
        Ok(report)
    }

    /// Re-publishes the engine-state gauges (synopsis/sample sizes,
    /// epochs). No-op without a metrics hub.
    fn refresh_engine_gauges(&self) {
        self.obs.refresh_engine(
            self.verdict.synopsis_total_snippets(),
            self.verdict.synopsis_keys().len(),
            // `len()` counts covered + tail rows on a paged sample, whose
            // resident `table()` is the zero-row resolution.
            self.engines[self.active].sample().len(),
            self.verdict.epoch(),
            self.verdict.data_epoch(),
        );
    }

    /// Exact (ground-truth) answer for an aggregate over the *base* table;
    /// used by experiments to report actual errors. On an out-of-core
    /// session this streams every partition file back in (an experiment
    /// convenience, deliberately not budget-bounded — ground truth needs
    /// the whole relation).
    pub fn exact(&self, agg: &AggregateFn, predicate: &Predicate) -> Result<f64> {
        if let Some(rt) = &self.paged {
            let store = self.store.as_ref().expect("paged sessions have a store");
            let dir = store.lock().dir().to_path_buf();
            let mut full = self.table.clone();
            let map = rt.map.read().expect("partition map poisoned");
            for p in 0..map.num_partitions() {
                let rows = map.part(p).rows() as usize;
                if rows == 0 {
                    continue;
                }
                let frag =
                    read_part_rows(&dir, p as u32, &self.table, rows).map_err(Error::Store)?;
                full.append(&frag).map_err(Error::Storage)?;
            }
            return agg.eval_exact(&full, predicate).map_err(Error::Storage);
        }
        agg.eval_exact(&self.table, predicate)
            .map_err(Error::Storage)
    }

    /// Parses, checks, plans, and answers a SQL query from one shared
    /// sample scan (see the module docs for the dataflow).
    ///
    /// Persistent sessions surface store failures (a failed background
    /// log append, or a compaction that failed after an earlier query)
    /// here, *before* doing any work — a computed answer is never thrown
    /// away because persisting something else failed afterwards.
    pub fn execute(&mut self, sql: &str, mode: Mode, policy: StopPolicy) -> Result<QueryOutcome> {
        self.surface_store_error()?;
        let t0 = Instant::now();
        let tracing = self.obs.tracing();
        self.obs.query_started();
        let sw = Stopwatch::started_if(tracing);
        let query = parse_query(sql)?;
        if let SupportVerdict::Unsupported(reasons) = check_query(&query, &self.join_policy) {
            self.obs.query_unsupported();
            return Ok(QueryOutcome::Unsupported(reasons));
        }
        let parse_ns = sw.elapsed_ns();
        let sw = Stopwatch::started_if(tracing);
        let plan = self.plan(&query)?;
        let plan_ns = sw.elapsed_ns();
        let epoch = self.verdict.epoch();
        // Read path: answer every cell from immutable state (the engine's
        // current view). The read neither observes nor bumps counters —
        // it returns what the learn path should absorb.
        let mut scan = tracing.then(ScanTrace::default);
        let read = run_shared_read(
            &self.engines[self.active],
            self.verdict.view(),
            &plan,
            mode,
            policy,
            epoch,
            self.scan_kernel,
            self.parallelism,
            scan.as_mut(),
        )?;
        if self.paged.is_some() {
            self.obs.record_partition_cache(&read.cache);
        }
        // Learn path (serialized trivially here — `&mut self`): fold the
        // counter delta in, then record the raw snippet observations in
        // the same per-snippet order Algorithm 2 produces (this is what
        // appends to the WAL on persistent sessions).
        let sw = Stopwatch::started_if(tracing);
        self.verdict.merge_read_stats(read.stats);
        for (snippet, obs) in &read.recorded {
            self.verdict.observe(snippet, *obs);
        }
        self.maybe_compact();
        let absorb_ns = sw.elapsed_ns();
        self.advance_rotation();
        let mut result = read.result;
        result.elapsed = t0.elapsed();
        if let Some(scan) = scan {
            self.obs.record_query(
                query_trace(
                    "t",
                    Some(sql),
                    false,
                    mode,
                    self.verdict.data_epoch(),
                    &result,
                    &scan,
                    StagePrelude {
                        parse_ns,
                        plan_ns,
                        absorb_ns,
                    },
                ),
                plan.groups_dropped,
            );
            self.refresh_engine_gauges();
        }
        Ok(QueryOutcome::Answered(result))
    }

    /// Advances the active sample after an answered query when the session
    /// was built with [`SampleRotation::RoundRobin`].
    fn advance_rotation(&mut self) {
        if self.rotation == SampleRotation::RoundRobin {
            self.active = (self.active + 1) % self.engines.len();
        }
    }

    /// Answers a SQL query with the pre-shared-scan executor: one
    /// independent lock-step scan per snippet (aggregate × group), exactly
    /// as `execute` worked before the shared-scan refactor.
    ///
    /// Kept as the reference implementation behind the `legacy-executor`
    /// cargo feature (off by default — this is not a serving path): the
    /// parity test suite holds [`VerdictSession::execute`] to this path's
    /// answers cell for cell, and the `groupby_scaling` benchmark measures
    /// the `O(G × A)` → `O(1)` scan reduction against it. Note the legacy
    /// cost accounting: each snippet re-scans the sample, so a time budget
    /// is spent *per snippet*, not per query.
    #[cfg(feature = "legacy-executor")]
    pub fn execute_legacy(
        &mut self,
        sql: &str,
        mode: Mode,
        policy: StopPolicy,
    ) -> Result<QueryOutcome> {
        self.surface_store_error()?;
        let t0 = Instant::now();
        let query = parse_query(sql)?;
        if let SupportVerdict::Unsupported(reasons) = check_query(&query, &self.join_policy) {
            return Ok(QueryOutcome::Unsupported(reasons));
        }
        // The legacy path interleaves reads and synopsis writes per
        // snippet, so the epoch it "read" is pinned at query start.
        let epoch = self.verdict.epoch();

        let sample_table = self.engines[self.active].sample().table();
        let group_keys = enumerate_groups(&query, self.engines[self.active].sample())?;
        let nmax = self.verdict.config().nmax;
        let decomposed = decompose(&query, sample_table, &group_keys, nmax)?;

        // Answer snippets one at a time, regrouping into result rows.
        // Keys are compared by identity (bits), not `==`: a NaN group key
        // is one group, even though `NaN != NaN`.
        let mut rows: Vec<ResultRow> = Vec::new();
        let mut max_scanned = 0usize;
        for spec in &decomposed.snippets {
            let cell = self.answer_snippet(spec, mode, policy)?;
            max_scanned = max_scanned.max(cell.tuples_scanned);
            match rows.last_mut() {
                Some(row) if same_group(&row.group, &spec.group) => row.values.push(cell),
                _ => rows.push(ResultRow {
                    group: spec.group.clone(),
                    values: vec![cell],
                }),
            }
        }

        let simulated_ns = self.engine().simulated_ns(max_scanned);
        self.maybe_compact();
        self.advance_rotation();

        Ok(QueryOutcome::Answered(QueryResult {
            rows,
            tuples_scanned: max_scanned,
            simulated_ns,
            truncated: decomposed.truncated,
            epoch,
            elapsed: t0.elapsed(),
        }))
    }

    /// Plans one shared scan for a checked query.
    fn plan(&self, query: &Query) -> Result<ScanPlan> {
        plan_shared_scan(
            query,
            &self.engines[self.active],
            self.verdict.config().nmax,
        )
    }

    /// Folds the log into a fresh snapshot when the store's compaction
    /// policy asks for it, so the log never grows without bound. A
    /// compaction failure is parked rather than returned: the answer is
    /// already computed and logged, and the error surfaces at the next
    /// `execute()`/`checkpoint()` call.
    fn maybe_compact(&mut self) {
        let compact = self
            .store
            .as_ref()
            .is_some_and(|s| s.lock().needs_compaction());
        if compact {
            if let Err(e) = self.snapshot_now() {
                if let Some(store) = &self.store {
                    store.lock().park_error(e);
                }
            }
        }
    }
}

/// Draws a table's maintained offline samples exactly as every session
/// generation has: one shared RNG across the `num_samples` draws (draw
/// order is load-bearing — it is what makes a warm start's redraw
/// bit-identical), the *original* row prefix sampled uniformly, then any
/// appended tail re-admitted through the deterministic per-row admission
/// the ingest path uses. Shared by [`SessionBuilder::build`] and the
/// [`crate::Database`] builder/open paths.
#[allow(clippy::too_many_arguments)]
pub(crate) fn draw_engines(
    table: &Table,
    original_rows: usize,
    sample_fraction: f64,
    batch_size: usize,
    seed: u64,
    num_samples: usize,
    cost: &CostModel,
    tier: StorageTier,
    partition: Option<&PartitionSpec>,
) -> Result<Vec<OnlineAggregation>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engines = Vec::with_capacity(num_samples);
    for _ in 0..num_samples {
        let sample = match partition {
            // Partitioned draws sample the whole current table: partitions
            // never combine with persistence, so there is no recovered
            // tail (`original_rows == table.num_rows()`) to re-admit.
            Some(spec) => Sample::uniform_partitioned(
                table,
                spec.clone(),
                sample_fraction,
                batch_size,
                &mut rng,
            ),
            None => {
                Sample::uniform_prefix(table, original_rows, sample_fraction, batch_size, &mut rng)
            }
        }
        .map_err(Error::Aqp)?;
        engines.push(OnlineAggregation::new(sample, cost.clone(), tier));
    }
    if table.num_rows() > original_rows {
        // Re-admission reads straight from the grown table: the sample
        // adopts the table's dictionaries and stores admitted rows as raw
        // codes, exactly as the live ingest path did.
        for (i, engine) in engines.iter_mut().enumerate() {
            engine
                .absorb_appended(table, original_rows as u64, seed, i as u64)
                .map_err(Error::Aqp)?;
        }
    }
    Ok(engines)
}

/// Enumerates the group values present in the sample's answer set (the
/// AQP engine's result set determines the groups, §2.3) in one pass. A
/// paged sample streams its segments (pruning from map summaries first);
/// a resident sample scans its table.
fn enumerate_groups(query: &Query, sample: &Sample) -> Result<Vec<GroupKey>> {
    if query.group_by.is_empty() {
        return Ok(Vec::new());
    }
    let base_pred = match &query.where_clause {
        Some(w) => verdict_sql::resolve::to_predicate(w, sample.table())?,
        None => Predicate::True,
    };
    let cols: Vec<String> = query
        .group_by
        .iter()
        .filter_map(|g| match g {
            verdict_sql::ScalarExpr::Column { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect();
    if sample.is_paged() {
        sample
            .paged_distinct_group_keys(&base_pred, &cols)
            .map_err(Error::Aqp)
    } else {
        distinct_group_keys(sample.table(), &base_pred, &cols).map_err(Error::Storage)
    }
}

/// The stage clocks the serving layer measures around the shared read
/// (the executor fills scan/infer itself via [`ScanTrace`]). `parse_ns`
/// is 0 on the prepared path.
pub(crate) struct StagePrelude {
    pub(crate) parse_ns: u64,
    pub(crate) plan_ns: u64,
    pub(crate) absorb_ns: u64,
}

/// Folds the serving-layer stage clocks, the executor's [`ScanTrace`],
/// and the answered result into one [`QueryTrace`] (sequence number
/// assigned when the log accepts it). Shared by the serial, concurrent,
/// and prepared serving paths, so every path's traces agree on field
/// semantics.
#[allow(clippy::too_many_arguments)] // one call site per serving path; a struct would just rename the args
pub(crate) fn query_trace(
    table: &str,
    sql: Option<&str>,
    prepared: bool,
    mode: Mode,
    data_epoch: u64,
    result: &QueryResult,
    scan: &ScanTrace,
    stages: StagePrelude,
) -> QueryTrace {
    QueryTrace {
        seq: 0,
        table: table.to_owned(),
        sql: sql.map(str::to_owned),
        prepared,
        mode: mode.to_string(),
        epoch: result.epoch,
        data_epoch,
        tuples_scanned: result.tuples_scanned as u64,
        batches: scan.batches,
        cells: scan.cells,
        cells_frozen_early: scan.cells_frozen_early,
        snippets_observed: scan.snippets_observed,
        chunks: scan.chunks,
        chunks_pruned: scan.chunks_pruned,
        rows_matched: scan.rows_matched,
        morsels: scan.morsels,
        morsels_stolen: scan.morsels_stolen,
        partitions: scan.partitions,
        partitions_pruned: scan.partitions_pruned,
        partition_cache_hits: scan.partition_cache_hits,
        partition_cache_misses: scan.partition_cache_misses,
        partition_bytes_faulted: scan.partition_bytes_faulted,
        stages: StageTimings {
            parse_ns: stages.parse_ns,
            plan_ns: stages.plan_ns,
            scan_ns: scan.scan_ns,
            infer_ns: scan.infer_ns,
            absorb_ns: stages.absorb_ns,
        },
        elapsed_ns: u64::try_from(result.elapsed.as_nanos()).unwrap_or(u64::MAX),
    }
}

/// Total Lemma-3 widening one ingest batch applied: `Σ(|µ_k| + η_k)`
/// over its adjustments, in aggregate value units.
pub(crate) fn widening_magnitude(
    adjustments: &[(AggKey, verdict_core::append::AppendAdjustment)],
) -> f64 {
    adjustments
        .iter()
        .map(|(_, a)| a.mu_shift.abs() + a.eta)
        .sum()
}

/// Plans one shared scan for a checked query against one engine's sample
/// (shared by the serial and concurrent sessions).
pub(crate) fn plan_shared_scan(
    query: &Query,
    engine: &OnlineAggregation,
    nmax: usize,
) -> Result<ScanPlan> {
    let sample = engine.sample();
    let group_keys = enumerate_groups(query, sample)?;
    // `table()` is the resolution table on a paged sample — zero rows,
    // but planning only needs the schema and dictionaries.
    Ok(plan_scan(query, sample.table(), &group_keys, nmax)?)
}

/// Everything fallible about one ingest, computed up front: the batch
/// validated, every adjustment estimated, and the engine-side rewrites +
/// refits staged (no engine mutation yet). Both session flavors order
/// `prepare → WAL append → grow table → admit into samples → commit`, so
/// a failure at any step — a bad row, an oversized WAL record, a refit
/// that cannot factorize — leaves memory and disk fully consistent, and
/// a WAL record is never written for an adjustment the engine then fails
/// to apply.
pub(crate) struct PreparedIngest {
    /// Table rows before the batch.
    pub(crate) old_rows: usize,
    /// Per-aggregate Lemma-3 adjustments (what gets WAL-logged).
    pub(crate) adjustments: Vec<(AggKey, verdict_core::append::AppendAdjustment)>,
    /// Aggregates whose expression could not be re-evaluated.
    pub(crate) skipped_keys: Vec<AggKey>,
    /// The staged engine-side rewrites, ready to commit.
    pub(crate) staged: verdict_core::StagedIngest,
    /// Wall-clock spent staging the rewrites + refits — measured here,
    /// once, for both session flavors (the report and the metrics layer
    /// read this same value).
    pub(crate) refit_elapsed: Duration,
}

/// Validates `rows` and stages the full engine-side effect of ingesting
/// them (see [`PreparedIngest`]). `sample_table` is the sample the shift
/// is estimated against: the serial session passes its *active* sample,
/// the concurrent session its fixed sample — the estimates may differ
/// across wrappers, which is sound because the chosen values are what
/// gets WAL-logged and replayed.
pub(crate) fn prepare_ingest(
    verdict: &Verdict,
    table: &Table,
    sample_table: &Table,
    rows: &[Vec<Value>],
    partitions: Option<&PartitionMap>,
) -> Result<PreparedIngest> {
    // Validation surface: materializing the batch as its own table both
    // validates every row (atomically) and gives the shift estimator
    // numeric columns to evaluate aggregate expressions over, before the
    // main table is touched.
    let mut batch_table = Table::new(table.schema().clone());
    batch_table.push_rows(rows).map_err(Error::Storage)?;
    let old_rows = table.num_rows();
    let (adjustments, skipped_keys) = compute_ingest_adjustments(
        &verdict.synopsis_keys(),
        sample_table,
        &batch_table,
        old_rows,
        rows.len(),
    );
    // Partition-aware Lemma 3: bound what this batch touches, so AVG
    // snippets over provably-disjoint regions keep their answers and
    // error bounds (FREQ always widens — the denominator changed).
    let bounds = match partitions {
        Some(map) => Some(ingest_bounds(map, &batch_table).map_err(Error::Storage)?),
        None => None,
    };
    let refit_t0 = Instant::now();
    let staged = verdict
        .stage_ingest_filtered(&adjustments, bounds.as_ref())
        .map_err(Error::Core)?;
    let refit_elapsed = refit_t0.elapsed();
    Ok(PreparedIngest {
        old_rows,
        adjustments,
        skipped_keys,
        staged,
        refit_elapsed,
    })
}

/// The out-of-core counterpart of [`prepare_ingest`], shared by the
/// serial session and the database shard. On top of the resident
/// preparation it (a) codes the batch against the *resolution* table so
/// the rows written to partition files carry globally valid dictionary
/// codes, (b) streams the paged sample segment-by-segment (then the
/// tail) for the `AVG` shift estimates — identical values, in identical
/// order, to evaluating the materialized sample, so the WAL-logged
/// adjustments are independent of the memory budget — and (c) routes
/// every batch row to its partition for the write-extend.
pub(crate) fn prepare_ingest_paged(
    verdict: &Verdict,
    resolution: &Table,
    sample: &Sample,
    map: &PartitionMap,
    total_rows: u64,
    rows: &[Vec<Value>],
) -> Result<(PreparedIngest, Table, Vec<u32>)> {
    let mut batch = resolution.clone();
    batch.push_rows(rows).map_err(Error::Storage)?;
    let old_rows = total_rows as usize;
    let (adjustments, skipped_keys) = compute_ingest_adjustments_paged(
        &verdict.synopsis_keys(),
        sample,
        &batch,
        old_rows,
        rows.len(),
    )?;
    let bounds = ingest_bounds(map, &batch).map_err(Error::Storage)?;
    let refit_t0 = Instant::now();
    let staged = verdict
        .stage_ingest_filtered(&adjustments, Some(&bounds))
        .map_err(Error::Core)?;
    let refit_elapsed = refit_t0.elapsed();
    let routed = map
        .route(&batch, 0..batch.num_rows())
        .map_err(Error::Storage)?;
    Ok((
        PreparedIngest {
            old_rows,
            adjustments,
            skipped_keys,
            staged,
            refit_elapsed,
        },
        batch,
        routed,
    ))
}

/// The per-key synopsis adjustments for one ingested batch, plus the
/// keys that had to be skipped (unevaluable expressions).
pub(crate) type IngestAdjustments = (
    Vec<(AggKey, verdict_core::append::AppendAdjustment)>,
    Vec<AggKey>,
);

/// [`compute_ingest_adjustments`] for a paged sample: `AVG` old-value
/// columns are gathered in one streaming pass over the segments (then
/// the tail) instead of one resident evaluation — same rows, same order,
/// same estimates. A key whose expression fails to compile against any
/// fragment is skipped, exactly like the resident path.
fn compute_ingest_adjustments_paged(
    keys: &[AggKey],
    sample: &Sample,
    batch_table: &Table,
    old_rows: usize,
    appended_rows: usize,
) -> Result<IngestAdjustments> {
    use verdict_core::append::AppendAdjustment;
    let parsed: Vec<Option<Expr>> = keys
        .iter()
        .map(|k| match k {
            AggKey::Avg(expr_str) => Expr::parse(expr_str).ok(),
            _ => None,
        })
        .collect();
    // One pass over all fragments for all AVG keys together: faulting
    // every segment once per key would multiply the I/O by the synopsis
    // width.
    let mut old_values: Vec<Option<Vec<f64>>> = parsed
        .iter()
        .map(|p| p.as_ref().map(|_| Vec::new()))
        .collect();
    sample
        .paged_visit(|frag| {
            for (expr, vals) in parsed.iter().zip(old_values.iter_mut()) {
                let (Some(expr), Some(acc)) = (expr, vals.as_mut()) else {
                    continue;
                };
                match eval_expr_column(expr, frag) {
                    Some(mut v) => acc.append(&mut v),
                    None => *vals = None,
                }
            }
            Ok(())
        })
        .map_err(Error::Aqp)?;
    let mut adjustments = Vec::with_capacity(keys.len());
    let mut skipped = Vec::new();
    for ((key, expr), old) in keys.iter().zip(parsed.iter()).zip(old_values) {
        match key {
            AggKey::Freq => adjustments.push((
                key.clone(),
                AppendAdjustment::freq_worst_case(old_rows, appended_rows),
            )),
            AggKey::Avg(_) => {
                let adjustment = match (expr, old) {
                    (Some(expr), Some(old_values)) => {
                        eval_expr_column(expr, batch_table).map(|new_values| {
                            AppendAdjustment::estimate(
                                &old_values,
                                &new_values,
                                old_rows,
                                appended_rows,
                            )
                        })
                    }
                    _ => None,
                };
                match adjustment {
                    Some(a) => adjustments.push((key.clone(), a)),
                    None => skipped.push(key.clone()),
                }
            }
        }
    }
    Ok((adjustments, skipped))
}

/// Bounds covering everything a partitioned ingest touches, per column:
/// the batch is routed through a throwaway [`PartitionMap`] built over
/// the batch table (routing is a pure function of the cell value, so it
/// agrees with the session map), and each receiving partition
/// contributes the union of its *current* summary with the batch's own —
/// exactly the post-ingest contents of the touched partitions. Old
/// snippets are reinterpreted against the updated relation, so the
/// pre-existing rows of a receiving partition count as "touched"; rows
/// in partitions the batch never reaches do not shift any disjoint
/// region's aggregate.
pub(crate) fn ingest_bounds(
    map: &PartitionMap,
    batch_table: &Table,
) -> verdict_storage::Result<IngestBounds> {
    let batch_map = PartitionMap::build(batch_table, map.spec().clone())?;
    let mut bounds = IngestBounds::new();
    for p in 0..batch_map.num_partitions() {
        if batch_map.part(p).rows() == 0 {
            continue;
        }
        for (col, def) in batch_table.schema().columns().iter().enumerate() {
            for part in [batch_map.part(p), map.part(p)] {
                match part.summary(col) {
                    // Skip the empty-partition identity (+inf, -inf): it
                    // describes no rows and must not prove anything
                    // (min > max would read as disjoint).
                    Some(ColumnSummary::Num { min, max, has_nan }) if min <= max || *has_nan => {
                        bounds.add_numeric(&def.name, *min, *max, *has_nan);
                    }
                    Some(ColumnSummary::Cat { codes }) => bounds.add_codes(&def.name, codes),
                    _ => {}
                }
            }
        }
    }
    Ok(bounds)
}

/// Estimates one ingested batch's Lemma-3 adjustment per synopsis
/// aggregate (shared by the serial and concurrent ingest paths).
///
/// For an `AVG(expr)` key the shift distribution is estimated from the
/// expression evaluated over the **current sample** (a uniform stand-in
/// for the old relation — the paper estimates `µ_k`, `η_k` "from small
/// samples of `r` and `r_a`") versus the incoming batch. For `FREQ` the
/// per-region indicator cannot be evaluated key-wide, so the conservative
/// worst case applies. Keys whose expression cannot be parsed or
/// evaluated over numeric columns are skipped and reported, never
/// silently dropped.
///
/// The adjustment list is deterministic (keys pre-sorted by the caller
/// via `Verdict::synopsis_keys`), and it is what gets WAL-logged — replay
/// applies these exact values, so recomputation never has to agree with a
/// sample state that no longer exists.
pub(crate) fn compute_ingest_adjustments(
    keys: &[AggKey],
    sample_table: &Table,
    batch_table: &Table,
    old_rows: usize,
    appended_rows: usize,
) -> IngestAdjustments {
    use verdict_core::append::AppendAdjustment;
    let mut adjustments = Vec::with_capacity(keys.len());
    let mut skipped = Vec::new();
    for key in keys {
        match key {
            AggKey::Freq => adjustments.push((
                key.clone(),
                AppendAdjustment::freq_worst_case(old_rows, appended_rows),
            )),
            AggKey::Avg(expr_str) => {
                let adjustment = Expr::parse(expr_str).ok().and_then(|expr| {
                    let old_values = eval_expr_column(&expr, sample_table)?;
                    let new_values = eval_expr_column(&expr, batch_table)?;
                    Some(AppendAdjustment::estimate(
                        &old_values,
                        &new_values,
                        old_rows,
                        appended_rows,
                    ))
                });
                match adjustment {
                    Some(a) => adjustments.push((key.clone(), a)),
                    None => skipped.push(key.clone()),
                }
            }
        }
    }
    (adjustments, skipped)
}

/// Evaluates `expr` over every row of `table`; `None` if the expression
/// does not compile against the table (missing or non-numeric column).
fn eval_expr_column(expr: &Expr, table: &Table) -> Option<Vec<f64>> {
    let compiled = expr.compile(table).ok()?;
    Some((0..table.num_rows()).map(|r| compiled.eval(r)).collect())
}

/// What one read-path execution produced: the answered result, the raw
/// snippet observations the learn path should absorb (Algorithm 2 line 6
/// — empty under `Mode::NoLearn`), and the inference counter delta.
///
/// The read path never mutates engine state; the caller decides where the
/// recorded observations go (a serial session's own engine, or a
/// concurrent session's serialized writer) and in what transaction.
pub(crate) struct ReadOutcome {
    pub(crate) result: QueryResult,
    pub(crate) recorded: Vec<(Snippet, Observation)>,
    pub(crate) stats: EngineStats,
    /// Partition-cache delta of this query's scan (all-zero on a
    /// resident sample; `resident_bytes` is the gauge value after).
    pub(crate) cache: CacheCounters,
}

/// Runs one shared scan to answer every cell of `plan` under the given
/// mode and stop policy, entirely against immutable state: an engine's
/// sample (per-query cursor) and a read view of the learned state. This
/// is the planner→scan→infer core both [`VerdictSession::execute`] and
/// [`crate::ConcurrentSession`] drive; `epoch` is stamped into the result
/// so callers can tell which learned state answered.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shared_read(
    engine: &OnlineAggregation,
    view: EngineView<'_>,
    plan: &ScanPlan,
    mode: Mode,
    policy: StopPolicy,
    epoch: u64,
    kernel: ScanKernel,
    parallelism: usize,
    mut trace: Option<&mut ScanTrace>,
) -> Result<ReadOutcome> {
    let num_cells = plan.groups.len() * plan.aggregates.len();
    if num_cells == 0 {
        // A grouped query whose predicate selects no sample rows: no
        // result rows, and (exactly like the per-snippet path) nothing
        // to scan. A requested trace stays all-zero.
        return Ok(ReadOutcome {
            result: QueryResult {
                rows: Vec::new(),
                tuples_scanned: 0,
                simulated_ns: engine.simulated_ns(0),
                truncated: plan.truncated,
                epoch,
                elapsed: Duration::ZERO,
            },
            recorded: Vec::new(),
            stats: EngineStats::default(),
            cache: CacheCounters::default(),
        });
    }

    // Model keys of the primitive streams and regions of the groups.
    let prim_keys: Vec<AggKey> = plan
        .primitives
        .iter()
        .map(|p| match p {
            AggregateFn::Avg(e) => AggKey::avg(&e.to_string()),
            AggregateFn::Freq => AggKey::Freq,
            _ => unreachable!("plan primitives are AVG/FREQ"),
        })
        .collect();
    let regions: Vec<Option<Region>> = plan
        .group_predicates
        .iter()
        .map(|p| Region::from_predicate(view.schema(), p).ok())
        .collect();

    let scan_groups: Vec<GroupKey> = plan.groups.iter().flatten().cloned().collect();
    let spec = ScanSpec {
        predicate: &plan.base_predicate,
        group_cols: &plan.group_cols,
        groups: &scan_groups,
        primitives: &plan.primitives,
    };

    if engine.sample().is_paged() {
        // Out-of-core: the paged driver pins segments per batch, prunes
        // cold partitions from map summaries alone, and latches fault
        // failures so the morsel coordinator always completes
        // structurally. Same scan-and-finalize core, so answers match
        // the resident path bit for bit.
        let rep = Arc::clone(engine.sample().paged_rep().expect("paged sample"));
        let before = rep.partition_store().counters();
        let mut driver = engine.paged_scan(&spec).map_err(Error::Aqp)?;
        driver.set_kernel(kernel);
        let sink = driver.error_sink();
        let mut out = scan_and_finalize(
            engine,
            view,
            plan,
            mode,
            policy,
            epoch,
            parallelism,
            trace.as_deref_mut(),
            driver,
            || {
                let mut d = engine.paged_scan(&spec).ok()?;
                d.set_kernel(kernel);
                // Worker faults surface on the coordinator's latch.
                d.set_error_sink(Arc::clone(&sink));
                Some(d)
            },
            &prim_keys,
            &regions,
        )?;
        if let Some(e) = sink.lock().expect("error latch poisoned").take() {
            return Err(Error::Storage(e));
        }
        let delta = rep.partition_store().counters().since(&before);
        if let Some(t) = trace {
            t.partition_cache_hits = delta.hits;
            t.partition_cache_misses = delta.misses;
            t.partition_bytes_faulted = delta.bytes_faulted;
        }
        out.cache = delta;
        return Ok(out);
    }

    let mut driver = engine.shared_scan(&spec).map_err(Error::Aqp)?;
    driver.set_kernel(kernel);
    scan_and_finalize(
        engine,
        view,
        plan,
        mode,
        policy,
        epoch,
        parallelism,
        trace,
        driver,
        || {
            let mut d = engine.shared_scan(&spec).ok()?;
            d.set_kernel(kernel);
            Some(d)
        },
        &prim_keys,
        &regions,
    )
}

/// The executor core shared by the resident and out-of-core read paths:
/// drives one morsel-parallel scan of `driver` (worker cursors from
/// `make_scanner`), runs the stop policy after every ordered merge, and
/// finalizes every cell. Generic over [`ScanDriver`], so the paged and
/// resident drivers walk the exact same sequence of merged states —
/// which is what makes their answers bit-identical.
#[allow(clippy::too_many_arguments)]
fn scan_and_finalize<D: ScanDriver, F: Fn() -> Option<D> + Sync>(
    engine: &OnlineAggregation,
    view: EngineView<'_>,
    plan: &ScanPlan,
    mode: Mode,
    policy: StopPolicy,
    epoch: u64,
    parallelism: usize,
    mut trace: Option<&mut ScanTrace>,
    mut driver: D,
    make_scanner: F,
    prim_keys: &[AggKey],
    regions: &[Option<Region>],
) -> Result<ReadOutcome> {
    let mut stats = EngineStats::default();
    let num_groups = plan.groups.len();
    let num_aggs = plan.aggregates.len();
    let num_cells = num_groups * num_aggs;
    let n_base = engine.sample().base_rows() as f64;

    // The stop policy bounds the *one* query-wide scan: a tuple or
    // time budget buys one prefix of the sample regardless of how many
    // cells the query has (the per-snippet path spent the budget per
    // snippet, G×A times over).
    let tuple_cap = match policy {
        StopPolicy::TupleBudget(n) => n,
        StopPolicy::TimeBudgetNs(ns) => engine.cost_model().tuples_within(ns, engine.tier()).max(1),
        _ => usize::MAX,
    };

    // Budgeted scans stop at a fixed tuple prefix, so the batch prefix is
    // known up front: telling the scheduler keeps workers from scanning
    // batches the serial loop would never reach. (Every batch contributes
    // its full row count to `tuples_scanned` — pruned partitions
    // included — so the prefix is exact, not a heuristic.)
    let max_batches = if tuple_cap == usize::MAX {
        usize::MAX
    } else {
        let sample = engine.sample();
        let mut cum = 0usize;
        let mut prefix = sample.num_batches();
        for i in 0..sample.num_batches() {
            cum += sample.batch_range(i).len();
            if cum >= tuple_cap {
                prefix = i + 1;
                break;
            }
        }
        prefix
    };

    // Per-cell stop tracking: a frozen cell holds the snapshot it had
    // when it met the policy; the scan stops when all cells froze.
    let mut frozen: Vec<Option<FrozenCell>> = (0..num_cells).map(|_| None).collect();
    let mut live = num_cells;
    // Snapshots of the cells that did NOT meet the bound at the most
    // recent evaluation, kept so an exhausted scan can finalize from
    // them instead of re-running the whole inference pass at the same
    // scan position.
    let mut last_unmet: Vec<(usize, FrozenCell)> = Vec::new();

    // Tracing clocks (no-ops when untraced — a disabled Stopwatch never
    // reads the OS clock): the whole scan+infer region is timed once,
    // inference passes are timed individually, and scan time is the
    // difference. Cells frozen before the scan's natural end are what
    // the stop policy bought.
    let tracing = trace.is_some();
    let loop_sw = Stopwatch::started_if(tracing);
    let mut infer_ns = 0u64;
    let mut frozen_early = 0u64;

    // Morsel-parallel shared scan: workers scan batch partials on their
    // own cursors while the coordinator merges them in batch-index order
    // and runs the stop policy after every ordered merge — the same
    // sequence of merged states the serial loop walks, so answers,
    // errors, and stop points are bit-identical at any thread count.
    let pstats = parallel_scan(
        &mut driver,
        parallelism,
        max_batches,
        make_scanner,
        |d| match policy {
            StopPolicy::ScanAll => true,
            StopPolicy::TupleBudget(_) | StopPolicy::TimeBudgetNs(_) => {
                d.tuples_scanned() < tuple_cap
            }
            StopPolicy::RelativeErrorBound { target, delta } => {
                // Evaluate every live cell against the bound; freeze
                // those that meet it.
                let infer_sw = Stopwatch::started_if(tracing);
                let evaluated = evaluate_live_cells(
                    view, &mut stats, plan, d, prim_keys, regions, mode, n_base, &frozen,
                );
                infer_ns += infer_sw.elapsed_ns();
                last_unmet.clear();
                for (cell, snapshot) in evaluated {
                    let bound = snapshot.improved.bound(delta);
                    let met = bound.is_finite()
                        && bound / snapshot.improved.answer.abs().max(1e-9) <= target;
                    if met {
                        frozen[cell] = Some(snapshot);
                        live -= 1;
                        frozen_early += 1;
                    } else {
                        last_unmet.push((cell, snapshot));
                    }
                }
                live > 0
            }
        },
    );

    // Finalize the cells still live at the end of the scan. If the
    // loop's last evaluation already ran at this exact scan position
    // (sample exhausted under RelativeErrorBound), reuse its
    // snapshots rather than repeating the inference pass.
    let final_scanned = driver.tuples_scanned();
    let infer_sw = Stopwatch::started_if(tracing);
    let finalized: Vec<(usize, FrozenCell)> =
        if !last_unmet.is_empty() && last_unmet[0].1.scanned == final_scanned {
            last_unmet
        } else {
            evaluate_live_cells(
                view, &mut stats, plan, &driver, prim_keys, regions, mode, n_base, &frozen,
            )
        };
    infer_ns += infer_sw.elapsed_ns();
    for (cell, snapshot) in finalized {
        frozen[cell] = Some(snapshot);
    }
    let tuples_scanned = driver.tuples_scanned();
    if let Some(t) = trace.as_deref_mut() {
        t.scan_ns = loop_sw.elapsed_ns().saturating_sub(infer_ns);
        t.infer_ns = infer_ns;
        t.batches = driver.batches_stepped() as u64;
        t.cells = num_cells as u64;
        t.cells_frozen_early = frozen_early;
        t.chunks = driver.chunks_scanned();
        t.chunks_pruned = driver.chunks_pruned();
        t.rows_matched = driver.rows_matched();
        t.morsels = pstats.morsels;
        t.morsels_stolen = pstats.morsels_stolen;
        t.partitions = driver.partitions();
        t.partitions_pruned = driver.partitions_pruned();
    }
    drop(driver);

    // Collect the raw primitive observations the synopsis should record
    // (Verdict stores raw answers, not improved ones — Algorithm 2
    // line 6), in the per-snippet order of the Figure 3 decomposition.
    // The learn path applies them; the read path stays pure.
    let mut recorded: Vec<(Snippet, Observation)> = Vec::new();
    if mode == Mode::Verdict {
        for g in 0..num_groups {
            let Some(region) = &regions[g] else { continue };
            for (a, spec) in plan.aggregates.iter().enumerate() {
                let cell = frozen[g * num_aggs + a].as_ref().expect("finalized");
                for (key, obs) in cell_prim_indices(spec)
                    .map(|p| &prim_keys[p])
                    .zip(cell.raw_prims.iter())
                {
                    if obs.error.is_finite() {
                        recorded.push((Snippet::new(key.clone(), region.clone()), *obs));
                    }
                }
            }
        }
    }

    if let Some(t) = trace {
        t.snippets_observed = recorded.len() as u64;
    }

    // One real scan: the cost model charges the single pass, not the
    // widest of G×A independent passes.
    let simulated_ns = engine.simulated_ns(tuples_scanned);

    let mut rows: Vec<ResultRow> = Vec::with_capacity(num_groups);
    let mut slots = frozen.into_iter();
    for group in &plan.groups {
        let mut values = Vec::with_capacity(num_aggs);
        for _ in 0..num_aggs {
            let cell = slots.next().flatten().expect("finalized");
            values.push(CellAnswer {
                improved: cell.improved,
                raw_answer: cell.user_raw.0,
                raw_error: cell.user_raw.1,
                tuples_scanned: cell.scanned,
            });
        }
        rows.push(ResultRow {
            group: group.clone(),
            values,
        });
    }

    Ok(ReadOutcome {
        result: QueryResult {
            rows,
            tuples_scanned,
            simulated_ns,
            truncated: plan.truncated,
            epoch,
            // Stamped by the serving layer: wall-clock spans the whole
            // call (parse/pin/absorb included), not just the scan.
            elapsed: Duration::ZERO,
        },
        recorded,
        stats,
        // The paged wrapper overwrites this with the real delta.
        cache: CacheCounters::default(),
    })
}

#[cfg(feature = "legacy-executor")]
impl VerdictSession {
    /// Answers one snippet under the given mode and stop policy.
    fn answer_snippet(
        &mut self,
        spec: &SnippetSpec,
        mode: Mode,
        policy: StopPolicy,
    ) -> Result<CellAnswer> {
        let region = Region::from_predicate(self.verdict.schema(), &spec.predicate).ok();
        let engine = &self.engines[self.active];
        let n_base = engine.sample().base_rows() as f64;

        // Internal primitives for this aggregate (§2.3).
        let plan = SnippetPlan::for_aggregate(&spec.agg);

        // Lock-step online aggregation over the primitives.
        let mut sessions: Vec<verdict_aqp::engine::Session<'_>> = plan
            .primitives
            .iter()
            .map(|p| engine.session(&p.estimator_agg(), &spec.predicate))
            .collect::<std::result::Result<_, AqpError>>()
            .map_err(Error::Aqp)?;

        let tuple_cap = match policy {
            StopPolicy::TupleBudget(n) => n,
            StopPolicy::TimeBudgetNs(ns) => {
                engine.cost_model().tuples_within(ns, engine.tier()).max(1)
            }
            _ => usize::MAX,
        };

        let mut raw_primitives: Vec<Observation> =
            vec![Observation::new(0.0, f64::INFINITY); plan.primitives.len()];
        let mut scanned = 0usize;
        let mut user_raw = (0.0, f64::INFINITY);
        let mut user_improved = ImprovedAnswer {
            answer: 0.0,
            error: f64::INFINITY,
            used_model: false,
        };

        loop {
            // Step every primitive by one batch (shared scan).
            let mut any = false;
            for (i, s) in sessions.iter_mut().enumerate() {
                if let Some(raw) = s.step() {
                    raw_primitives[i] = Observation::new(raw.answer, raw.error);
                    scanned = raw.tuples_scanned;
                    any = true;
                }
            }
            if !any {
                break;
            }

            user_raw = plan.combine_raw(&raw_primitives, n_base);
            user_improved = match mode {
                Mode::NoLearn => ImprovedAnswer {
                    answer: user_raw.0,
                    error: user_raw.1,
                    used_model: false,
                },
                Mode::Verdict => match &region {
                    Some(region) => {
                        plan.improve(&mut self.verdict, region, &raw_primitives, n_base)
                    }
                    None => ImprovedAnswer {
                        answer: user_raw.0,
                        error: user_raw.1,
                        used_model: false,
                    },
                },
            };

            // Stop?
            let stop = match policy {
                StopPolicy::ScanAll => false,
                StopPolicy::RelativeErrorBound { target, delta } => {
                    let bound = user_improved.bound(delta);
                    bound.is_finite() && bound / user_improved.answer.abs().max(1e-9) <= target
                }
                StopPolicy::TupleBudget(_) | StopPolicy::TimeBudgetNs(_) => scanned >= tuple_cap,
            };
            if stop {
                break;
            }
        }

        // Record raw primitive observations into the synopsis (Verdict
        // stores raw answers, not improved ones — Algorithm 2 line 6).
        if mode == Mode::Verdict {
            if let Some(region) = &region {
                for (p, obs) in plan.primitives.iter().zip(raw_primitives.iter()) {
                    if obs.error.is_finite() {
                        let snippet = Snippet::new(p.key.clone(), region.clone());
                        self.verdict.observe(&snippet, *obs);
                    }
                }
            }
        }

        Ok(CellAnswer {
            improved: user_improved,
            raw_answer: user_raw.0,
            raw_error: user_raw.1,
            tuples_scanned: scanned,
        })
    }
}

/// The state of one result cell frozen at its stop point: the raw
/// primitive observations (what the synopsis records), the combined
/// user-facing raw pair, the (possibly model-improved) answer, and the
/// scan position where the cell stopped.
struct FrozenCell {
    raw_prims: Vec<Observation>,
    user_raw: (f64, f64),
    improved: ImprovedAnswer,
    scanned: usize,
}

/// The primitive-stream indices one aggregate reads, in the canonical
/// AVG-before-FREQ order of the §2.3 decomposition (`SUM → [avg, freq]`).
fn cell_prim_indices(spec: &verdict_sql::AggregateSpec) -> impl Iterator<Item = usize> + '_ {
    spec.avg_prim.iter().chain(spec.freq_prim.iter()).copied()
}

/// Snapshots and improves every still-live cell at the driver's current
/// scan position. Improvement runs as one [`EngineView::improve_batch`]
/// call across all live cells (cells whose predicate has no region pass
/// raw through, like the per-snippet path), against immutable state —
/// counter bumps land in `stats`. Returns `(cell index, snapshot)`
/// pairs; cell indices are group-major (`g * num_aggs + a`).
#[allow(clippy::too_many_arguments)]
fn evaluate_live_cells<D: ScanDriver>(
    view: EngineView<'_>,
    stats: &mut EngineStats,
    plan: &ScanPlan,
    driver: &D,
    prim_keys: &[AggKey],
    regions: &[Option<Region>],
    mode: Mode,
    n_base: f64,
    frozen: &[Option<FrozenCell>],
) -> Vec<(usize, FrozenCell)> {
    let num_aggs = plan.aggregates.len();
    let scanned = driver.tuples_scanned();

    // Snapshot raw primitive observations per live cell.
    let mut cells: Vec<(usize, Vec<Observation>)> = Vec::new();
    for (cell, slot) in frozen.iter().enumerate() {
        if slot.is_some() {
            continue;
        }
        let (g, a) = (cell / num_aggs, cell % num_aggs);
        let raw_prims: Vec<Observation> = cell_prim_indices(&plan.aggregates[a])
            .map(|p| {
                let r = driver.raw(g, p);
                Observation::new(r.answer, r.error)
            })
            .collect();
        cells.push((cell, raw_prims));
    }

    // Improve all live cells' primitives in one batched inference pass.
    let improved_prims: Vec<Vec<ImprovedAnswer>> = match mode {
        Mode::NoLearn => Vec::new(),
        Mode::Verdict => {
            let mut requests: Vec<(Snippet, Observation)> = Vec::new();
            let mut spans: Vec<Option<(usize, usize)>> = Vec::with_capacity(cells.len());
            for (cell, raw_prims) in &cells {
                let (g, a) = (cell / num_aggs, cell % num_aggs);
                let Some(region) = &regions[g] else {
                    spans.push(None);
                    continue;
                };
                let start = requests.len();
                for (p, obs) in cell_prim_indices(&plan.aggregates[a]).zip(raw_prims.iter()) {
                    requests.push((Snippet::new(prim_keys[p].clone(), region.clone()), *obs));
                }
                spans.push(Some((start, requests.len())));
            }
            let answers = view.improve_batch(&requests, stats);
            spans
                .into_iter()
                .map(|span| match span {
                    Some((start, end)) => answers[start..end].to_vec(),
                    None => Vec::new(),
                })
                .collect()
        }
    };

    cells
        .into_iter()
        .enumerate()
        .map(|(i, (cell, raw_prims))| {
            let a = cell % num_aggs;
            let combiner = plan.aggregates[a].combiner;
            let user_raw = combine_raw(combiner, &raw_prims, n_base);
            let improved = match mode {
                Mode::NoLearn => raw_as_improved(user_raw),
                Mode::Verdict => {
                    if improved_prims[i].is_empty() {
                        raw_as_improved(user_raw)
                    } else {
                        combine_improved(combiner, &improved_prims[i], n_base)
                    }
                }
            };
            (
                cell,
                FrozenCell {
                    raw_prims,
                    user_raw,
                    improved,
                    scanned,
                },
            )
        })
        .collect()
}

/// Group-key equality by value *identity*: numeric parts compare by bits
/// (so a NaN key equals itself and a run of snippets for one NaN group
/// reassembles into one result row), with `-0.0` folded into `0.0`.
#[cfg(feature = "legacy-executor")]
fn same_group(a: &Option<GroupKey>, b: &Option<GroupKey>) -> bool {
    fn num_bits(v: f64) -> u64 {
        (if v == 0.0 { 0.0f64 } else { v }).to_bits()
    }
    match (a, b) {
        (None, None) => true,
        (Some(ka), Some(kb)) => {
            ka.len() == kb.len()
                && ka.iter().zip(kb.iter()).all(|(va, vb)| {
                    use verdict_storage::Value;
                    match (va, vb) {
                        (Value::Num(x), Value::Num(y)) => num_bits(*x) == num_bits(*y),
                        _ => va == vb,
                    }
                })
        }
        _ => false,
    }
}

/// A raw `(answer, error)` pair wrapped as an unimproved answer.
fn raw_as_improved(raw: (f64, f64)) -> ImprovedAnswer {
    ImprovedAnswer {
        answer: raw.0,
        error: raw.1,
        used_model: false,
    }
}

/// Combines raw primitive observations (AVG-before-FREQ order) into the
/// user-facing raw `(answer, error)` pair (§2.3 recovery formulas).
fn combine_raw(combiner: Combiner, raw: &[Observation], n_base: f64) -> (f64, f64) {
    match combiner {
        Combiner::Avg | Combiner::Freq => (raw[0].answer, raw[0].error),
        Combiner::Count => ((raw[0].answer * n_base).round(), raw[0].error * n_base),
        Combiner::Sum => product_with_error(
            raw[0].answer,
            raw[0].error,
            raw[1].answer * n_base,
            raw[1].error * n_base,
        ),
    }
}

/// Recombines per-primitive improved answers into the user-facing
/// improved answer (same recovery formulas as [`combine_raw`]).
fn combine_improved(
    combiner: Combiner,
    improved: &[ImprovedAnswer],
    n_base: f64,
) -> ImprovedAnswer {
    match combiner {
        Combiner::Avg | Combiner::Freq => improved[0],
        Combiner::Count => ImprovedAnswer {
            answer: (improved[0].answer * n_base).round().max(0.0),
            error: improved[0].error * n_base,
            used_model: improved[0].used_model,
        },
        Combiner::Sum => {
            let (answer, error) = product_with_error(
                improved[0].answer,
                improved[0].error,
                (improved[1].answer * n_base).max(0.0),
                improved[1].error * n_base,
            );
            ImprovedAnswer {
                answer,
                error,
                used_model: improved[0].used_model || improved[1].used_model,
            }
        }
    }
}

/// One internal primitive: `AVG(expr)` or `FREQ(*)` with its model key.
#[cfg(feature = "legacy-executor")]
struct Primitive {
    key: AggKey,
    expr: Option<Expr>,
}

#[cfg(feature = "legacy-executor")]
impl Primitive {
    fn estimator_agg(&self) -> AggregateFn {
        match (&self.key, &self.expr) {
            (AggKey::Avg(_), Some(e)) => AggregateFn::Avg(e.clone()),
            (AggKey::Freq, _) => AggregateFn::Freq,
            _ => unreachable!("AVG primitive always has an expression"),
        }
    }
}

/// How a user-facing aggregate maps onto internal primitives (§2.3):
/// `AVG → [avg]`, `COUNT → [freq]`, `SUM → [avg, freq]`. Used by the
/// legacy per-snippet executor; the shared-scan path gets the same
/// mapping (deduplicated) from [`verdict_sql::plan_scan`]. Both recombine
/// through the same [`combine_raw`] / [`combine_improved`] functions.
#[cfg(feature = "legacy-executor")]
struct SnippetPlan {
    primitives: Vec<Primitive>,
    combiner: Combiner,
}

#[cfg(feature = "legacy-executor")]
impl SnippetPlan {
    fn for_aggregate(agg: &AggregateFn) -> SnippetPlan {
        match agg {
            AggregateFn::Avg(e) => SnippetPlan {
                primitives: vec![Primitive {
                    key: AggKey::avg(&e.to_string()),
                    expr: Some(e.clone()),
                }],
                combiner: Combiner::Avg,
            },
            AggregateFn::Count => SnippetPlan {
                primitives: vec![Primitive {
                    key: AggKey::Freq,
                    expr: None,
                }],
                combiner: Combiner::Count,
            },
            AggregateFn::Sum(e) => SnippetPlan {
                primitives: vec![
                    Primitive {
                        key: AggKey::avg(&e.to_string()),
                        expr: Some(e.clone()),
                    },
                    Primitive {
                        key: AggKey::Freq,
                        expr: None,
                    },
                ],
                combiner: Combiner::Sum,
            },
            AggregateFn::Freq => SnippetPlan {
                primitives: vec![Primitive {
                    key: AggKey::Freq,
                    expr: None,
                }],
                combiner: Combiner::Freq,
            },
        }
    }

    /// Combines raw primitive observations into the user-facing raw
    /// `(answer, error)` pair.
    fn combine_raw(&self, raw: &[Observation], n_base: f64) -> (f64, f64) {
        combine_raw(self.combiner, raw, n_base)
    }

    /// Improves each primitive with the model, then recombines.
    fn improve(
        &self,
        verdict: &mut Verdict,
        region: &Region,
        raw: &[Observation],
        n_base: f64,
    ) -> ImprovedAnswer {
        let improved: Vec<ImprovedAnswer> = self
            .primitives
            .iter()
            .zip(raw.iter())
            .map(|(p, obs)| {
                let snippet = Snippet::new(p.key.clone(), region.clone());
                verdict.improve(&snippet, *obs)
            })
            .collect();
        combine_improved(self.combiner, &improved, n_base)
    }
}

/// `SUM = AVG × COUNT` error propagation. The two factors are estimated
/// from the *same* scan, so their errors are positively correlated; the
/// conservative (perfect-correlation) bound `σ ≈ |a|σ_c + |c|σ_a` keeps
/// SUM error bounds honest where the independence formula under-covers.
fn product_with_error(a: f64, a_err: f64, c: f64, c_err: f64) -> (f64, f64) {
    let answer = a * c;
    if !a_err.is_finite() || !c_err.is_finite() {
        return (answer, f64::INFINITY);
    }
    (answer, (a * c_err).abs() + (c * a_err).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_storage::{ColumnDef, Schema};

    fn session(rows: usize) -> VerdictSession {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let mut state = 1u64;
        for i in 0..rows {
            // Cheap deterministic pseudo-random stream.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let week = 1.0 + (i % 100) as f64;
            let region = ["us", "eu", "jp"][i % 3];
            let rev = 100.0 + 20.0 * (week / 15.0).sin() + 5.0 * (u - 0.5);
            t.push_row(vec![week.into(), region.into(), rev.into()])
                .unwrap();
        }
        SessionBuilder::new(t)
            .sample_fraction(0.2)
            .batch_size(200)
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn executes_simple_avg() {
        let mut s = session(20_000);
        let r = s
            .execute(
                "SELECT AVG(rev) FROM t WHERE week BETWEEN 10 AND 30",
                Mode::NoLearn,
                StopPolicy::ScanAll,
            )
            .unwrap()
            .unwrap_answered();
        assert_eq!(r.rows.len(), 1);
        let cell = &r.rows[0].values[0];
        let exact = s
            .exact(
                &AggregateFn::Avg(Expr::col("rev")),
                &Predicate::between("week", 10.0, 30.0),
            )
            .unwrap();
        assert!((cell.raw_answer - exact).abs() / exact < 0.05);
    }

    #[test]
    fn unsupported_queries_classified() {
        let mut s = session(1000);
        let out = s
            .execute(
                "SELECT AVG(rev) FROM t WHERE region LIKE '%u%'",
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
        assert!(!out.is_answered());
    }

    #[test]
    fn verdict_improves_after_training() {
        let mut s = session(30_000);
        // Warm-up: overlapping range queries.
        for lo in (0..90).step_by(10) {
            s.execute(
                &format!(
                    "SELECT AVG(rev) FROM t WHERE week BETWEEN {lo} AND {}",
                    lo + 10
                ),
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
        }
        s.train().unwrap();
        let r = s
            .execute(
                "SELECT AVG(rev) FROM t WHERE week BETWEEN 25 AND 45",
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap()
            .unwrap_answered();
        let cell = &r.rows[0].values[0];
        assert!(cell.improved.error <= cell.raw_error, "theorem 1");
        assert!(cell.improved.used_model, "model should engage");
    }

    #[test]
    fn group_by_produces_rows_per_group() {
        let mut s = session(5000);
        let r = s
            .execute(
                "SELECT region, COUNT(*) FROM t GROUP BY region",
                Mode::NoLearn,
                StopPolicy::ScanAll,
            )
            .unwrap()
            .unwrap_answered();
        assert_eq!(r.rows.len(), 3);
        let total: f64 = r.rows.iter().map(|row| row.values[0].raw_answer).sum();
        assert!((total - 5000.0).abs() / 5000.0 < 0.02, "total {total}");
    }

    #[test]
    fn sum_combines_avg_and_count() {
        let mut s = session(10_000);
        let r = s
            .execute(
                "SELECT SUM(rev) FROM t WHERE week <= 50",
                Mode::NoLearn,
                StopPolicy::ScanAll,
            )
            .unwrap()
            .unwrap_answered();
        let cell = &r.rows[0].values[0];
        let exact = s
            .exact(
                &AggregateFn::Sum(Expr::col("rev")),
                &Predicate::less_than("week", 50.0, true),
            )
            .unwrap();
        let rel = (cell.raw_answer - exact).abs() / exact;
        assert!(rel < 0.05, "sum rel err {rel}");
        assert!(cell.raw_error.is_finite());
    }

    #[test]
    fn stop_policy_early_exit() {
        let mut s = session(50_000);
        let all = s
            .execute("SELECT AVG(rev) FROM t", Mode::NoLearn, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered();
        let budget = s
            .execute(
                "SELECT AVG(rev) FROM t",
                Mode::NoLearn,
                StopPolicy::TupleBudget(500),
            )
            .unwrap()
            .unwrap_answered();
        assert!(budget.tuples_scanned < all.tuples_scanned);
        let target = s
            .execute(
                "SELECT AVG(rev) FROM t",
                Mode::NoLearn,
                StopPolicy::RelativeErrorBound {
                    target: 0.05,
                    delta: 0.95,
                },
            )
            .unwrap()
            .unwrap_answered();
        assert!(target.tuples_scanned <= all.tuples_scanned);
    }

    #[test]
    fn verdict_stops_earlier_than_nolearn_at_same_target() {
        let mut s = session(50_000);
        for lo in (0..95).step_by(5) {
            s.execute(
                &format!(
                    "SELECT AVG(rev) FROM t WHERE week BETWEEN {lo} AND {}",
                    lo + 5
                ),
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
        }
        s.train().unwrap();
        let policy = StopPolicy::RelativeErrorBound {
            target: 0.01,
            delta: 0.95,
        };
        let sql = "SELECT AVG(rev) FROM t WHERE week BETWEEN 20 AND 60";
        let nolearn = s
            .execute(sql, Mode::NoLearn, policy)
            .unwrap()
            .unwrap_answered();
        let verdict = s
            .execute(sql, Mode::Verdict, policy)
            .unwrap()
            .unwrap_answered();
        assert!(
            verdict.tuples_scanned <= nolearn.tuples_scanned,
            "verdict {} vs nolearn {}",
            verdict.tuples_scanned,
            nolearn.tuples_scanned
        );
        assert!(verdict.simulated_ns <= nolearn.simulated_ns);
    }

    #[test]
    fn multi_sample_rotation_changes_raw_answers() {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let mut state = 9u64;
        for i in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            t.push_row(vec![((i % 100) as f64).into(), (10.0 * u).into()])
                .unwrap();
        }
        let mut s = SessionBuilder::new(t)
            .sample_fraction(0.1)
            .batch_size(200)
            .num_samples(3)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(s.num_samples(), 3);
        let sql = "SELECT AVG(rev) FROM t WHERE week <= 50";
        let mut answers = Vec::new();
        for i in 0..3 {
            s.set_active_sample(i).unwrap();
            let r = s
                .execute(sql, Mode::NoLearn, StopPolicy::TupleBudget(400))
                .unwrap()
                .unwrap_answered();
            answers.push(r.rows[0].values[0].raw_answer);
        }
        // Distinct samples yield distinct sampling noise.
        assert!(
            answers[0] != answers[1] || answers[1] != answers[2],
            "rotation produced identical answers: {answers:?}"
        );
        // An out-of-range index is refused, not wrapped: silent `% 3`
        // masked caller bugs (the active sample stays untouched).
        assert!(s.set_active_sample(3).is_err());
        assert_eq!(s.active_sample(), 2);
    }

    #[test]
    fn round_robin_rotation_advances_per_query() {
        let mut s = SessionBuilder::new(base_rotation_table())
            .sample_fraction(0.2)
            .batch_size(100)
            .num_samples(3)
            .sample_rotation(SampleRotation::RoundRobin)
            .seed(4)
            .build()
            .unwrap();
        let sql = "SELECT AVG(rev) FROM t WHERE week <= 50";
        assert_eq!(s.active_sample(), 0);
        let mut answers = Vec::new();
        for expect_next in [1, 2, 0, 1] {
            let r = s
                .execute(sql, Mode::NoLearn, StopPolicy::TupleBudget(400))
                .unwrap()
                .unwrap_answered();
            answers.push(r.rows[0].values[0].raw_answer);
            assert_eq!(s.active_sample(), expect_next, "advances after the query");
        }
        // Queries 0 and 3 hit sample 0 again: identical answers; the
        // middle queries saw different samples, so some answer differs.
        assert_eq!(answers[0].to_bits(), answers[3].to_bits());
        assert!(
            answers[0] != answers[1] || answers[1] != answers[2],
            "rotation must change the scanned sample: {answers:?}"
        );
        // Unsupported queries do not advance the rotation.
        let before = s.active_sample();
        let out = s
            .execute(
                "SELECT AVG(rev) FROM t WHERE region LIKE '%u%'",
                Mode::NoLearn,
                StopPolicy::ScanAll,
            )
            .unwrap();
        assert!(!out.is_answered());
        assert_eq!(s.active_sample(), before);
    }

    fn base_rotation_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let mut state = 9u64;
        for i in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let region = ["us", "eu", "jp"][i % 3];
            t.push_row(vec![
                ((i % 100) as f64).into(),
                region.into(),
                (10.0 * u).into(),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn time_budget_policy_limits_scan() {
        let mut s = session(50_000);
        let tight = s
            .execute(
                "SELECT AVG(rev) FROM t",
                Mode::NoLearn,
                StopPolicy::TimeBudgetNs(10_500_000.0),
            )
            .unwrap()
            .unwrap_answered();
        let loose = s
            .execute(
                "SELECT AVG(rev) FROM t",
                Mode::NoLearn,
                StopPolicy::TimeBudgetNs(25_000_000.0),
            )
            .unwrap()
            .unwrap_answered();
        assert!(tight.tuples_scanned < loose.tuples_scanned);
        assert!(tight.simulated_ns <= 11_000_000.0 + 200.0 * 1000.0);
    }

    fn temp_store(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("verdict-session-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn session_persistent(rows: usize, dir: &std::path::Path) -> VerdictSession {
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::categorical_dimension("region"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let mut state = 1u64;
        for i in 0..rows {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let week = 1.0 + (i % 100) as f64;
            let region = ["us", "eu", "jp"][i % 3];
            let rev = 100.0 + 20.0 * (week / 15.0).sin() + 5.0 * (u - 0.5);
            t.push_row(vec![week.into(), region.into(), rev.into()])
                .unwrap();
        }
        SessionBuilder::new(t)
            .sample_fraction(0.2)
            .batch_size(200)
            .seed(5)
            .persist_to(dir)
            .build()
            .unwrap()
    }

    #[test]
    fn persistent_session_warm_starts_with_identical_bounds() {
        let dir = temp_store("warm");
        let sql = "SELECT AVG(rev) FROM t WHERE week BETWEEN 25 AND 45";
        let (bound_before, raw_before) = {
            let mut s = session_persistent(30_000, &dir);
            assert!(s.is_persistent());
            for lo in (0..90).step_by(10) {
                s.execute(
                    &format!(
                        "SELECT AVG(rev) FROM t WHERE week BETWEEN {lo} AND {}",
                        lo + 10
                    ),
                    Mode::Verdict,
                    StopPolicy::ScanAll,
                )
                .unwrap();
            }
            s.train().unwrap();
            let r = s
                .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
                .unwrap()
                .unwrap_answered();
            let cell = &r.rows[0].values[0];
            assert!(cell.improved.used_model);
            (cell.improved.error, cell.raw_error)
        };
        // "Restart": a brand-new session recovered purely from disk.
        let mut s = SessionBuilder::open(&dir).unwrap().build().unwrap();
        let report = s.recovery_report().expect("warm start").clone();
        assert!(report.records_replayed > 0 || report.snapshot_last_seq > 0);
        let r = s
            .execute(sql, Mode::Verdict, StopPolicy::ScanAll)
            .unwrap()
            .unwrap_answered();
        let cell = &r.rows[0].values[0];
        assert!(cell.improved.used_model, "model must survive the restart");
        assert_eq!(
            cell.improved.error.to_bits(),
            bound_before.to_bits(),
            "warm-started bound must match the pre-restart bound exactly"
        );
        assert_eq!(cell.raw_error.to_bits(), raw_before.to_bits());
        assert!(cell.improved.error <= cell.raw_error);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_session_has_no_model_but_warm_does() {
        let dir = temp_store("coldwarm");
        {
            let mut s = session_persistent(20_000, &dir);
            for lo in (0..90).step_by(10) {
                s.execute(
                    &format!(
                        "SELECT AVG(rev) FROM t WHERE week BETWEEN {lo} AND {}",
                        lo + 10
                    ),
                    Mode::Verdict,
                    StopPolicy::ScanAll,
                )
                .unwrap();
            }
            s.train().unwrap();
        }
        let warm = SessionBuilder::open(&dir).unwrap().build().unwrap();
        assert!(warm.verdict().has_model(&AggKey::avg("rev")));
        // A cold session over the same table knows nothing.
        let cold = session(20_000);
        assert!(!cold.verdict().has_model(&AggKey::avg("rev")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_to_existing_store_refused() {
        let dir = temp_store("exists");
        {
            let _ = session_persistent(1000, &dir);
        }
        let schema = Schema::new(vec![
            ColumnDef::numeric_dimension("week"),
            ColumnDef::measure("rev"),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..100 {
            t.push_row(vec![(i as f64).into(), 1.0.into()]).unwrap();
        }
        let err = SessionBuilder::new(t).persist_to(&dir).build();
        assert!(
            matches!(err, Err(Error::Store(_))),
            "must refuse to clobber"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_session_keeps_logging_and_compacting() {
        let dir = temp_store("relog");
        {
            let mut s = session_persistent(5000, &dir);
            s.execute(
                "SELECT AVG(rev) FROM t WHERE week BETWEEN 1 AND 20",
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
        }
        {
            let mut s = SessionBuilder::open(&dir).unwrap().build().unwrap();
            let observed_before = s.verdict().stats().observed;
            s.execute(
                "SELECT AVG(rev) FROM t WHERE week BETWEEN 30 AND 60",
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
            assert!(s.verdict().stats().observed > observed_before);
            s.checkpoint().unwrap();
        }
        // Third generation of the session still sees everything.
        let s = SessionBuilder::open(&dir).unwrap().build().unwrap();
        assert_eq!(
            s.recovery_report().unwrap().records_replayed,
            0,
            "checkpoint folded the log"
        );
        assert!(s.verdict().synopsis_len(&AggKey::avg("rev")) >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_policy_override_after_open_is_honored() {
        let dir = temp_store("policy");
        {
            let mut s = session_persistent(5000, &dir);
            s.execute(
                "SELECT AVG(rev) FROM t WHERE week BETWEEN 1 AND 20",
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
        }
        // Warm start with an aggressive compaction policy: every query
        // must fold the log into a new snapshot generation.
        {
            let mut s = SessionBuilder::open(&dir)
                .unwrap()
                .store_policy(verdict_store::StorePolicy {
                    compact_after_records: 1,
                    ..Default::default()
                })
                .build()
                .unwrap();
            let gen_before = s.recovery_report().unwrap().snapshot_gen;
            s.execute(
                "SELECT AVG(rev) FROM t WHERE week BETWEEN 30 AND 50",
                Mode::Verdict,
                StopPolicy::ScanAll,
            )
            .unwrap();
            drop(s);
            let s = SessionBuilder::open(&dir).unwrap().build().unwrap();
            assert!(
                s.recovery_report().unwrap().snapshot_gen > gen_before,
                "override must reach the store (gen did not advance)"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_to_after_open_with_other_path_refused() {
        let dir = temp_store("split");
        {
            let _s = session_persistent(2000, &dir);
        }
        let other = temp_store("split-other");
        let err = SessionBuilder::open(&dir)
            .unwrap()
            .persist_to(&other)
            .build();
        assert!(matches!(err, Err(Error::Store(_))), "split stores refused");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other);
    }

    #[test]
    fn count_answer_scales_to_base() {
        let mut s = session(10_000);
        let r = s
            .execute(
                "SELECT COUNT(*) FROM t WHERE week <= 10",
                Mode::NoLearn,
                StopPolicy::ScanAll,
            )
            .unwrap()
            .unwrap_answered();
        let cell = &r.rows[0].values[0];
        // Weeks cycle 1..=100 → ~10% of rows.
        assert!(
            (cell.raw_answer - 1000.0).abs() < 150.0,
            "{}",
            cell.raw_answer
        );
    }
}
